//! OS-support intrinsic functions (paper §3.5 and §4.1).
//!
//! LLVA supports operating systems through a small set of *intrinsic
//! functions* implemented by the translator, gated by a privileged bit.
//! This module defines the intrinsic namespace; their behavior is
//! implemented by the execution engine (`llva-engine`), which is the
//! "translator" of the paper's architecture.
//!
//! The set covers:
//!
//! * trap-handler registration and trap state access (§3.5),
//! * stack walking in an I-ISA-independent manner (§3.5),
//! * self-modifying-code notification (§3.4), and
//! * the storage-API registration hook used by LLEE for offline caching
//!   (§4.1: "one special LLVA intrinsic routine that the OS can use at
//!   startup to register the address of the storage API routine").

use std::fmt;

/// The LLVA intrinsics, each corresponding to one `llva.*` function name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// `llva.trap.register(int trap_no, void (int, sbyte*)* handler)` —
    /// registers a trap handler (privileged).
    TrapRegister,
    /// `llva.trap.raise(int trap_no, sbyte* info)` — raises a trap.
    TrapRaise,
    /// `llva.priv.set(bool on)` — sets the privileged bit (privileged).
    PrivSet,
    /// `llva.priv.get() -> bool` — reads the privileged bit.
    PrivGet,
    /// `llva.stack.frames() -> int` — number of active frames.
    StackFrames,
    /// `llva.stack.funcname(int depth) -> sbyte*` — name of the function
    /// executing at a given depth (I-ISA-independent stack scanning).
    StackFuncName,
    /// `llva.smc.invalidate(void ()* func)` — marks a function's
    /// translated code invalid after self-modification; takes effect on
    /// the *next* invocation (paper §3.4).
    SmcInvalidate,
    /// `llva.smc.replace(void ()* func, sbyte* code, uint len)` —
    /// replaces the virtual instructions of `func` (constrained SMC).
    SmcReplace,
    /// `llva.storage.register(sbyte* api)` — registers the OS storage API
    /// entry point with the translator (§4.1).
    StorageRegister,
    /// `llva.io.putchar(int c)` — minimal console output (stands in for
    /// the native libraries LLEE can call through to).
    IoPutChar,
    /// `llva.io.getchar() -> int` — minimal console input.
    IoGetChar,
    /// `llva.heap.alloc(ulong bytes) -> sbyte*` — heap allocation
    /// (memory is explicitly allocated; the translator provides the heap).
    HeapAlloc,
    /// `llva.heap.free(sbyte* ptr)` — heap release.
    HeapFree,
    /// `llva.clock() -> ulong` — cycle counter (used by workloads and
    /// profiling).
    Clock,
}

impl Intrinsic {
    /// All intrinsics.
    pub const ALL: [Intrinsic; 14] = [
        Intrinsic::TrapRegister,
        Intrinsic::TrapRaise,
        Intrinsic::PrivSet,
        Intrinsic::PrivGet,
        Intrinsic::StackFrames,
        Intrinsic::StackFuncName,
        Intrinsic::SmcInvalidate,
        Intrinsic::SmcReplace,
        Intrinsic::StorageRegister,
        Intrinsic::IoPutChar,
        Intrinsic::IoGetChar,
        Intrinsic::HeapAlloc,
        Intrinsic::HeapFree,
        Intrinsic::Clock,
    ];

    /// The `llva.*` function name of this intrinsic.
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::TrapRegister => "llva.trap.register",
            Intrinsic::TrapRaise => "llva.trap.raise",
            Intrinsic::PrivSet => "llva.priv.set",
            Intrinsic::PrivGet => "llva.priv.get",
            Intrinsic::StackFrames => "llva.stack.frames",
            Intrinsic::StackFuncName => "llva.stack.funcname",
            Intrinsic::SmcInvalidate => "llva.smc.invalidate",
            Intrinsic::SmcReplace => "llva.smc.replace",
            Intrinsic::StorageRegister => "llva.storage.register",
            Intrinsic::IoPutChar => "llva.io.putchar",
            Intrinsic::IoGetChar => "llva.io.getchar",
            Intrinsic::HeapAlloc => "llva.heap.alloc",
            Intrinsic::HeapFree => "llva.heap.free",
            Intrinsic::Clock => "llva.clock",
        }
    }

    /// Looks an intrinsic up by its function name.
    pub fn by_name(name: &str) -> Option<Intrinsic> {
        Intrinsic::ALL.iter().copied().find(|i| i.name() == name)
    }

    /// Whether calling this intrinsic requires the privileged bit
    /// (paper §3.5: "Intrinsics can be defined to be valid only if the
    /// privileged bit is set to true, otherwise causing a kernel trap").
    pub fn requires_privilege(self) -> bool {
        matches!(
            self,
            Intrinsic::TrapRegister
                | Intrinsic::PrivSet
                | Intrinsic::SmcReplace
                | Intrinsic::StorageRegister
        )
    }

    /// Whether this intrinsic may have side effects that forbid removing
    /// a call to it (everything except pure queries).
    pub fn has_side_effects(self) -> bool {
        !matches!(
            self,
            Intrinsic::PrivGet | Intrinsic::StackFrames | Intrinsic::StackFuncName | Intrinsic::Clock
        )
    }
}

impl fmt::Display for Intrinsic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether `name` is in the reserved intrinsic namespace.
pub fn is_intrinsic_name(name: &str) -> bool {
    name.starts_with("llva.")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_round_trip() {
        for i in Intrinsic::ALL {
            assert_eq!(Intrinsic::by_name(i.name()), Some(i));
            assert!(is_intrinsic_name(i.name()));
        }
        assert_eq!(Intrinsic::by_name("llva.nonexistent"), None);
        assert!(!is_intrinsic_name("printf"));
    }

    #[test]
    fn privileged_set_matches_paper_model() {
        assert!(Intrinsic::TrapRegister.requires_privilege());
        assert!(Intrinsic::PrivSet.requires_privilege());
        assert!(!Intrinsic::IoPutChar.requires_privilege());
        assert!(!Intrinsic::Clock.requires_privilege());
    }

    #[test]
    fn pure_queries_have_no_side_effects() {
        assert!(!Intrinsic::Clock.has_side_effects());
        assert!(!Intrinsic::PrivGet.has_side_effects());
        assert!(Intrinsic::HeapAlloc.has_side_effects());
        assert!(Intrinsic::TrapRaise.has_side_effects());
    }
}
