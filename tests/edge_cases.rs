//! Edge-case coverage across crates: front-end error paths, exotic
//! type round-trips, resource-limit traps, and optimizer behavior on
//! exceptional control flow.

use llva::core::layout::TargetConfig;
use llva::engine::llee::{EngineError, ExecutionManager, TargetIsa};
use llva::engine::Interpreter;

fn compile_err(src: &str) -> String {
    match llva::minic::compile(src, "t", TargetConfig::default()) {
        Err(e) => e.to_string(),
        Ok(_) => panic!("expected a compile error"),
    }
}

#[test]
fn minic_error_paths() {
    assert!(compile_err("int main() { return x; }").contains("unknown variable"));
    assert!(compile_err("int main() { break; return 0; }").contains("break outside"));
    assert!(compile_err("int main() { continue; }").contains("continue outside"));
    assert!(
        compile_err("int f(int a) { return a; } int main() { return f(1, 2); }")
            .contains("expected 1")
    );
    assert!(compile_err(
        "struct P { int x; }; int main() { struct P p; return p.nope; }"
    )
    .contains("no field"));
    assert!(
        compile_err("int main() { int* p; return p * 2; }").contains("pointer")
    );
    // parse error has a line number
    let e = llva::minic::parse("int main() {\n  @;\n}").unwrap_err();
    assert_eq!(e.line, 2);
}

#[test]
fn exotic_types_round_trip_everywhere() {
    let src = r#"
%Inner = type { sbyte, [3 x ushort], double }
%Outer = type { %Inner, %Inner*, [2 x [2 x int]] }

@matrix = global [2 x [2 x int]] [ [ 1, 2 ], [ 3, 4 ] ]

int %main(%Outer* %o) {
entry:
    %m00 = getelementptr [2 x [2 x int]]* @matrix, long 0, long 1, long 1
    %v = load int* %m00
    ret int %v
}
"#;
    let m = llva::core::parser::parse_module(src).expect("parses");
    llva::core::verifier::verify_module(&m).expect("verifies");
    // textual round trip
    let text = llva::core::printer::print_module(&m);
    let m2 = llva::core::parser::parse_module(&text).expect("reparses");
    llva::core::verifier::verify_module(&m2).expect("verifies again");
    // binary round trip
    let m3 = llva::core::bytecode::decode_module(&llva::core::bytecode::encode_module(&m2))
        .expect("decodes");
    llva::core::verifier::verify_module(&m3).expect("verifies decoded");
    // and it runs: matrix[1][1] == 4
    let mut i = Interpreter::new(&m3);
    assert_eq!(i.run("main", &[0]), Ok(4));
}

#[test]
fn exc_attribute_round_trips_textually() {
    let src = r#"
int %f(int* %p, int %x) {
entry:
    %v = load [noexc] int* %p
    %q = div int %v, %x
    %r = add [exc] int %q, 1
    ret int %r
}
"#;
    let m = llva::core::parser::parse_module(src).expect("parses");
    let text = llva::core::printer::print_module(&m);
    assert!(text.contains("load [noexc]"), "{text}");
    assert!(text.contains("add [exc]"), "{text}");
    assert!(!text.contains("div [")); // default stays unmarked
    let m2 = llva::core::parser::parse_module(&text).expect("reparses");
    let f = m2.function(m2.function_by_name("f").expect("f"));
    let e = f.entry_block();
    let insts = f.block(e).insts();
    assert!(!f.inst(insts[0]).exceptions_enabled());
    assert!(f.inst(insts[1]).exceptions_enabled());
    assert!(f.inst(insts[2]).exceptions_enabled());
}

#[test]
fn deep_recursion_traps_as_stack_overflow() {
    let src = r#"
int infinite(int n) { return infinite(n + 1); }
int main() { return infinite(0); }
"#;
    let m = llva::minic::compile(src, "deep", TargetConfig::default()).expect("compiles");
    let mut interp = Interpreter::new(&m);
    match interp.run("main", &[]) {
        Err(llva::engine::InterpError::Trap(t)) => {
            assert_eq!(t.kind, llva::machine::TrapKind::StackOverflow);
        }
        other => panic!("expected stack overflow, got {other:?}"),
    }
    // native: also a stack overflow (frame pushes exhaust the segment)
    let m = llva::minic::compile(src, "deep", TargetConfig::default()).expect("compiles");
    let mut mgr = ExecutionManager::new(m, TargetIsa::X86);
    match mgr.run("main", &[]) {
        Err(EngineError::Trapped(t)) => {
            assert_eq!(t.kind, llva::machine::TrapKind::StackOverflow);
        }
        other => panic!("expected stack overflow, got {other:?}"),
    }
}

#[test]
fn fuel_limits_runaway_native_code() {
    let src = "int main() { while (1) {} return 0; }";
    let m = llva::minic::compile(src, "spin", TargetConfig::default()).expect("compiles");
    let mut mgr = ExecutionManager::new(m, TargetIsa::Sparc);
    mgr.set_fuel(100_000);
    assert!(matches!(mgr.run("main", &[]), Err(EngineError::OutOfFuel)));
}

#[test]
fn wide_mbr_dispatch() {
    // a 10-way multiway branch, all three executors agreeing
    let mut cases = String::new();
    let mut blocks = String::new();
    for k in 0..10 {
        cases.push_str(&format!(", [ int {k}, label %c{k} ]"));
        blocks.push_str(&format!("c{k}:\n    ret int {}\n", k * 11));
    }
    let src = format!(
        "int %main(int %x) {{\nentry:\n    mbr int %x, label %other{cases}\n{blocks}other:\n    ret int -1\n}}\n"
    );
    let m = llva::core::parser::parse_module(&src).expect("parses");
    llva::core::verifier::verify_module(&m).expect("verifies");
    for x in [0u64, 5, 9, 77] {
        let mut i = Interpreter::new(&m);
        let expected = i.run("main", &[x]).expect("interprets");
        for isa in TargetIsa::ALL {
            let m = llva::core::parser::parse_module(&src).expect("parses");
            let mut mgr = ExecutionManager::new(m, isa);
            assert_eq!(mgr.run("main", &[x]).expect("runs").value, expected);
        }
    }
}

#[test]
fn optimizer_handles_invoke_unwind() {
    let src = r#"
void %maybe_throw(int %x) {
entry:
    %c = setgt int %x, 3
    br bool %c, label %boom, label %ok
boom:
    unwind
ok:
    ret void
}

int %main(int %x) {
entry:
    %dead = add int %x, %x
    invoke void %maybe_throw(int %x) to label %fine unwind label %caught
fine:
    %a = add int 1, 2
    ret int %a
caught:
    ret int 99
}
"#;
    let mut m = llva::core::parser::parse_module(src).expect("parses");
    let mut i = Interpreter::new(&m);
    let r_lo = i.run("main", &[1]).expect("runs");
    let mut i = Interpreter::new(&m);
    let r_hi = i.run("main", &[9]).expect("runs");
    assert_eq!((r_lo, r_hi), (3, 99));
    let mut pm = llva::opt::link_time_pipeline(&["main"]);
    pm.verify_after_each(true);
    pm.run(&mut m);
    let mut i = Interpreter::new(&m);
    assert_eq!(i.run("main", &[1]), Ok(3));
    let mut i = Interpreter::new(&m);
    assert_eq!(i.run("main", &[9]), Ok(99));
}

#[test]
fn intrinsic_stack_inspection() {
    // llva.stack.frames / llva.stack.funcname (§3.5)
    let src = r#"
declare int %llva.stack.frames()
declare sbyte* %llva.stack.funcname(int)

int %leaf() {
entry:
    %d = call int %llva.stack.frames()
    ret int %d
}

int %mid() {
entry:
    %d = call int %leaf()
    ret int %d
}

int %main() {
entry:
    %d = call int %mid()
    ret int %d
}
"#;
    let m = llva::core::parser::parse_module(src).expect("parses");
    let mut i = Interpreter::new(&m);
    assert_eq!(i.run("main", &[]), Ok(3), "main -> mid -> leaf = 3 frames");
    for isa in TargetIsa::ALL {
        let m = llva::core::parser::parse_module(src).expect("parses");
        let mut mgr = ExecutionManager::new(m, isa);
        assert_eq!(mgr.run("main", &[]).expect("runs").value, 3, "{isa}");
    }
}

#[test]
fn privileged_intrinsics_trap_in_user_mode() {
    let src = r#"
declare int %llva.trap.register(int, void (int, sbyte*)*)

void %h(int %n, sbyte* %i) {
entry:
    ret void
}

int %main() {
entry:
    %r = call int %llva.trap.register(int 1, void (int, sbyte*)* %h)
    ret int %r
}
"#;
    let m = llva::core::parser::parse_module(src).expect("parses");
    let mut i = Interpreter::new(&m);
    // user mode: privileged intrinsic traps
    match i.run("main", &[]) {
        Err(llva::engine::InterpError::Trap(t)) => {
            assert_eq!(t.kind, llva::machine::TrapKind::PrivilegeViolation);
        }
        other => panic!("expected privilege violation, got {other:?}"),
    }
    // kernel mode: allowed
    let mut i = Interpreter::new(&m);
    i.env.privileged = true;
    assert_eq!(i.run("main", &[]), Ok(0));
}

#[test]
fn bytecode_small_format_dominates_workloads() {
    // the paper's compactness argument: "most instructions usually fit
    // in a single 32-bit word"
    for w in llva::workloads::all().into_iter().take(8) {
        let m = w.compile(TargetConfig::default());
        let stats = llva::core::bytecode::encoding_stats(&m);
        let frac = stats.small_insts as f64 / (stats.small_insts + stats.extended_insts) as f64;
        assert!(
            frac > 0.6,
            "{}: only {:.0}% small-format instructions",
            w.name,
            frac * 100.0
        );
    }
}
