//! Serialization of translated native code for the offline cache.
//!
//! LLEE writes translated functions to offline storage and reloads them
//! on later runs (§4.1). These codecs turn instruction vectors into the
//! byte vectors the storage API stores. The format is a simple
//! tag + operands encoding; it is *not* the native_size() estimate used
//! for Table 2 (that models real IA-32/SPARC encodings).

use llva_core::intrinsics::Intrinsic;
use llva_machine::common::{Sym, Width};
use llva_machine::riscv::{self, RiscvInst};
use llva_machine::sparc::{self, SparcInst};
use llva_machine::x86::{self, X86Inst};
use std::fmt;

/// A cache blob that failed to decode (stale format, corruption).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "native-code codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

type Result<T> = std::result::Result<T, CodecError>;

// -------------------------------------------------- cache-entry frame --
//
// Storage is OS-provided and untrusted (§4.1: the system must "operate
// correctly in their absence" — and, we add, in their *failure*). Every
// cache entry is therefore wrapped in a self-describing frame that LLEE
// validates before a single payload byte reaches the instruction
// decoder: magic, format version, payload length (detects torn writes
// and truncated reads), and an FNV-1a checksum chained over the storage
// key and the payload (detects bit rot and entries copied under the
// wrong key).

/// First bytes of every framed cache entry ("LLva Cache Entry").
pub const FRAME_MAGIC: &[u8; 4] = b"LLCE";
/// Version of the cache-entry frame format.
pub const FRAME_VERSION: u8 = 1;
/// Frame header size: magic + version + payload length + checksum.
pub const FRAME_HEADER_LEN: usize = 4 + 1 + 4 + 8;

/// FNV-1a offset basis (shared with LLEE's content stamps).
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Chains `bytes` onto an FNV-1a hash state `h`.
pub(crate) fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn frame_checksum(key: &str, payload: &[u8]) -> u64 {
    fnv1a(payload, fnv1a(key.as_bytes(), FNV_OFFSET))
}

/// Wraps an encoded translation in the self-describing cache-entry
/// frame under which it will be stored as `key`.
pub fn frame_entry(key: &str, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(FRAME_MAGIC);
    out.push(FRAME_VERSION);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame_checksum(key, payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates a framed cache entry read back under `key` and returns its
/// payload.
///
/// # Errors
///
/// Returns [`CodecError`] on any mismatch — wrong magic or version,
/// torn/truncated payload, checksum failure, or an entry that was
/// written under a different key.
pub fn unframe_entry<'a>(key: &str, blob: &'a [u8]) -> Result<&'a [u8]> {
    if blob.len() < FRAME_HEADER_LEN {
        return Err(CodecError(format!(
            "framed entry truncated: {} bytes < {FRAME_HEADER_LEN}-byte header",
            blob.len()
        )));
    }
    if &blob[..4] != FRAME_MAGIC {
        return Err(CodecError("bad cache-entry magic".into()));
    }
    if blob[4] != FRAME_VERSION {
        return Err(CodecError(format!(
            "unsupported cache-entry version {}",
            blob[4]
        )));
    }
    let len = u32::from_le_bytes(blob[5..9].try_into().expect("4 bytes")) as usize;
    let payload = &blob[FRAME_HEADER_LEN..];
    if payload.len() != len {
        return Err(CodecError(format!(
            "torn cache entry: header says {len} payload bytes, found {}",
            payload.len()
        )));
    }
    let sum = u64::from_le_bytes(blob[9..17].try_into().expect("8 bytes"));
    if frame_checksum(key, payload) != sum {
        return Err(CodecError(format!("checksum mismatch for key {key:?}")));
    }
    Ok(payload)
}

struct W(Vec<u8>);

impl W {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn i32(&mut self, v: i32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn i16(&mut self, v: i16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u32(x);
            }
        }
    }
    fn boolean(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
    fn sym(&mut self, s: Sym) {
        match s {
            Sym::Global(g) => {
                self.u8(0);
                self.u32(g);
            }
            Sym::Function(f) => {
                self.u8(1);
                self.u32(f);
            }
        }
    }
}

struct R<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> R<'a> {
    fn err<T>(&self, what: &str) -> Result<T> {
        Err(CodecError(format!("{what} at offset {}", self.pos)))
    }
    fn u8(&mut self) -> Result<u8> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| CodecError("truncated".into()))?;
        self.pos += 1;
        Ok(b)
    }
    fn u32(&mut self) -> Result<u32> {
        if self.pos + 4 > self.buf.len() {
            return self.err("truncated u32");
        }
        let v = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().expect("4"));
        self.pos += 4;
        Ok(v)
    }
    fn i32(&mut self) -> Result<i32> {
        Ok(self.u32()? as i32)
    }
    fn i16(&mut self) -> Result<i16> {
        if self.pos + 2 > self.buf.len() {
            return self.err("truncated i16");
        }
        let v = i16::from_le_bytes(self.buf[self.pos..self.pos + 2].try_into().expect("2"));
        self.pos += 2;
        Ok(v)
    }
    fn i64(&mut self) -> Result<i64> {
        if self.pos + 8 > self.buf.len() {
            return self.err("truncated i64");
        }
        let v = i64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().expect("8"));
        self.pos += 8;
        Ok(v)
    }
    fn opt_u32(&mut self) -> Result<Option<u32>> {
        Ok(match self.u8()? {
            0 => None,
            _ => Some(self.u32()?),
        })
    }
    fn boolean(&mut self) -> Result<bool> {
        Ok(self.u8()? != 0)
    }
    fn sym(&mut self) -> Result<Sym> {
        Ok(match self.u8()? {
            0 => Sym::Global(self.u32()?),
            1 => Sym::Function(self.u32()?),
            _ => return self.err("bad sym tag"),
        })
    }
}

/// Reads an instruction count and validates it against the remaining
/// input, so a corrupted header cannot drive a multi-gigabyte
/// allocation: every encoded instruction occupies at least one byte.
fn checked_count(r: &mut R<'_>) -> Result<usize> {
    let n = r.u32()? as usize;
    let remaining = r.buf.len() - r.pos;
    if n > remaining {
        return Err(CodecError(format!(
            "instruction count {n} exceeds the {remaining} bytes that follow"
        )));
    }
    Ok(n)
}

fn norm_tag(n: x86::Norm) -> u8 {
    match n {
        x86::Norm::None => 0,
        x86::Norm::Sext32 => 1,
        x86::Norm::Zext32 => 2,
    }
}

fn norm_from(tag: u8) -> Result<x86::Norm> {
    Ok(match tag {
        0 => x86::Norm::None,
        1 => x86::Norm::Sext32,
        2 => x86::Norm::Zext32,
        other => return Err(CodecError(format!("bad norm {other}"))),
    })
}

fn gpr_tag(g: x86::Gpr) -> u8 {
    x86::Gpr::ALL.iter().position(|&x| x == g).expect("gpr") as u8
}

fn gpr_from(tag: u8) -> Result<x86::Gpr> {
    x86::Gpr::ALL
        .get(tag as usize)
        .copied()
        .ok_or_else(|| CodecError(format!("bad gpr {tag}")))
}

const X86_ALU: [x86::AluOp; 8] = [
    x86::AluOp::Add,
    x86::AluOp::Sub,
    x86::AluOp::And,
    x86::AluOp::Or,
    x86::AluOp::Xor,
    x86::AluOp::Shl,
    x86::AluOp::Shr,
    x86::AluOp::Sar,
];

const X86_COND: [x86::Cond; 10] = [
    x86::Cond::E,
    x86::Cond::Ne,
    x86::Cond::L,
    x86::Cond::G,
    x86::Cond::Le,
    x86::Cond::Ge,
    x86::Cond::B,
    x86::Cond::A,
    x86::Cond::Be,
    x86::Cond::Ae,
];

const FP_OP: [x86::FpOp; 4] = [
    x86::FpOp::Add,
    x86::FpOp::Sub,
    x86::FpOp::Mul,
    x86::FpOp::Div,
];

fn pos_of<T: PartialEq>(arr: &[T], v: &T) -> u8 {
    arr.iter().position(|x| x == v).expect("member") as u8
}

fn at<T: Copy>(arr: &[T], tag: u8, what: &str) -> Result<T> {
    arr.get(tag as usize)
        .copied()
        .ok_or_else(|| CodecError(format!("bad {what} {tag}")))
}

fn intrinsic_tag(i: Intrinsic) -> u8 {
    pos_of(&Intrinsic::ALL, &i)
}

fn mem_w(w: &mut W, m: x86::MemOp) {
    w.u8(gpr_tag(m.base));
    w.i32(m.disp);
}

fn mem_r(r: &mut R<'_>) -> Result<x86::MemOp> {
    Ok(x86::MemOp {
        base: gpr_from(r.u8()?)?,
        disp: r.i32()?,
    })
}

/// Encodes x86 code for the cache.
pub fn encode_x86(code: &[X86Inst]) -> Vec<u8> {
    let mut w = W(Vec::with_capacity(code.len() * 8));
    w.u32(code.len() as u32);
    for inst in code {
        encode_x86_inst(&mut w, inst);
    }
    w.0
}

#[allow(clippy::too_many_lines)]
fn encode_x86_inst(w: &mut W, inst: &X86Inst) {
    use X86Inst as I;
    match inst {
        I::MovRI(r, v) => {
            w.u8(0);
            w.u8(gpr_tag(*r));
            w.i64(*v);
        }
        I::MovRR(a, b) => {
            w.u8(1);
            w.u8(gpr_tag(*a));
            w.u8(gpr_tag(*b));
        }
        I::MovRSym(r, s) => {
            w.u8(2);
            w.u8(gpr_tag(*r));
            w.sym(*s);
        }
        I::Load {
            dst,
            mem,
            width,
            signed,
        } => {
            w.u8(3);
            w.u8(gpr_tag(*dst));
            mem_w(w, *mem);
            w.u8(width.tag());
            w.boolean(*signed);
        }
        I::Store { src, mem, width } => {
            w.u8(4);
            w.u8(gpr_tag(*src));
            mem_w(w, *mem);
            w.u8(width.tag());
        }
        I::Lea(r, m) => {
            w.u8(5);
            w.u8(gpr_tag(*r));
            mem_w(w, *m);
        }
        I::AluRR(op, a, b, n) => {
            w.u8(6);
            w.u8(pos_of(&X86_ALU, op));
            w.u8(gpr_tag(*a));
            w.u8(gpr_tag(*b));
            w.u8(norm_tag(*n));
        }
        I::AluRI(op, a, v, n) => {
            w.u8(7);
            w.u8(pos_of(&X86_ALU, op));
            w.u8(gpr_tag(*a));
            w.i64(*v);
            w.u8(norm_tag(*n));
        }
        I::AluRM(op, a, m, n) => {
            w.u8(8);
            w.u8(pos_of(&X86_ALU, op));
            w.u8(gpr_tag(*a));
            mem_w(w, *m);
            w.u8(norm_tag(*n));
        }
        I::IMulRR(a, b, n) => {
            w.u8(9);
            w.u8(gpr_tag(*a));
            w.u8(gpr_tag(*b));
            w.u8(norm_tag(*n));
        }
        I::IMulRM(a, m, n) => {
            w.u8(10);
            w.u8(gpr_tag(*a));
            mem_w(w, *m);
            w.u8(norm_tag(*n));
        }
        I::Cdq => w.u8(11),
        I::Div {
            signed,
            divisor,
            trapping,
            norm,
        } => {
            w.u8(12);
            w.boolean(*signed);
            w.u8(gpr_tag(*divisor));
            w.boolean(*trapping);
            w.u8(norm_tag(*norm));
        }
        I::CmpRR(a, b) => {
            w.u8(13);
            w.u8(gpr_tag(*a));
            w.u8(gpr_tag(*b));
        }
        I::CmpRI(a, v) => {
            w.u8(14);
            w.u8(gpr_tag(*a));
            w.i64(*v);
        }
        I::CmpRM(a, m) => {
            w.u8(15);
            w.u8(gpr_tag(*a));
            mem_w(w, *m);
        }
        I::Setcc(c, r) => {
            w.u8(16);
            w.u8(pos_of(&X86_COND, c));
            w.u8(gpr_tag(*r));
        }
        I::Jmp(t) => {
            w.u8(17);
            w.u32(*t);
        }
        I::Jcc(c, t) => {
            w.u8(18);
            w.u8(pos_of(&X86_COND, c));
            w.u32(*t);
        }
        I::CallFn { func, unwind } => {
            w.u8(19);
            w.u32(*func);
            w.opt_u32(*unwind);
        }
        I::CallIndirect { target, unwind } => {
            w.u8(20);
            w.u8(gpr_tag(*target));
            w.opt_u32(*unwind);
        }
        I::CallIntrinsic { which, nargs } => {
            w.u8(21);
            w.u8(intrinsic_tag(*which));
            w.u8(*nargs);
        }
        I::Ret => w.u8(22),
        I::Unwind => w.u8(23),
        I::Push(r) => {
            w.u8(24);
            w.u8(gpr_tag(*r));
        }
        I::Pop(r) => {
            w.u8(25);
            w.u8(gpr_tag(*r));
        }
        I::FLoad { dst, mem, is32 } => {
            w.u8(26);
            w.u8(dst.0);
            mem_w(w, *mem);
            w.boolean(*is32);
        }
        I::FStore { src, mem, is32 } => {
            w.u8(27);
            w.u8(src.0);
            mem_w(w, *mem);
            w.boolean(*is32);
        }
        I::FMovRR(a, b) => {
            w.u8(28);
            w.u8(a.0);
            w.u8(b.0);
        }
        I::FAlu(op, a, b, is32) => {
            w.u8(29);
            w.u8(pos_of(&FP_OP, op));
            w.u8(a.0);
            w.u8(b.0);
            w.boolean(*is32);
        }
        I::FCmp(a, b, is32) => {
            w.u8(30);
            w.u8(a.0);
            w.u8(b.0);
            w.boolean(*is32);
        }
        I::CvtIF {
            dst,
            src,
            to32,
            signed,
        } => {
            w.u8(31);
            w.u8(dst.0);
            w.u8(gpr_tag(*src));
            w.boolean(*to32);
            w.boolean(*signed);
        }
        I::CvtFI {
            dst,
            src,
            from32,
            signed,
        } => {
            w.u8(32);
            w.u8(gpr_tag(*dst));
            w.u8(src.0);
            w.boolean(*from32);
            w.boolean(*signed);
        }
        I::CvtFF { dst, src, to32 } => {
            w.u8(33);
            w.u8(dst.0);
            w.u8(src.0);
            w.boolean(*to32);
        }
        I::MovGF(g, f) => {
            w.u8(34);
            w.u8(gpr_tag(*g));
            w.u8(f.0);
        }
        I::MovFG(f, g) => {
            w.u8(35);
            w.u8(f.0);
            w.u8(gpr_tag(*g));
        }
        I::SignExtend(r, width) => {
            w.u8(36);
            w.u8(gpr_tag(*r));
            w.u8(width.tag());
        }
        I::ZeroExtend(r, width) => {
            w.u8(37);
            w.u8(gpr_tag(*r));
            w.u8(width.tag());
        }
    }
}

/// Decodes cached x86 code.
///
/// # Errors
///
/// Returns [`CodecError`] on truncation or bad tags.
pub fn decode_x86(bytes: &[u8]) -> Result<Vec<X86Inst>> {
    let mut r = R { buf: bytes, pos: 0 };
    let n = checked_count(&mut r)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(decode_x86_inst(&mut r)?);
    }
    Ok(out)
}

#[allow(clippy::too_many_lines)]
fn decode_x86_inst(r: &mut R<'_>) -> Result<X86Inst> {
    use X86Inst as I;
    Ok(match r.u8()? {
        0 => I::MovRI(gpr_from(r.u8()?)?, r.i64()?),
        1 => I::MovRR(gpr_from(r.u8()?)?, gpr_from(r.u8()?)?),
        2 => I::MovRSym(gpr_from(r.u8()?)?, r.sym()?),
        3 => I::Load {
            dst: gpr_from(r.u8()?)?,
            mem: mem_r(r)?,
            width: Width::from_tag(r.u8()?).ok_or_else(|| CodecError("width".into()))?,
            signed: r.boolean()?,
        },
        4 => I::Store {
            src: gpr_from(r.u8()?)?,
            mem: mem_r(r)?,
            width: Width::from_tag(r.u8()?).ok_or_else(|| CodecError("width".into()))?,
        },
        5 => I::Lea(gpr_from(r.u8()?)?, mem_r(r)?),
        6 => I::AluRR(
            at(&X86_ALU, r.u8()?, "alu")?,
            gpr_from(r.u8()?)?,
            gpr_from(r.u8()?)?,
            norm_from(r.u8()?)?,
        ),
        7 => I::AluRI(
            at(&X86_ALU, r.u8()?, "alu")?,
            gpr_from(r.u8()?)?,
            r.i64()?,
            norm_from(r.u8()?)?,
        ),
        8 => I::AluRM(
            at(&X86_ALU, r.u8()?, "alu")?,
            gpr_from(r.u8()?)?,
            mem_r(r)?,
            norm_from(r.u8()?)?,
        ),
        9 => I::IMulRR(gpr_from(r.u8()?)?, gpr_from(r.u8()?)?, norm_from(r.u8()?)?),
        10 => I::IMulRM(gpr_from(r.u8()?)?, mem_r(r)?, norm_from(r.u8()?)?),
        11 => I::Cdq,
        12 => I::Div {
            signed: r.boolean()?,
            divisor: gpr_from(r.u8()?)?,
            trapping: r.boolean()?,
            norm: norm_from(r.u8()?)?,
        },
        13 => I::CmpRR(gpr_from(r.u8()?)?, gpr_from(r.u8()?)?),
        14 => I::CmpRI(gpr_from(r.u8()?)?, r.i64()?),
        15 => I::CmpRM(gpr_from(r.u8()?)?, mem_r(r)?),
        16 => I::Setcc(at(&X86_COND, r.u8()?, "cond")?, gpr_from(r.u8()?)?),
        17 => I::Jmp(r.u32()?),
        18 => I::Jcc(at(&X86_COND, r.u8()?, "cond")?, r.u32()?),
        19 => I::CallFn {
            func: r.u32()?,
            unwind: r.opt_u32()?,
        },
        20 => I::CallIndirect {
            target: gpr_from(r.u8()?)?,
            unwind: r.opt_u32()?,
        },
        21 => I::CallIntrinsic {
            which: at(&Intrinsic::ALL, r.u8()?, "intrinsic")?,
            nargs: r.u8()?,
        },
        22 => I::Ret,
        23 => I::Unwind,
        24 => I::Push(gpr_from(r.u8()?)?),
        25 => I::Pop(gpr_from(r.u8()?)?),
        26 => I::FLoad {
            dst: x86::Fpr(r.u8()?),
            mem: mem_r(r)?,
            is32: r.boolean()?,
        },
        27 => I::FStore {
            src: x86::Fpr(r.u8()?),
            mem: mem_r(r)?,
            is32: r.boolean()?,
        },
        28 => I::FMovRR(x86::Fpr(r.u8()?), x86::Fpr(r.u8()?)),
        29 => I::FAlu(
            at(&FP_OP, r.u8()?, "fpop")?,
            x86::Fpr(r.u8()?),
            x86::Fpr(r.u8()?),
            r.boolean()?,
        ),
        30 => I::FCmp(x86::Fpr(r.u8()?), x86::Fpr(r.u8()?), r.boolean()?),
        31 => I::CvtIF {
            dst: x86::Fpr(r.u8()?),
            src: gpr_from(r.u8()?)?,
            to32: r.boolean()?,
            signed: r.boolean()?,
        },
        32 => I::CvtFI {
            dst: gpr_from(r.u8()?)?,
            src: x86::Fpr(r.u8()?),
            from32: r.boolean()?,
            signed: r.boolean()?,
        },
        33 => I::CvtFF {
            dst: x86::Fpr(r.u8()?),
            src: x86::Fpr(r.u8()?),
            to32: r.boolean()?,
        },
        34 => I::MovGF(gpr_from(r.u8()?)?, x86::Fpr(r.u8()?)),
        35 => I::MovFG(x86::Fpr(r.u8()?), gpr_from(r.u8()?)?),
        36 => I::SignExtend(
            gpr_from(r.u8()?)?,
            Width::from_tag(r.u8()?).ok_or_else(|| CodecError("width".into()))?,
        ),
        37 => I::ZeroExtend(
            gpr_from(r.u8()?)?,
            Width::from_tag(r.u8()?).ok_or_else(|| CodecError("width".into()))?,
        ),
        other => return Err(CodecError(format!("bad x86 tag {other}"))),
    })
}

const SPARC_ALU: [sparc::AluOp; 13] = [
    sparc::AluOp::Add,
    sparc::AluOp::Sub,
    sparc::AluOp::Mul,
    sparc::AluOp::Sdiv,
    sparc::AluOp::Udiv,
    sparc::AluOp::Srem,
    sparc::AluOp::Urem,
    sparc::AluOp::And,
    sparc::AluOp::Or,
    sparc::AluOp::Xor,
    sparc::AluOp::Sll,
    sparc::AluOp::Srl,
    sparc::AluOp::Sra,
];

const SPARC_COND: [sparc::Cond; 10] = [
    sparc::Cond::E,
    sparc::Cond::Ne,
    sparc::Cond::L,
    sparc::Cond::G,
    sparc::Cond::Le,
    sparc::Cond::Ge,
    sparc::Cond::Lu,
    sparc::Cond::Gu,
    sparc::Cond::Leu,
    sparc::Cond::Geu,
];

const SPARC_FP: [sparc::FpOp; 4] = [
    sparc::FpOp::Add,
    sparc::FpOp::Sub,
    sparc::FpOp::Mul,
    sparc::FpOp::Div,
];

fn roi_w(w: &mut W, v: sparc::RegOrImm) {
    match v {
        sparc::RegOrImm::Reg(r) => {
            w.u8(0);
            w.u8(r.0);
        }
        sparc::RegOrImm::Imm(i) => {
            w.u8(1);
            w.i16(i);
        }
    }
}

fn roi_r(r: &mut R<'_>) -> Result<sparc::RegOrImm> {
    Ok(match r.u8()? {
        0 => sparc::RegOrImm::Reg(sparc::Reg(r.u8()?)),
        1 => sparc::RegOrImm::Imm(r.i16()?),
        _ => return Err(CodecError("bad reg-or-imm".into())),
    })
}

/// Encodes SPARC code for the cache.
pub fn encode_sparc(code: &[SparcInst]) -> Vec<u8> {
    let mut w = W(Vec::with_capacity(code.len() * 8));
    w.u32(code.len() as u32);
    for inst in code {
        encode_sparc_inst(&mut w, inst);
    }
    w.0
}

#[allow(clippy::too_many_lines)]
fn encode_sparc_inst(w: &mut W, inst: &SparcInst) {
    use SparcInst as I;
    match inst {
        I::Sethi { imm22, rd } => {
            w.u8(0);
            w.u32(*imm22);
            w.u8(rd.0);
        }
        I::Alu {
            op,
            rs1,
            rhs,
            rd,
            trapping,
        } => {
            w.u8(1);
            w.u8(pos_of(&SPARC_ALU, op));
            w.u8(rs1.0);
            roi_w(w, *rhs);
            w.u8(rd.0);
            w.boolean(*trapping);
        }
        I::Cmp { rs1, rhs } => {
            w.u8(2);
            w.u8(rs1.0);
            roi_w(w, *rhs);
        }
        I::Ld {
            rd,
            rs1,
            off,
            width,
            signed,
        } => {
            w.u8(3);
            w.u8(rd.0);
            w.u8(rs1.0);
            roi_w(w, *off);
            w.u8(width.tag());
            w.boolean(*signed);
        }
        I::St {
            rs,
            rs1,
            off,
            width,
        } => {
            w.u8(4);
            w.u8(rs.0);
            w.u8(rs1.0);
            roi_w(w, *off);
            w.u8(width.tag());
        }
        I::LdF { fd, rs1, off, is32 } => {
            w.u8(5);
            w.u8(fd.0);
            w.u8(rs1.0);
            roi_w(w, *off);
            w.boolean(*is32);
        }
        I::StF { fs, rs1, off, is32 } => {
            w.u8(6);
            w.u8(fs.0);
            w.u8(rs1.0);
            roi_w(w, *off);
            w.boolean(*is32);
        }
        I::Br { cond, target } => {
            w.u8(7);
            w.u8(pos_of(&SPARC_COND, cond));
            w.u32(*target);
        }
        I::Ba { target } => {
            w.u8(8);
            w.u32(*target);
        }
        I::Call { func, unwind } => {
            w.u8(9);
            w.u32(*func);
            w.opt_u32(*unwind);
        }
        I::CallIndirect { rs, unwind } => {
            w.u8(10);
            w.u8(rs.0);
            w.opt_u32(*unwind);
        }
        I::CallIntrinsic { which, nargs } => {
            w.u8(11);
            w.u8(intrinsic_tag(*which));
            w.u8(*nargs);
        }
        I::Ret => w.u8(12),
        I::Unwind => w.u8(13),
        I::MovSym { rd, sym } => {
            w.u8(14);
            w.u8(rd.0);
            w.sym(*sym);
        }
        I::FMov(a, b) => {
            w.u8(15);
            w.u8(a.0);
            w.u8(b.0);
        }
        I::FAlu {
            op,
            fs1,
            fs2,
            fd,
            is32,
        } => {
            w.u8(16);
            w.u8(pos_of(&SPARC_FP, op));
            w.u8(fs1.0);
            w.u8(fs2.0);
            w.u8(fd.0);
            w.boolean(*is32);
        }
        I::FCmp { fs1, fs2, is32 } => {
            w.u8(17);
            w.u8(fs1.0);
            w.u8(fs2.0);
            w.boolean(*is32);
        }
        I::CvtIF {
            fd,
            rs,
            to32,
            signed,
        } => {
            w.u8(18);
            w.u8(fd.0);
            w.u8(rs.0);
            w.boolean(*to32);
            w.boolean(*signed);
        }
        I::CvtFI {
            rd,
            fs,
            from32,
            signed,
        } => {
            w.u8(19);
            w.u8(rd.0);
            w.u8(fs.0);
            w.boolean(*from32);
            w.boolean(*signed);
        }
        I::CvtFF { fd, fs, to32 } => {
            w.u8(20);
            w.u8(fd.0);
            w.u8(fs.0);
            w.boolean(*to32);
        }
        I::MovGF(r, f) => {
            w.u8(21);
            w.u8(r.0);
            w.u8(f.0);
        }
        I::MovFG(f, r) => {
            w.u8(22);
            w.u8(f.0);
            w.u8(r.0);
        }
    }
}

/// Decodes cached SPARC code.
///
/// # Errors
///
/// Returns [`CodecError`] on truncation or bad tags.
pub fn decode_sparc(bytes: &[u8]) -> Result<Vec<SparcInst>> {
    let mut r = R { buf: bytes, pos: 0 };
    let n = checked_count(&mut r)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(decode_sparc_inst(&mut r)?);
    }
    Ok(out)
}

#[allow(clippy::too_many_lines)]
fn decode_sparc_inst(r: &mut R<'_>) -> Result<SparcInst> {
    use SparcInst as I;
    Ok(match r.u8()? {
        0 => I::Sethi {
            imm22: r.u32()?,
            rd: sparc::Reg(r.u8()?),
        },
        1 => I::Alu {
            op: at(&SPARC_ALU, r.u8()?, "alu")?,
            rs1: sparc::Reg(r.u8()?),
            rhs: roi_r(r)?,
            rd: sparc::Reg(r.u8()?),
            trapping: r.boolean()?,
        },
        2 => I::Cmp {
            rs1: sparc::Reg(r.u8()?),
            rhs: roi_r(r)?,
        },
        3 => I::Ld {
            rd: sparc::Reg(r.u8()?),
            rs1: sparc::Reg(r.u8()?),
            off: roi_r(r)?,
            width: Width::from_tag(r.u8()?).ok_or_else(|| CodecError("width".into()))?,
            signed: r.boolean()?,
        },
        4 => I::St {
            rs: sparc::Reg(r.u8()?),
            rs1: sparc::Reg(r.u8()?),
            off: roi_r(r)?,
            width: Width::from_tag(r.u8()?).ok_or_else(|| CodecError("width".into()))?,
        },
        5 => I::LdF {
            fd: sparc::FReg(r.u8()?),
            rs1: sparc::Reg(r.u8()?),
            off: roi_r(r)?,
            is32: r.boolean()?,
        },
        6 => I::StF {
            fs: sparc::FReg(r.u8()?),
            rs1: sparc::Reg(r.u8()?),
            off: roi_r(r)?,
            is32: r.boolean()?,
        },
        7 => I::Br {
            cond: at(&SPARC_COND, r.u8()?, "cond")?,
            target: r.u32()?,
        },
        8 => I::Ba { target: r.u32()? },
        9 => I::Call {
            func: r.u32()?,
            unwind: r.opt_u32()?,
        },
        10 => I::CallIndirect {
            rs: sparc::Reg(r.u8()?),
            unwind: r.opt_u32()?,
        },
        11 => I::CallIntrinsic {
            which: at(&Intrinsic::ALL, r.u8()?, "intrinsic")?,
            nargs: r.u8()?,
        },
        12 => I::Ret,
        13 => I::Unwind,
        14 => I::MovSym {
            rd: sparc::Reg(r.u8()?),
            sym: r.sym()?,
        },
        15 => I::FMov(sparc::FReg(r.u8()?), sparc::FReg(r.u8()?)),
        16 => I::FAlu {
            op: at(&SPARC_FP, r.u8()?, "fpop")?,
            fs1: sparc::FReg(r.u8()?),
            fs2: sparc::FReg(r.u8()?),
            fd: sparc::FReg(r.u8()?),
            is32: r.boolean()?,
        },
        17 => I::FCmp {
            fs1: sparc::FReg(r.u8()?),
            fs2: sparc::FReg(r.u8()?),
            is32: r.boolean()?,
        },
        18 => I::CvtIF {
            fd: sparc::FReg(r.u8()?),
            rs: sparc::Reg(r.u8()?),
            to32: r.boolean()?,
            signed: r.boolean()?,
        },
        19 => I::CvtFI {
            rd: sparc::Reg(r.u8()?),
            fs: sparc::FReg(r.u8()?),
            from32: r.boolean()?,
            signed: r.boolean()?,
        },
        20 => I::CvtFF {
            fd: sparc::FReg(r.u8()?),
            fs: sparc::FReg(r.u8()?),
            to32: r.boolean()?,
        },
        21 => I::MovGF(sparc::Reg(r.u8()?), sparc::FReg(r.u8()?)),
        22 => I::MovFG(sparc::FReg(r.u8()?), sparc::Reg(r.u8()?)),
        other => return Err(CodecError(format!("bad sparc tag {other}"))),
    })
}

const RISCV_ALU: [riscv::AluOp; 15] = [
    riscv::AluOp::Add,
    riscv::AluOp::Sub,
    riscv::AluOp::Mul,
    riscv::AluOp::Sdiv,
    riscv::AluOp::Udiv,
    riscv::AluOp::Srem,
    riscv::AluOp::Urem,
    riscv::AluOp::And,
    riscv::AluOp::Or,
    riscv::AluOp::Xor,
    riscv::AluOp::Sll,
    riscv::AluOp::Srl,
    riscv::AluOp::Sra,
    riscv::AluOp::Slt,
    riscv::AluOp::Sltu,
];

const RISCV_BR: [riscv::BrCond; 6] = [
    riscv::BrCond::Eq,
    riscv::BrCond::Ne,
    riscv::BrCond::Lt,
    riscv::BrCond::Ge,
    riscv::BrCond::Ltu,
    riscv::BrCond::Geu,
];

const RISCV_FP: [riscv::FpOp; 4] = [
    riscv::FpOp::Add,
    riscv::FpOp::Sub,
    riscv::FpOp::Mul,
    riscv::FpOp::Div,
];

const RISCV_FSET: [riscv::FSetOp; 3] =
    [riscv::FSetOp::Feq, riscv::FSetOp::Flt, riscv::FSetOp::Fle];

fn rv_roi_w(w: &mut W, v: riscv::RegOrImm) {
    match v {
        riscv::RegOrImm::Reg(r) => {
            w.u8(0);
            w.u8(r.0);
        }
        riscv::RegOrImm::Imm(i) => {
            w.u8(1);
            w.i16(i);
        }
    }
}

fn rv_roi_r(r: &mut R<'_>) -> Result<riscv::RegOrImm> {
    Ok(match r.u8()? {
        0 => riscv::RegOrImm::Reg(riscv::Reg(r.u8()?)),
        1 => riscv::RegOrImm::Imm(r.i16()?),
        _ => return Err(CodecError("bad reg-or-imm".into())),
    })
}

/// Encodes RISC-V code for the cache.
pub fn encode_riscv(code: &[RiscvInst]) -> Vec<u8> {
    let mut w = W(Vec::with_capacity(code.len() * 8));
    w.u32(code.len() as u32);
    for inst in code {
        encode_riscv_inst(&mut w, inst);
    }
    w.0
}

#[allow(clippy::too_many_lines)]
fn encode_riscv_inst(w: &mut W, inst: &RiscvInst) {
    use RiscvInst as I;
    match inst {
        I::Lui { imm20, rd } => {
            w.u8(0);
            w.u32(*imm20);
            w.u8(rd.0);
        }
        I::Alu {
            op,
            rs1,
            rhs,
            rd,
            trapping,
        } => {
            w.u8(1);
            w.u8(pos_of(&RISCV_ALU, op));
            w.u8(rs1.0);
            rv_roi_w(w, *rhs);
            w.u8(rd.0);
            w.boolean(*trapping);
        }
        I::Ld {
            rd,
            rs1,
            off,
            width,
            signed,
        } => {
            w.u8(2);
            w.u8(rd.0);
            w.u8(rs1.0);
            w.i16(*off);
            w.u8(width.tag());
            w.boolean(*signed);
        }
        I::St {
            rs,
            rs1,
            off,
            width,
        } => {
            w.u8(3);
            w.u8(rs.0);
            w.u8(rs1.0);
            w.i16(*off);
            w.u8(width.tag());
        }
        I::LdF { fd, rs1, off, is32 } => {
            w.u8(4);
            w.u8(fd.0);
            w.u8(rs1.0);
            w.i16(*off);
            w.boolean(*is32);
        }
        I::StF { fs, rs1, off, is32 } => {
            w.u8(5);
            w.u8(fs.0);
            w.u8(rs1.0);
            w.i16(*off);
            w.boolean(*is32);
        }
        I::Br {
            cond,
            rs1,
            rs2,
            target,
        } => {
            w.u8(6);
            w.u8(pos_of(&RISCV_BR, cond));
            w.u8(rs1.0);
            w.u8(rs2.0);
            w.u32(*target);
        }
        I::J { target } => {
            w.u8(7);
            w.u32(*target);
        }
        I::Call { func, unwind } => {
            w.u8(8);
            w.u32(*func);
            w.opt_u32(*unwind);
        }
        I::CallIndirect { rs, unwind } => {
            w.u8(9);
            w.u8(rs.0);
            w.opt_u32(*unwind);
        }
        I::CallIntrinsic { which, nargs } => {
            w.u8(10);
            w.u8(intrinsic_tag(*which));
            w.u8(*nargs);
        }
        I::Ret => w.u8(11),
        I::Unwind => w.u8(12),
        I::MovSym { rd, sym } => {
            w.u8(13);
            w.u8(rd.0);
            w.sym(*sym);
        }
        I::FMov(a, b) => {
            w.u8(14);
            w.u8(a.0);
            w.u8(b.0);
        }
        I::FAlu {
            op,
            fs1,
            fs2,
            fd,
            is32,
        } => {
            w.u8(15);
            w.u8(pos_of(&RISCV_FP, op));
            w.u8(fs1.0);
            w.u8(fs2.0);
            w.u8(fd.0);
            w.boolean(*is32);
        }
        I::FSet {
            op,
            rd,
            fs1,
            fs2,
            is32,
        } => {
            w.u8(16);
            w.u8(pos_of(&RISCV_FSET, op));
            w.u8(rd.0);
            w.u8(fs1.0);
            w.u8(fs2.0);
            w.boolean(*is32);
        }
        I::CvtIF {
            fd,
            rs,
            to32,
            signed,
        } => {
            w.u8(17);
            w.u8(fd.0);
            w.u8(rs.0);
            w.boolean(*to32);
            w.boolean(*signed);
        }
        I::CvtFI {
            rd,
            fs,
            from32,
            signed,
        } => {
            w.u8(18);
            w.u8(rd.0);
            w.u8(fs.0);
            w.boolean(*from32);
            w.boolean(*signed);
        }
        I::CvtFF { fd, fs, to32 } => {
            w.u8(19);
            w.u8(fd.0);
            w.u8(fs.0);
            w.boolean(*to32);
        }
        I::MovGF(r, f) => {
            w.u8(20);
            w.u8(r.0);
            w.u8(f.0);
        }
        I::MovFG(f, r) => {
            w.u8(21);
            w.u8(f.0);
            w.u8(r.0);
        }
    }
}

/// Decodes cached RISC-V code.
///
/// # Errors
///
/// Returns [`CodecError`] on truncation or bad tags.
pub fn decode_riscv(bytes: &[u8]) -> Result<Vec<RiscvInst>> {
    let mut r = R { buf: bytes, pos: 0 };
    let n = checked_count(&mut r)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(decode_riscv_inst(&mut r)?);
    }
    Ok(out)
}

#[allow(clippy::too_many_lines)]
fn decode_riscv_inst(r: &mut R<'_>) -> Result<RiscvInst> {
    use RiscvInst as I;
    Ok(match r.u8()? {
        0 => I::Lui {
            imm20: r.u32()?,
            rd: riscv::Reg(r.u8()?),
        },
        1 => I::Alu {
            op: at(&RISCV_ALU, r.u8()?, "alu")?,
            rs1: riscv::Reg(r.u8()?),
            rhs: rv_roi_r(r)?,
            rd: riscv::Reg(r.u8()?),
            trapping: r.boolean()?,
        },
        2 => I::Ld {
            rd: riscv::Reg(r.u8()?),
            rs1: riscv::Reg(r.u8()?),
            off: r.i16()?,
            width: Width::from_tag(r.u8()?).ok_or_else(|| CodecError("width".into()))?,
            signed: r.boolean()?,
        },
        3 => I::St {
            rs: riscv::Reg(r.u8()?),
            rs1: riscv::Reg(r.u8()?),
            off: r.i16()?,
            width: Width::from_tag(r.u8()?).ok_or_else(|| CodecError("width".into()))?,
        },
        4 => I::LdF {
            fd: riscv::FReg(r.u8()?),
            rs1: riscv::Reg(r.u8()?),
            off: r.i16()?,
            is32: r.boolean()?,
        },
        5 => I::StF {
            fs: riscv::FReg(r.u8()?),
            rs1: riscv::Reg(r.u8()?),
            off: r.i16()?,
            is32: r.boolean()?,
        },
        6 => I::Br {
            cond: at(&RISCV_BR, r.u8()?, "cond")?,
            rs1: riscv::Reg(r.u8()?),
            rs2: riscv::Reg(r.u8()?),
            target: r.u32()?,
        },
        7 => I::J { target: r.u32()? },
        8 => I::Call {
            func: r.u32()?,
            unwind: r.opt_u32()?,
        },
        9 => I::CallIndirect {
            rs: riscv::Reg(r.u8()?),
            unwind: r.opt_u32()?,
        },
        10 => I::CallIntrinsic {
            which: at(&Intrinsic::ALL, r.u8()?, "intrinsic")?,
            nargs: r.u8()?,
        },
        11 => I::Ret,
        12 => I::Unwind,
        13 => I::MovSym {
            rd: riscv::Reg(r.u8()?),
            sym: r.sym()?,
        },
        14 => I::FMov(riscv::FReg(r.u8()?), riscv::FReg(r.u8()?)),
        15 => I::FAlu {
            op: at(&RISCV_FP, r.u8()?, "fpop")?,
            fs1: riscv::FReg(r.u8()?),
            fs2: riscv::FReg(r.u8()?),
            fd: riscv::FReg(r.u8()?),
            is32: r.boolean()?,
        },
        16 => I::FSet {
            op: at(&RISCV_FSET, r.u8()?, "fset")?,
            rd: riscv::Reg(r.u8()?),
            fs1: riscv::FReg(r.u8()?),
            fs2: riscv::FReg(r.u8()?),
            is32: r.boolean()?,
        },
        17 => I::CvtIF {
            fd: riscv::FReg(r.u8()?),
            rs: riscv::Reg(r.u8()?),
            to32: r.boolean()?,
            signed: r.boolean()?,
        },
        18 => I::CvtFI {
            rd: riscv::Reg(r.u8()?),
            fs: riscv::FReg(r.u8()?),
            from32: r.boolean()?,
            signed: r.boolean()?,
        },
        19 => I::CvtFF {
            fd: riscv::FReg(r.u8()?),
            fs: riscv::FReg(r.u8()?),
            to32: r.boolean()?,
        },
        20 => I::MovGF(riscv::Reg(r.u8()?), riscv::FReg(r.u8()?)),
        21 => I::MovFG(riscv::FReg(r.u8()?), riscv::Reg(r.u8()?)),
        other => return Err(CodecError(format!("bad riscv tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x86_round_trip() {
        let m = llva_core::parser::parse_module(
            r#"
%S = type { int, double }

int %f(int %x, %S* %p) {
entry:
    %c = setlt int %x, 10
    br bool %c, label %a, label %b
a:
    %g = getelementptr %S* %p, long 0, ubyte 1
    %d = load double* %g
    %i = cast double %d to int
    ret int %i
b:
    %r = call int %f(int 1, %S* %p)
    ret int %r
}
"#,
        )
        .expect("parses");
        let f = m.function_by_name("f").expect("f");
        let code = llva_backend::compile_x86(&m, f);
        let bytes = encode_x86(&code);
        let decoded = decode_x86(&bytes).expect("decodes");
        assert_eq!(code, decoded);
    }

    #[test]
    fn sparc_round_trip() {
        let mut m = llva_core::parser::parse_module(
            r#"
@g = global long 123456789

long %f(long %x) {
entry:
    %v = load long* @g
    %s = add long %v, %x
    store long %s, long* @g
    ret long %s
}
"#,
        )
        .expect("parses");
        m.set_target(llva_core::layout::TargetConfig::sparc_v9());
        let f = m.function_by_name("f").expect("f");
        let code = llva_backend::compile_sparc(&m, f);
        let bytes = encode_sparc(&code);
        let decoded = decode_sparc(&bytes).expect("decodes");
        assert_eq!(code, decoded);
    }

    #[test]
    fn riscv_round_trip() {
        let mut m = llva_core::parser::parse_module(
            r#"
@g = global long 123456789

double %f(long %x, double %w) {
entry:
    %v = load long* @g
    %s = add long %v, %x
    %c = setlt long %s, 99999999999
    br bool %c, label %a, label %b
a:
    store long %s, long* @g
    %d = cast long %s to double
    %e = mul double %d, %w
    ret double %e
b:
    %r = call double %f(long 1, double %w)
    ret double %r
}
"#,
        )
        .expect("parses");
        m.set_target(llva_core::layout::TargetConfig::riscv64());
        let f = m.function_by_name("f").expect("f");
        let code = llva_backend::compile_riscv(&m, f);
        let bytes = encode_riscv(&code);
        let decoded = decode_riscv(&bytes).expect("decodes");
        assert_eq!(code, decoded);
    }

    #[test]
    fn corrupt_blobs_rejected() {
        assert!(decode_x86(&[1, 2, 3]).is_err());
        assert!(decode_sparc(&[9]).is_err());
        assert!(decode_riscv(&[7, 7]).is_err());
        let bytes = encode_x86(&[X86Inst::Ret]);
        let mut corrupt = bytes.clone();
        corrupt[4] = 250; // bad tag
        assert!(decode_x86(&corrupt).is_err());
        let bytes = encode_riscv(&[RiscvInst::Ret]);
        let mut corrupt = bytes.clone();
        corrupt[4] = 250; // bad tag
        assert!(decode_riscv(&corrupt).is_err());
    }

    #[test]
    fn huge_counts_rejected_without_allocating() {
        // a count claiming 4 billion instructions in a 4-byte blob
        let bomb = u32::MAX.to_le_bytes();
        assert!(decode_x86(&bomb).is_err());
        assert!(decode_sparc(&bomb).is_err());
        assert!(decode_riscv(&bomb).is_err());
    }

    #[test]
    fn frame_round_trip() {
        let payload = encode_x86(&[X86Inst::Ret]);
        let framed = frame_entry("m.x86.fn0", &payload);
        assert_eq!(
            unframe_entry("m.x86.fn0", &framed).expect("valid"),
            &payload[..]
        );
    }

    #[test]
    fn frame_rejects_wrong_key() {
        let framed = frame_entry("m.x86.fn0", b"payload");
        assert!(unframe_entry("m.x86.fn1", &framed).is_err());
    }

    #[test]
    fn frame_rejects_any_single_bit_flip() {
        let framed = frame_entry("k", &encode_x86(&[X86Inst::Ret, X86Inst::Cdq]));
        for byte in 0..framed.len() {
            for bit in 0..8 {
                let mut bad = framed.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    unframe_entry("k", &bad).is_err(),
                    "flip of byte {byte} bit {bit} must be detected"
                );
            }
        }
    }

    #[test]
    fn frame_rejects_truncations_and_extensions() {
        let framed = frame_entry("k", b"some payload bytes");
        for cut in 0..framed.len() {
            assert!(unframe_entry("k", &framed[..cut]).is_err(), "cut at {cut}");
        }
        let mut longer = framed;
        longer.push(0);
        assert!(unframe_entry("k", &longer).is_err(), "trailing garbage");
    }
}
