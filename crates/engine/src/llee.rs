//! LLEE: the execution manager (paper §4.1).
//!
//! "Offline translation when possible, online translation whenever
//! necessary": when control reaches an untranslated function, LLEE
//! first consults the OS-provided storage API for a cached translation
//! and validates its timestamp against the module; on a miss (or with
//! no storage at all) it invokes the JIT, installs the code, and writes
//! it back to the cache. `translate_all` is the offline-translation
//! mode (the OS "initiating 'execution' … but flagging it for
//! translation and not actual execution").
//!
//! # Parallel offline translation
//!
//! Per-function translation is pure (`compile_x86`/`compile_sparc`
//! take `&Module` and touch no shared state), so offline translation
//! is an embarrassingly parallel batch job.
//! [`ExecutionManager::translate_all_parallel`] fans compilation out
//! across scoped worker threads pulling function ids from a shared
//! atomic work queue; results are installed and written back serially
//! after the join, in work-list order, so the installed code and the
//! cache contents are byte-identical to the serial
//! [`ExecutionManager::translate_all`] path regardless of worker
//! count. Cache probing (which needs `&mut` access to the engine)
//! stays on the calling thread and only actual misses reach the
//! workers.
//!
//! # Incremental per-function cache keys
//!
//! Cache validation is per function, not per module: each entry is
//! stamped with a content hash of the function's own encoded body
//! chained onto a hash of everything a translation can observe
//! *outside* the body (target configuration, type table, globals, and
//! all function signatures — see
//! [`llva_core::bytecode::encode_module_env`]). After a constrained
//! self-modifying-code edit (`modify_function`, §3.4) only the edited
//! function's hash changes, so the next `translate_all` re-translates
//! exactly that function and serves every other entry from the cache.
//! A whole-module fingerprint ([`stamp`]) is still exported for
//! callers that want coarse validation.

use crate::codec;
use crate::env::{Env, StackView};
use crate::interp::trap_number;
use crate::storage::Storage;
use llva_backend::common::layout_globals;
use llva_backend::{
    compile_riscv_with, compile_sparc_with, compile_x86_with, PeepholeConfig,
};
use llva_core::module::{FuncId, Module};
use llva_machine::common::{ExecStats, Exit, Trap};
use llva_machine::memory::{Memory, GLOBAL_BASE};
use llva_machine::riscv::{RiscvMachine, RiscvProgram};
use llva_machine::sparc::{SparcMachine, SparcProgram};
use llva_machine::x86::{X86Machine, X86Program};
use std::fmt;
use std::time::{Duration, Instant};

/// Which implementation ISA to translate to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TargetIsa {
    /// The IA-32-like CISC target.
    X86,
    /// The SPARC-V9-like RISC target.
    Sparc,
    /// The RV64-like RISC target (no condition codes).
    Riscv,
}

impl TargetIsa {
    /// All implementation ISAs, for code enumerating translation
    /// targets (conformance stages, kill matrices, benchmarks).
    pub const ALL: [TargetIsa; 3] = [TargetIsa::X86, TargetIsa::Sparc, TargetIsa::Riscv];
}

impl fmt::Display for TargetIsa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TargetIsa::X86 => "x86",
            TargetIsa::Sparc => "sparc",
            TargetIsa::Riscv => "riscv",
        })
    }
}

/// Why execution failed.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A hardware trap was delivered (after running any registered
    /// trap handler).
    Trapped(Trap),
    /// The fuel limit was exhausted.
    OutOfFuel,
    /// The entry function does not exist or has no body.
    NoSuchFunction(String),
    /// Control reached a declaration with no body to translate.
    MissingBody(String),
    /// One function's translation panicked during parallel offline
    /// translation; every other function was still translated and
    /// installed.
    TranslationPanicked(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Trapped(t) => write!(f, "trapped: {t}"),
            EngineError::OutOfFuel => f.write_str("out of fuel"),
            EngineError::NoSuchFunction(n) => write!(f, "no such function %{n}"),
            EngineError::MissingBody(n) => write!(f, "function %{n} has no body to translate"),
            EngineError::TranslationPanicked(n) => {
                write!(f, "translation of %{n} panicked (other functions unaffected)")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Translation / cache statistics for one manager.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TranslationStats {
    /// Functions translated by the JIT this session.
    pub functions_translated: usize,
    /// Total wall-clock time spent translating.
    pub translate_time: Duration,
    /// Translations loaded from the offline cache.
    pub cache_hits: usize,
    /// Cache lookups that missed (or were stale).
    pub cache_misses: usize,
    /// Cache lookups that found an entry whose per-function content
    /// hash no longer matched (a subset of `cache_misses`).
    pub cache_stale: usize,
    /// Cache lookups whose entry failed frame validation (bad magic,
    /// torn length, checksum mismatch) or whose payload would not
    /// decode (a subset of `cache_misses`). The bad entry is
    /// quarantined and the function retranslated.
    pub cache_corrupt: usize,
    /// Retranslations forced by a corrupt cache entry.
    pub cache_retried: usize,
    /// Corrupt entries successfully rewritten after retranslation.
    pub cache_recovered: usize,
    /// Storage operations (read probes or validated write-backs) that
    /// failed transiently but succeeded within the bounded retry budget
    /// — the fault healed, nothing was quarantined.
    pub retried_ok: usize,
    /// Storage operations that kept failing through the whole retry
    /// budget: the fault is persistent, so the probe gave up (and
    /// quarantined the entry) or the write-back was abandoned.
    pub gave_up: usize,
    /// Translations discarded by SMC invalidation.
    pub invalidations: usize,
    /// Translations installed from a persistent module image
    /// ([`crate::image::LlvaImage`]) instead of storage or the JIT.
    pub image_hits: usize,
    /// Image entries skipped because their per-function content hash no
    /// longer matched the module.
    pub image_stale: usize,
    /// Image native sections (or individual entries) that failed
    /// checksum/decode validation and were ignored.
    pub image_corrupt: usize,
}

impl TranslationStats {
    /// Accumulates `other` into `self` — per-run managers are ephemeral
    /// inside the supervisor, so long-running surfaces (the serving
    /// layer's metrics endpoint) aggregate their stats across calls.
    pub fn merge(&mut self, other: &TranslationStats) {
        self.functions_translated += other.functions_translated;
        self.translate_time += other.translate_time;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_stale += other.cache_stale;
        self.cache_corrupt += other.cache_corrupt;
        self.cache_retried += other.cache_retried;
        self.cache_recovered += other.cache_recovered;
        self.retried_ok += other.retried_ok;
        self.gave_up += other.gave_up;
        self.invalidations += other.invalidations;
        self.image_hits += other.image_hits;
        self.image_stale += other.image_stale;
        self.image_corrupt += other.image_corrupt;
    }
}

/// Offline-cache counters for one function (see
/// [`ExecutionManager::func_cache_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuncCacheStats {
    /// Lookups served from the cache.
    pub hits: u32,
    /// Lookups that found nothing usable (includes `stale` and
    /// `corrupt`).
    pub misses: u32,
    /// Lookups that found an entry with a mismatched content hash.
    pub stale: u32,
    /// Lookups that found a corrupt entry (frame or payload invalid).
    pub corrupt: u32,
}

/// Bounded retry budget for storage reads and validated write-backs.
/// Attempt-count based, never wall-clock, so fault-injection runs stay
/// deterministic: a transient fault heals within the budget; anything
/// that persists through it is treated as real corruption.
const STORAGE_ATTEMPTS: u32 = 3;

/// What a cache probe found (see [`ExecutionManager::try_cache_load`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CacheProbe {
    /// Validated entry installed.
    Hit,
    /// Nothing usable (absent, stale, or no storage attached).
    Miss,
    /// An entry existed but failed validation; it was quarantined and
    /// the caller must retranslate.
    Corrupt,
}

/// The result of a successful run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// The entry function's return value (raw bits).
    pub value: u64,
    /// Machine execution statistics for the whole session so far.
    pub stats: ExecStats,
}

// One `Engine` exists per `ExecutionManager` and lives as long as it,
// so the variant size gap doesn't matter; boxing the machines would
// put an indirection on the simulator hot path.
#[allow(clippy::large_enum_variant)]
enum Engine {
    X86 {
        program: X86Program,
        machine: X86Machine,
    },
    Sparc {
        program: SparcProgram,
        machine: SparcMachine,
    },
    Riscv {
        program: RiscvProgram,
        machine: RiscvMachine,
    },
}

/// The LLVA execution environment: owns the module, the simulated
/// processor, and the translation state.
pub struct ExecutionManager {
    module: Module,
    isa: TargetIsa,
    engine: Engine,
    /// Intrinsic state (I/O, privileged bit, trap handlers).
    pub env: Env,
    storage: Option<Box<dyn Storage>>,
    cache_name: String,
    /// Per-function content hashes (the cache "timestamps", §4.1) —
    /// indexed by function id; see [`function_stamps`].
    func_hashes: Vec<u64>,
    stats: TranslationStats,
    func_cache: Vec<FuncCacheStats>,
    func_names: Vec<String>,
    fuel: u64,
    /// Whether translations run the shared peephole pass. Part of the
    /// cache key: peephole-off code must never be served to (or from)
    /// a peephole-on manager.
    peephole: PeepholeConfig,
    /// Warm-start native code: the attached image's entry index for
    /// this ISA, probed by [`ExecutionManager::translate`] before the
    /// storage cache. Blobs decode lazily, one function at a time.
    image: Option<ImageIndex>,
}

/// A checksummed-and-indexed view of an attached image's native section:
/// `(function id, content hash, blob byte range)`, sorted by id.
struct ImageIndex {
    image: std::sync::Arc<crate::image::LlvaImage>,
    entries: Vec<(u32, u64, std::ops::Range<usize>)>,
}

impl fmt::Debug for ExecutionManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecutionManager")
            .field("module", &self.module.name())
            .field("isa", &self.isa)
            .field("stats", &self.stats)
            .finish()
    }
}

impl ExecutionManager {
    /// Creates a manager with a 16 MiB simulated memory.
    pub fn new(module: Module, isa: TargetIsa) -> ExecutionManager {
        ExecutionManager::with_memory_size(module, isa, 1 << 24)
    }

    /// Creates a manager with a custom memory size.
    pub fn with_memory_size(mut module: Module, isa: TargetIsa, mem_size: u64) -> ExecutionManager {
        // the module's target flags must match the processor (§3.2)
        let target = match isa {
            TargetIsa::X86 => llva_core::layout::TargetConfig::ia32(),
            TargetIsa::Sparc => llva_core::layout::TargetConfig::sparc_v9(),
            TargetIsa::Riscv => llva_core::layout::TargetConfig::riscv64(),
        };
        module.set_target(target);
        let image = layout_globals(&module);
        let mut mem = Memory::new(mem_size, image.heap_base, target.endianness);
        mem.write_bytes(GLOBAL_BASE, &image.image)
            .expect("global image fits");
        let engine = match isa {
            TargetIsa::X86 => Engine::X86 {
                program: X86Program::new(module.num_functions(), image.addrs.clone()),
                machine: X86Machine::new(mem),
            },
            TargetIsa::Sparc => Engine::Sparc {
                program: SparcProgram::new(module.num_functions(), image.addrs.clone()),
                machine: SparcMachine::new(mem),
            },
            TargetIsa::Riscv => Engine::Riscv {
                program: RiscvProgram::new(module.num_functions(), image.addrs.clone()),
                machine: RiscvMachine::new(mem),
            },
        };
        let func_names = module
            .functions()
            .map(|(_, f)| f.name().to_string())
            .collect();
        let func_hashes = function_stamps(&module);
        let func_cache = vec![FuncCacheStats::default(); func_hashes.len()];
        ExecutionManager {
            module,
            isa,
            engine,
            env: Env::new(),
            storage: None,
            cache_name: String::new(),
            func_hashes,
            stats: TranslationStats::default(),
            func_cache,
            func_names,
            fuel: 10_000_000_000,
            peephole: PeepholeConfig::from_env(),
            image: None,
        }
    }

    /// Enables or disables the shared peephole pass for all future
    /// translations (the conformance oracle's off-vs-on stages). Does
    /// not retranslate already-installed code.
    pub fn set_peephole(&mut self, enabled: bool) {
        self.peephole = if enabled {
            PeepholeConfig::on()
        } else {
            PeepholeConfig::off()
        };
    }

    /// Attaches an OS storage implementation for offline caching
    /// (§4.1); `cache` names this program's cache.
    pub fn set_storage(&mut self, mut storage: Box<dyn Storage>, cache: &str) {
        storage.create_cache(cache);
        self.storage = Some(storage);
        self.cache_name = cache.to_string();
    }

    /// Detaches and returns the storage (to inspect or reuse).
    pub fn take_storage(&mut self) -> Option<Box<dyn Storage>> {
        self.storage.take()
    }

    /// Limits executed native instructions.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// The module being executed.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The target ISA.
    pub fn isa(&self) -> TargetIsa {
        self.isa
    }

    /// Translation statistics.
    pub fn stats(&self) -> TranslationStats {
        self.stats
    }

    /// Machine execution statistics.
    pub fn exec_stats(&self) -> ExecStats {
        match &self.engine {
            Engine::X86 { machine, .. } => machine.stats(),
            Engine::Sparc { machine, .. } => machine.stats(),
            Engine::Riscv { machine, .. } => machine.stats(),
        }
    }

    /// Total native instructions across installed translations.
    pub fn installed_insts(&self) -> usize {
        match &self.engine {
            Engine::X86 { program, .. } => program.total_insts(),
            Engine::Sparc { program, .. } => program.total_insts(),
            Engine::Riscv { program, .. } => program.total_insts(),
        }
    }

    /// Total native code bytes across installed translations.
    pub fn installed_bytes(&self) -> usize {
        match &self.engine {
            Engine::X86 { program, .. } => program.total_bytes(),
            Engine::Sparc { program, .. } => program.total_bytes(),
            Engine::Riscv { program, .. } => program.total_bytes(),
        }
    }

    /// Reads `len` bytes of simulated memory (tests, profiling).
    pub fn read_memory(&self, addr: u64, len: u64) -> Option<Vec<u8>> {
        let mem = match &self.engine {
            Engine::X86 { machine, .. } => &machine.mem,
            Engine::Sparc { machine, .. } => &machine.mem,
            Engine::Riscv { machine, .. } => &machine.mem,
        };
        mem.read_bytes(addr, len).ok().map(<[u8]>::to_vec)
    }

    /// The relocated address of a global (profiling support).
    pub fn global_addr(&self, g: llva_core::module::GlobalId) -> u64 {
        match &self.engine {
            Engine::X86 { program, .. } => program.global_addr(g.index() as u32),
            Engine::Sparc { program, .. } => program.global_addr(g.index() as u32),
            Engine::Riscv { program, .. } => program.global_addr(g.index() as u32),
        }
    }

    /// The storage name under which function `f`'s translation is
    /// cached — the single source of truth for both the lookup and the
    /// write-back path (and for tests or tools that need to inspect or
    /// corrupt a specific entry).
    pub fn cache_key(&self, f: u32) -> String {
        let peep = if self.peephole.enabled { "" } else { ".nopeep" };
        format!("{}.{}{}.fn{}", self.module.name(), self.isa, peep, f)
    }

    /// This manager's per-function cache counters, indexed by function
    /// id: hits, misses, and stale entries (content hash mismatch).
    pub fn func_cache_stats(&self) -> &[FuncCacheStats] {
        &self.func_cache
    }

    /// Whether function `f`'s translation is already installed.
    pub fn is_function_installed(&self, f: u32) -> bool {
        match &self.engine {
            Engine::X86 { program, .. } => program.is_installed(f),
            Engine::Sparc { program, .. } => program.is_installed(f),
            Engine::Riscv { program, .. } => program.is_installed(f),
        }
    }

    /// Attaches a persistent image's native section for this manager's
    /// ISA — the warm-load fast path: no cache probe, no JIT, no
    /// per-function storage round trips. The section is checksummed
    /// and its entry frames indexed *once, here*; each function's blob
    /// is decoded and installed lazily, when [`Self::translate`] (or
    /// the [`Self::translate_all_parallel`] probe) first reaches that
    /// function. Entries whose content hash no longer matches the
    /// module are skipped at probe time (`image_stale`), undecodable
    /// blobs or a corrupt section fall back to cache/JIT
    /// (`image_corrupt`). Returns how many functions the index covers.
    pub fn set_image(&mut self, image: std::sync::Arc<crate::image::LlvaImage>) -> usize {
        let mut entries = match image.native_entry_ranges(self.isa) {
            Ok(entries) => entries,
            Err(_) => {
                // absent is a quiet miss; corrupt is worth counting
                if image
                    .sections()
                    .contains(&crate::image::SectionKind::Native(self.isa))
                {
                    self.stats.image_corrupt += 1;
                }
                return 0;
            }
        };
        entries.sort_unstable_by_key(|&(f, _, _)| f);
        let covered = entries.len();
        self.image = Some(ImageIndex { image, entries });
        covered
    }

    /// Probes the attached image (if any) for function `f`, decoding
    /// and installing its native blob on a fresh hit.
    fn try_image_load(&mut self, f: u32) -> bool {
        let Some(idx) = &self.image else {
            return false;
        };
        let Ok(i) = idx.entries.binary_search_by_key(&f, |&(f, _, _)| f) else {
            return false;
        };
        let (_, stamp, ref range) = idx.entries[i];
        if self.func_hashes.get(f as usize).copied() != Some(stamp) {
            self.stats.image_stale += 1;
            return false;
        }
        let blob = &idx.image.raw_bytes()[range.clone()];
        let ok = match &mut self.engine {
            Engine::X86 { program, .. } => codec::decode_x86(blob)
                .ok()
                .map(|code| program.install(f, code))
                .is_some(),
            Engine::Sparc { program, .. } => codec::decode_sparc(blob)
                .ok()
                .map(|code| program.install(f, code))
                .is_some(),
            Engine::Riscv { program, .. } => codec::decode_riscv(blob)
                .ok()
                .map(|code| program.install(f, code))
                .is_some(),
        };
        if ok {
            self.stats.image_hits += 1;
        } else {
            self.stats.image_corrupt += 1;
        }
        ok
    }

    /// The installed translations as image-section entries: `(function
    /// id, content hash, encoded code)` triples for this manager's ISA,
    /// ready for [`crate::image::ImageBuilder::add_native`]. Stamps are
    /// this manager's [`function_stamps`] (computed over the
    /// target-configured module), so a warm consumer of the same ISA
    /// validates them exactly as the storage cache would.
    pub fn native_image_entries(&self) -> Vec<(u32, u64, Vec<u8>)> {
        self.defined_functions()
            .into_iter()
            .filter_map(|f| {
                let blob = match &self.engine {
                    Engine::X86 { program, .. } => {
                        program.code(f).map(|code| codec::encode_x86(code))
                    }
                    Engine::Sparc { program, .. } => {
                        program.code(f).map(|code| codec::encode_sparc(code))
                    }
                    Engine::Riscv { program, .. } => {
                        program.code(f).map(|code| codec::encode_riscv(code))
                    }
                };
                blob.map(|blob| (f, self.func_hashes[f as usize], blob))
            })
            .collect()
    }

    /// Builds a persistent module image from this manager: the module's
    /// bytecode, optionally the full pre-decode section, and a native
    /// section holding every currently-installed translation (call
    /// [`Self::translate_all_parallel`] first for a complete one).
    pub fn build_image(&self, include_predecode: bool) -> Vec<u8> {
        let mut builder = crate::image::ImageBuilder::new(&self.module);
        if include_predecode {
            let pre = crate::predecode::PreModule::new(&self.module);
            pre.decode_all();
            builder.add_predecode(&pre);
        }
        builder.add_native(self.isa, &self.native_image_entries());
        builder.finish()
    }

    /// Probes the offline cache for function `f` and installs the
    /// cached translation on a validated hit. Every read is validated
    /// twice before any byte reaches the program: the self-describing
    /// frame (magic, version, length, key+payload checksum — see
    /// [`codec::unframe_entry`]) and then the instruction decode
    /// itself.
    ///
    /// A failed attempt is retried up to [`STORAGE_ATTEMPTS`] times
    /// (bounded, attempt-count based — no wall clock, so probes are
    /// deterministic): a *transient* fault (flaky read, momentary bit
    /// rot) heals on retry and is counted as `retried_ok` without
    /// quarantining a valid entry. Only an entry that stays invalid
    /// through the whole budget is a [`CacheProbe::Corrupt`]: it is
    /// quarantined (`gave_up`) so it cannot be served again, and the
    /// caller retranslates. Records hit/miss/stale/corrupt statistics;
    /// a manager without storage records nothing.
    fn try_cache_load(&mut self, f: u32) -> CacheProbe {
        if self.storage.is_none() {
            return CacheProbe::Miss;
        }
        let key = self.cache_key(f);
        let expected_ts = self.func_hashes[f as usize];
        // what the attempts observed, for classifying the final miss
        let mut saw_entry = false;
        let mut saw_fresh = false;
        for attempt in 0..STORAGE_ATTEMPTS {
            let Some(storage) = &self.storage else { break };
            let Some((blob, ts)) = storage.read(&self.cache_name, &key) else {
                continue; // absent or transiently unreadable
            };
            saw_entry = true;
            // per-function content-hash validation (§4.1 "check a
            // timestamp on … a cached vector", made incremental)
            if ts != expected_ts {
                continue; // stale — or a transiently garbled timestamp
            }
            saw_fresh = true;
            let installed = codec::unframe_entry(&key, &blob)
                .ok()
                .and_then(|payload| match &mut self.engine {
                    Engine::X86 { program, .. } => codec::decode_x86(payload)
                        .ok()
                        .map(|code| program.install(f, code)),
                    Engine::Sparc { program, .. } => codec::decode_sparc(payload)
                        .ok()
                        .map(|code| program.install(f, code)),
                    Engine::Riscv { program, .. } => codec::decode_riscv(payload)
                        .ok()
                        .map(|code| program.install(f, code)),
                })
                .is_some();
            if installed {
                if attempt > 0 {
                    self.stats.retried_ok += 1;
                }
                self.stats.cache_hits += 1;
                self.func_cache[f as usize].hits += 1;
                return CacheProbe::Hit;
            }
            // invalid frame or undecodable payload this attempt; retry
            // in case the damage was in transit rather than at rest
        }
        let per_func = &mut self.func_cache[f as usize];
        self.stats.cache_misses += 1;
        per_func.misses += 1;
        if !saw_entry {
            return CacheProbe::Miss;
        }
        if !saw_fresh {
            self.stats.cache_stale += 1;
            per_func.stale += 1;
            return CacheProbe::Miss;
        }
        // an entry with the right content hash stayed invalid through
        // every attempt: persistent corruption. Quarantine so the bad
        // blob is never consulted again, then retranslate.
        self.stats.cache_corrupt += 1;
        self.stats.gave_up += 1;
        per_func.corrupt += 1;
        if let Some(storage) = &mut self.storage {
            storage.quarantine(&self.cache_name, &key);
        }
        CacheProbe::Corrupt
    }

    /// Writes one framed cache entry and validates it by read-back
    /// (byte-for-byte plus timestamp), rewriting up to
    /// [`STORAGE_ATTEMPTS`] times. A write that validates after a
    /// transient fault counts as `retried_ok`; one that never validates
    /// is abandoned (`gave_up`) — the cache simply stays cold for that
    /// function, which the probe path already tolerates.
    fn write_validated(&mut self, key: &str, framed: &[u8], ts: u64) -> bool {
        let Some(storage) = &mut self.storage else {
            return false;
        };
        for attempt in 0..STORAGE_ATTEMPTS {
            storage.write(&self.cache_name, key, framed, ts);
            let landed = storage
                .read(&self.cache_name, key)
                .is_some_and(|(blob, got_ts)| got_ts == ts && blob == framed);
            if landed {
                if attempt > 0 {
                    self.stats.retried_ok += 1;
                }
                return true;
            }
        }
        self.stats.gave_up += 1;
        false
    }

    /// Translates one function, consulting the cache first. Returns
    /// whether it was a cache hit.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::MissingBody`] for declarations and
    /// [`EngineError::NoSuchFunction`] for an out-of-range id (ids can
    /// arrive from untrusted artifacts, e.g. corrupted cache state).
    pub fn translate(&mut self, f: u32) -> Result<bool, EngineError> {
        if f as usize >= self.module.num_functions() {
            return Err(EngineError::NoSuchFunction(format!("fn{f}")));
        }
        let fid = FuncId::from_index(f as usize);
        if self.module.function(fid).is_declaration() {
            return Err(EngineError::MissingBody(
                self.module.function(fid).name().to_string(),
            ));
        }
        // a translation already installed (warm image load, or an
        // earlier call) is authoritative until invalidated
        if self.is_function_installed(f) {
            return Ok(true);
        }
        // persistent image probe: decode the pre-translated blob lazily
        if self.try_image_load(f) {
            return Ok(true);
        }
        // cache lookup with frame + per-function hash validation (§4.1)
        let probe = self.try_cache_load(f);
        if probe == CacheProbe::Hit {
            return Ok(true);
        }
        // JIT translation
        let start = Instant::now();
        let peep = self.peephole;
        let blob = match &mut self.engine {
            Engine::X86 { program, .. } => {
                let code = compile_x86_with(&self.module, fid, &peep);
                let blob = codec::encode_x86(&code);
                program.install(f, code);
                blob
            }
            Engine::Sparc { program, .. } => {
                let code = compile_sparc_with(&self.module, fid, &peep);
                let blob = codec::encode_sparc(&code);
                program.install(f, code);
                blob
            }
            Engine::Riscv { program, .. } => {
                let code = compile_riscv_with(&self.module, fid, &peep);
                let blob = codec::encode_riscv(&code);
                program.install(f, code);
                blob
            }
        };
        self.stats.translate_time += start.elapsed();
        self.stats.functions_translated += 1;
        // write back to the offline cache, framed for validation and
        // verified by read-back (with bounded retry for transient faults)
        let key = self.cache_key(f);
        let ts = self.func_hashes[f as usize];
        let framed = codec::frame_entry(&key, &blob);
        let written = self.storage.is_some() && self.write_validated(&key, &framed, ts);
        if probe == CacheProbe::Corrupt {
            self.stats.cache_retried += 1;
            if written {
                self.stats.cache_recovered += 1;
            }
        }
        Ok(false)
    }

    /// Offline translation of the whole program (§4.1: translation
    /// without execution, e.g. during OS idle time). This is the
    /// serial reference path; [`Self::translate_all_parallel`] produces
    /// byte-identical results on worker threads.
    ///
    /// # Errors
    ///
    /// Never fails for defined functions; declarations are skipped.
    pub fn translate_all(&mut self) -> Result<(), EngineError> {
        for f in self.defined_functions() {
            self.translate(f)?;
        }
        Ok(())
    }

    /// The default worker count for parallel offline translation: the
    /// machine's available parallelism (1 if it cannot be queried).
    pub fn default_workers() -> usize {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    }

    /// Offline translation with function compilation fanned out across
    /// `n_workers` scoped threads (`0` = [`Self::default_workers`]).
    ///
    /// The calling thread first probes the cache for every defined
    /// function (installing validated hits); only the misses are
    /// compiled, by workers pulling function ids off a shared atomic
    /// queue. Compiled code is installed and written back to storage
    /// serially after the join, in function-id order, so the installed
    /// program and the cache contents are byte-identical to
    /// [`Self::translate_all`] for any worker count.
    ///
    /// # Errors
    ///
    /// A panic inside one function's translation (a compiler bug, or
    /// virtual object code crafted to poison it) is caught per
    /// function: every other function is still translated, installed,
    /// and written back, and the first poisoned function is reported as
    /// [`EngineError::TranslationPanicked`].
    pub fn translate_all_parallel(&mut self, n_workers: usize) -> Result<(), EngineError> {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let n_workers = if n_workers == 0 {
            Self::default_workers()
        } else {
            n_workers
        };
        // serial cache probe: hits install here, misses become work;
        // corrupt entries are quarantined and tracked for recovery
        // accounting after their retranslation lands
        let mut corrupt: Vec<u32> = Vec::new();
        let candidates: Vec<u32> = self
            .defined_functions()
            .into_iter()
            .filter(|&f| !self.is_function_installed(f))
            .collect();
        // image probe before the storage cache, mirroring translate()
        let candidates: Vec<u32> = candidates
            .into_iter()
            .filter(|&f| !self.try_image_load(f))
            .collect();
        let work: Vec<u32> = candidates
            .into_iter()
            .filter(|&f| match self.try_cache_load(f) {
                CacheProbe::Hit => false,
                CacheProbe::Miss => true,
                CacheProbe::Corrupt => {
                    corrupt.push(f);
                    true
                }
            })
            .collect();
        if work.is_empty() {
            return Ok(());
        }
        // parallel compile (compile_* are pure over &Module), each
        // function's compilation isolated by catch_unwind, then a
        // serial install pass in work-list order for determinism
        let start = Instant::now();
        let module = &self.module;
        let peep = self.peephole;
        let mut blobs: Vec<(u32, Vec<u8>)> = Vec::with_capacity(work.len());
        let mut poisoned: Option<u32> = None;
        match &mut self.engine {
            Engine::X86 { program, .. } => {
                let compiled = compile_batch(&work, n_workers, |fid| {
                    catch_unwind(AssertUnwindSafe(|| {
                        let code = compile_x86_with(module, fid, &peep);
                        let blob = codec::encode_x86(&code);
                        (code, blob)
                    }))
                });
                for (&f, result) in work.iter().zip(compiled) {
                    match result {
                        Ok((code, blob)) => {
                            program.install(f, code);
                            blobs.push((f, blob));
                        }
                        Err(_) => poisoned = poisoned.or(Some(f)),
                    }
                }
            }
            Engine::Sparc { program, .. } => {
                let compiled = compile_batch(&work, n_workers, |fid| {
                    catch_unwind(AssertUnwindSafe(|| {
                        let code = compile_sparc_with(module, fid, &peep);
                        let blob = codec::encode_sparc(&code);
                        (code, blob)
                    }))
                });
                for (&f, result) in work.iter().zip(compiled) {
                    match result {
                        Ok((code, blob)) => {
                            program.install(f, code);
                            blobs.push((f, blob));
                        }
                        Err(_) => poisoned = poisoned.or(Some(f)),
                    }
                }
            }
            Engine::Riscv { program, .. } => {
                let compiled = compile_batch(&work, n_workers, |fid| {
                    catch_unwind(AssertUnwindSafe(|| {
                        let code = compile_riscv_with(module, fid, &peep);
                        let blob = codec::encode_riscv(&code);
                        (code, blob)
                    }))
                });
                for (&f, result) in work.iter().zip(compiled) {
                    match result {
                        Ok((code, blob)) => {
                            program.install(f, code);
                            blobs.push((f, blob));
                        }
                        Err(_) => poisoned = poisoned.or(Some(f)),
                    }
                }
            }
        }
        self.stats.translate_time += start.elapsed();
        self.stats.functions_translated += blobs.len();
        // batched write-back after the join: one write_batch flush (so
        // wrappers with a dirty-batch notion, e.g. SyncStorage, can
        // discard the remainder if the flush dies), then per-entry
        // read-back validation with bounded retry for transient faults
        let translated: Vec<u32> = blobs.iter().map(|&(f, _)| f).collect();
        let entries: Vec<(String, Vec<u8>, u64)> = blobs
            .into_iter()
            .map(|(f, blob)| {
                let key = self.cache_key(f);
                let framed = codec::frame_entry(&key, &blob);
                (key, framed, self.func_hashes[f as usize])
            })
            .collect();
        let mut written = vec![false; entries.len()];
        let has_storage = if let Some(storage) = &mut self.storage {
            storage.write_batch(&self.cache_name, &entries);
            for (i, (key, framed, ts)) in entries.iter().enumerate() {
                written[i] = storage
                    .read(&self.cache_name, key)
                    .is_some_and(|(blob, got_ts)| got_ts == *ts && blob == *framed);
            }
            true
        } else {
            false
        };
        if has_storage {
            // entries the flush did not land durably get the same
            // validated rewrite path (and retried_ok/gave_up
            // accounting) as the serial translator
            for (i, (key, framed, ts)) in entries.iter().enumerate() {
                if !written[i] {
                    written[i] = self.write_validated(key, framed, *ts);
                }
            }
        }
        for f in corrupt {
            if let Some(pos) = translated.iter().position(|&t| t == f) {
                self.stats.cache_retried += 1;
                if written[pos] {
                    self.stats.cache_recovered += 1;
                }
            }
        }
        match poisoned {
            None => Ok(()),
            Some(f) => Err(EngineError::TranslationPanicked(
                self.module.function(FuncId::from_index(f as usize)).name().to_string(),
            )),
        }
    }

    /// Ids of all functions with bodies, in id order.
    fn defined_functions(&self) -> Vec<u32> {
        self.module
            .functions()
            .filter(|(_, func)| !func.is_declaration())
            .map(|(fid, _)| fid.index() as u32)
            .collect()
    }

    /// Invalidates a function's translation (SMC, §3.4): the current
    /// activation keeps running old code; the *next* call retranslates.
    pub fn invalidate_function(&mut self, name: &str) {
        if let Some(fid) = self.module.function_by_name(name) {
            match &mut self.engine {
                Engine::X86 { program, .. } => program.invalidate(fid.index() as u32),
                Engine::Sparc { program, .. } => program.invalidate(fid.index() as u32),
                Engine::Riscv { program, .. } => program.invalidate(fid.index() as u32),
            }
            self.stats.invalidations += 1;
        }
    }

    /// Mutates the module (e.g. rewrites a function body through the
    /// constrained SMC model) and invalidates the affected translation.
    pub fn modify_function(&mut self, name: &str, edit: impl FnOnce(&mut Module, FuncId)) {
        let Some(fid) = self.module.function_by_name(name) else {
            return;
        };
        edit(&mut self.module, fid);
        // re-stamp: only the edited function's hash changes unless the
        // edit touched the observable environment (types, globals,
        // signatures), so cached translations of untouched functions
        // stay valid
        self.func_hashes = function_stamps(&self.module);
        self.func_cache
            .resize(self.func_hashes.len(), FuncCacheStats::default());
        // self-extending code may have added functions (§3.4)
        match &mut self.engine {
            Engine::X86 { program, .. } => program.ensure_slots(self.module.num_functions()),
            Engine::Sparc { program, .. } => program.ensure_slots(self.module.num_functions()),
            Engine::Riscv { program, .. } => program.ensure_slots(self.module.num_functions()),
        }
        self.func_names = self
            .module
            .functions()
            .map(|(_, f)| f.name().to_string())
            .collect();
        self.invalidate_function(name);
    }

    /// Runs function `name` with the given raw argument values.
    ///
    /// # Errors
    ///
    /// See [`EngineError`].
    pub fn run(&mut self, name: &str, args: &[u64]) -> Result<RunOutcome, EngineError> {
        let fid = self
            .module
            .function_by_name(name)
            .filter(|&f| !self.module.function(f).is_declaration())
            .ok_or_else(|| EngineError::NoSuchFunction(name.to_string()))?;
        let f = fid.index() as u32;
        match &mut self.engine {
            Engine::X86 { machine, .. } => machine
                .call_entry(f, args)
                .map_err(EngineError::Trapped)?,
            Engine::Sparc { machine, .. } => machine
                .call_entry(f, args)
                .map_err(EngineError::Trapped)?,
            Engine::Riscv { machine, .. } => machine
                .call_entry(f, args)
                .map_err(EngineError::Trapped)?,
        }
        loop {
            let exit = match &mut self.engine {
                Engine::X86 { program, machine } => machine.run(program, self.fuel),
                Engine::Sparc { program, machine } => machine.run(program, self.fuel),
                Engine::Riscv { program, machine } => machine.run(program, self.fuel),
            };
            match exit {
                Exit::Halt(value) => {
                    return Ok(RunOutcome {
                        value,
                        stats: self.exec_stats(),
                    })
                }
                Exit::NeedFunction(f) => {
                    self.translate(f)?;
                }
                Exit::Intrinsic { which, args } => {
                    self.service_intrinsic(which, &args)?;
                }
                Exit::Trapped(trap) => {
                    self.deliver_trap(trap);
                    return Err(EngineError::Trapped(trap));
                }
                Exit::OutOfFuel => return Err(EngineError::OutOfFuel),
            }
        }
    }

    fn service_intrinsic(
        &mut self,
        which: llva_core::intrinsics::Intrinsic,
        args: &[u64],
    ) -> Result<(), EngineError> {
        // advance the virtual clock with execution progress
        self.env.clock = self.exec_stats().cycles;
        let (stack, location) = match &self.engine {
            Engine::X86 { machine, .. } => (
                StackView {
                    functions: (0..machine.call_depth())
                        .filter_map(|d| machine.frame_function(d))
                        .collect(),
                },
                machine.current_location(),
            ),
            Engine::Sparc { machine, .. } => (
                StackView {
                    functions: (0..machine.call_depth())
                        .filter_map(|d| machine.frame_function(d))
                        .collect(),
                },
                machine.current_location(),
            ),
            Engine::Riscv { machine, .. } => (
                StackView {
                    functions: (0..machine.call_depth())
                        .filter_map(|d| machine.frame_function(d))
                        .collect(),
                },
                machine.current_location(),
            ),
        };
        let result = match &mut self.engine {
            Engine::X86 { machine, .. } => {
                self.env
                    .handle(which, args, &mut machine.mem, &stack, &self.func_names)
            }
            Engine::Sparc { machine, .. } => {
                self.env
                    .handle(which, args, &mut machine.mem, &stack, &self.func_names)
            }
            Engine::Riscv { machine, .. } => {
                self.env
                    .handle(which, args, &mut machine.mem, &stack, &self.func_names)
            }
        };
        let ret = match result {
            Ok(v) => v,
            Err(kind) => {
                let trap = Trap {
                    kind,
                    function: location.0,
                    pc: location.1,
                };
                self.deliver_trap(trap);
                return Err(EngineError::Trapped(trap));
            }
        };
        // drain SMC invalidations (§3.4: takes effect on next call);
        // out-of-range indices from hostile code are dropped, not fatal
        let pending = std::mem::take(&mut self.env.smc_invalidations);
        for f in pending {
            if f as usize >= self.module.num_functions() {
                continue;
            }
            match &mut self.engine {
                Engine::X86 { program, .. } => program.invalidate(f),
                Engine::Sparc { program, .. } => program.invalidate(f),
                Engine::Riscv { program, .. } => program.invalidate(f),
            }
            self.stats.invalidations += 1;
        }
        match &mut self.engine {
            Engine::X86 { machine, .. } => machine.finish_intrinsic(ret),
            Engine::Sparc { machine, .. } => machine.finish_intrinsic(ret),
            Engine::Riscv { machine, .. } => machine.finish_intrinsic(ret),
        }
        Ok(())
    }

    /// Invokes a registered trap handler, if any (§3.5). The handler is
    /// an ordinary LLVA function taking the trap number and an info
    /// pointer.
    fn deliver_trap(&mut self, trap: Trap) {
        let no = trap_number(trap.kind);
        let Some(&handler) = self.env.trap_handlers.get(&no) else {
            return;
        };
        // a handler index pointing past the function table (stale
        // registration after SMC shrank the module, hostile input)
        // degrades to "no handler" instead of aborting the engine
        if handler as usize >= self.module.num_functions() {
            return;
        }
        if self
            .module
            .function(FuncId::from_index(handler as usize))
            .is_declaration()
        {
            return;
        }
        // best-effort: run the handler to completion for its effects
        let entry_ok = match &mut self.engine {
            Engine::X86 { machine, .. } => {
                machine.call_entry(handler, &[u64::from(no), 0]).is_ok()
            }
            Engine::Sparc { machine, .. } => {
                machine.call_entry(handler, &[u64::from(no), 0]).is_ok()
            }
            Engine::Riscv { machine, .. } => {
                machine.call_entry(handler, &[u64::from(no), 0]).is_ok()
            }
        };
        if !entry_ok {
            return;
        }
        for _ in 0..64 {
            let exit = match &mut self.engine {
                Engine::X86 { program, machine } => machine.run(program, 1_000_000),
                Engine::Sparc { program, machine } => machine.run(program, 1_000_000),
                Engine::Riscv { program, machine } => machine.run(program, 1_000_000),
            };
            match exit {
                Exit::Halt(_) => break,
                Exit::NeedFunction(f) => {
                    if self.translate(f).is_err() {
                        break;
                    }
                }
                Exit::Intrinsic { which, args } => {
                    if self.service_intrinsic(which, &args).is_err() {
                        break;
                    }
                }
                _ => break,
            }
        }
    }
}

/// Runs `compile` over `work` on up to `n_workers` scoped threads and
/// returns the results in `work` order. Workers claim items from a
/// shared atomic cursor, so load-balancing adapts to uneven function
/// sizes; determinism comes from reassembling results by index, not
/// from the claim order.
fn compile_batch<T: Send>(
    work: &[u32],
    n_workers: usize,
    compile: impl Fn(FuncId) -> T + Sync,
) -> Vec<T> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let n_workers = n_workers.clamp(1, work.len());
    if n_workers == 1 {
        return work
            .iter()
            .map(|&f| compile(FuncId::from_index(f as usize)))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let (cursor, compile) = (&cursor, &compile);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..n_workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&f) = work.get(i) else { break };
                        done.push((i, compile(FuncId::from_index(f as usize))));
                    }
                    done
                })
            })
            .collect();
        let mut merged: Vec<Option<T>> = std::iter::repeat_with(|| None).take(work.len()).collect();
        for worker in workers {
            for (i, result) in worker.join().expect("translator worker panicked") {
                merged[i] = Some(result);
            }
        }
        merged
            .into_iter()
            .map(|r| r.expect("every work item compiled"))
            .collect()
    })
}

use crate::codec::{fnv1a, FNV_OFFSET};

/// A stable fingerprint of a module's virtual object code, used as a
/// coarse cache timestamp ("check a timestamp on an LLVA program",
/// §4.1). LLEE's own cache uses the finer-grained [`function_stamps`].
pub fn stamp(module: &Module) -> u64 {
    fnv1a(&llva_core::bytecode::encode_module(module), FNV_OFFSET)
}

/// Per-function content hashes, indexed by function id: each is the
/// hash of the function's own encoded signature + body chained onto a
/// hash of the module environment the translation observes (target,
/// types, globals, all signatures — see
/// [`llva_core::bytecode::encode_module_env`]). Editing one function's
/// body changes exactly one stamp; editing shared structure changes
/// them all.
pub fn function_stamps(module: &Module) -> Vec<u64> {
    let env_hash = fnv1a(&llva_core::bytecode::encode_module_env(module), FNV_OFFSET);
    module
        .functions()
        .map(|(fid, _)| fnv1a(&llva_core::bytecode::encode_function(module, fid), env_hash))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;
    use llva_machine::common::TrapKind;

    const FIB: &str = r#"
int %fib(int %n) {
entry:
    %c = setlt int %n, 2
    br bool %c, label %base, label %rec
base:
    ret int %n
rec:
    %n1 = sub int %n, 1
    %a = call int %fib(int %n1)
    %n2 = sub int %n, 2
    %b = call int %fib(int %n2)
    %s = add int %a, %b
    ret int %s
}

int %main() {
entry:
    %r = call int %fib(int 15)
    ret int %r
}
"#;

    fn module(src: &str) -> Module {
        llva_core::parser::parse_module(src).expect("parses")
    }

    #[test]
    fn jit_on_demand_both_targets() {
        for isa in TargetIsa::ALL {
            let mut mgr = ExecutionManager::new(module(FIB), isa);
            let out = mgr.run("main", &[]).expect("runs");
            assert_eq!(out.value, 610, "{isa}");
            // both functions translated lazily
            assert_eq!(mgr.stats().functions_translated, 2);
        }
    }

    #[test]
    fn lazy_translation_skips_unused_functions() {
        let src = r#"
int %unused(int %x) {
entry:
    ret int %x
}

int %main() {
entry:
    ret int 5
}
"#;
        let mut mgr = ExecutionManager::new(module(src), TargetIsa::X86);
        mgr.run("main", &[]).expect("runs");
        // "the JIT translates functions on demand, so that unused code
        // is not translated" (§5.2)
        assert_eq!(mgr.stats().functions_translated, 1);
    }

    #[test]
    fn offline_cache_round_trip() {
        let storage = crate::storage::SharedStorage::new(MemStorage::new());
        // first run: translate + populate the cache
        {
            let mut mgr = ExecutionManager::new(module(FIB), TargetIsa::X86);
            mgr.set_storage(Box::new(storage.clone()), "fib");
            let out = mgr.run("main", &[]).expect("runs");
            assert_eq!(out.value, 610);
            assert_eq!(mgr.stats().functions_translated, 2);
            assert_eq!(mgr.stats().cache_hits, 0);
        }
        // second run: everything loads from the cache
        {
            let mut mgr = ExecutionManager::new(module(FIB), TargetIsa::X86);
            mgr.set_storage(Box::new(storage), "fib");
            let out = mgr.run("main", &[]).expect("runs");
            assert_eq!(out.value, 610);
            assert_eq!(mgr.stats().functions_translated, 0, "all from cache");
            assert_eq!(mgr.stats().cache_hits, 2);
        }
    }

    #[test]
    fn stale_cache_entries_rejected() {
        let storage = crate::storage::SharedStorage::new(MemStorage::new());
        {
            let mut mgr = ExecutionManager::new(module(FIB), TargetIsa::X86);
            mgr.set_storage(Box::new(storage.clone()), "fib");
            mgr.run("main", &[]).expect("runs");
        }
        // a program with a *different* fib must not reuse fib's cached
        // code — but main's body is unchanged, so with per-function
        // content hashes main still loads from the cache
        let other = r#"
int %fib(int %n) {
entry:
    ret int 0
}

int %main() {
entry:
    %r = call int %fib(int 15)
    ret int %r
}
"#;
        let mut mgr = ExecutionManager::new(module(other), TargetIsa::X86);
        mgr.set_storage(Box::new(storage), "fib");
        let out = mgr.run("main", &[]).expect("runs");
        assert_eq!(out.value, 0, "new semantics, not cached ones");
        assert_eq!(mgr.stats().functions_translated, 1, "only fib retranslates");
        assert_eq!(mgr.stats().cache_hits, 1, "main is content-identical");
        assert_eq!(mgr.stats().cache_stale, 1, "fib's entry failed validation");
    }

    #[test]
    fn offline_translation_avoids_online_jit() {
        let mut mgr = ExecutionManager::new(module(FIB), TargetIsa::Sparc);
        mgr.translate_all().expect("translates");
        let before = mgr.stats().functions_translated;
        mgr.run("main", &[]).expect("runs");
        assert_eq!(mgr.stats().functions_translated, before, "no online JIT");
    }

    #[test]
    fn parallel_offline_translation_avoids_online_jit() {
        for isa in TargetIsa::ALL {
            let mut mgr = ExecutionManager::new(module(FIB), isa);
            mgr.translate_all_parallel(4).expect("translates");
            assert_eq!(mgr.stats().functions_translated, 2, "{isa}");
            let out = mgr.run("main", &[]).expect("runs");
            assert_eq!(out.value, 610, "{isa}");
            assert_eq!(mgr.stats().functions_translated, 2, "{isa}: no online JIT");
        }
    }

    #[test]
    fn cache_read_and_write_keys_agree() {
        let storage = crate::storage::SharedStorage::new(MemStorage::new());
        let mut mgr = ExecutionManager::new(module(FIB), TargetIsa::X86);
        mgr.set_storage(Box::new(storage.clone()), "fib");
        let fib = mgr.module().function_by_name("fib").expect("fib").index() as u32;
        mgr.translate(fib).expect("translates");
        // the write-back landed under exactly the key translate reads
        let key = mgr.cache_key(fib);
        assert!(
            storage.read("fib", &key).is_some(),
            "write-back key {key:?} must be readable via cache_key"
        );
        // and a fresh manager's lookup under that key hits
        let mut mgr2 = ExecutionManager::new(module(FIB), TargetIsa::X86);
        mgr2.set_storage(Box::new(storage), "fib");
        assert!(mgr2.translate(fib).expect("translates"), "cache hit");
    }

    /// Generates a module with `n` small distinct functions plus a
    /// `main` that calls the first of them.
    fn many_functions(n: usize) -> String {
        let mut src = String::new();
        for i in 0..n {
            src.push_str(&format!(
                r#"
int %f{i}(int %x) {{
entry:
    %a = add int %x, {i}
    %b = mul int %a, 3
    %c = setlt int %b, 100
    br bool %c, label %lo, label %hi
lo:
    ret int %b
hi:
    %d = sub int %b, 100
    ret int %d
}}
"#
            ));
        }
        src.push_str(
            r#"
int %main() {
entry:
    %r = call int %f0(int 7)
    ret int %r
}
"#,
        );
        src
    }

    #[test]
    fn incremental_invalidation_misses_exactly_one_function() {
        const N: usize = 9; // 8 f* functions + main
        let src = many_functions(N - 1);
        for isa in TargetIsa::ALL {
            let storage = crate::storage::SharedStorage::new(MemStorage::new());
            // populate the cache
            {
                let mut mgr = ExecutionManager::new(module(&src), isa);
                mgr.set_storage(Box::new(storage.clone()), "incr");
                mgr.translate_all().expect("translates");
                assert_eq!(mgr.stats().functions_translated, N, "{isa}");
            }
            // SMC-edit one function, then re-translate everything
            let mut mgr = ExecutionManager::new(module(&src), isa);
            mgr.set_storage(Box::new(storage), "incr");
            mgr.modify_function("f3", |m, fid| {
                m.discard_function_body(fid);
                let int = m.types_mut().int();
                let mut b = llva_core::builder::FunctionBuilder::new(m, fid);
                let e = b.block("entry");
                b.switch_to(e);
                let v = b.iconst(int, 41);
                b.ret(Some(v));
            });
            mgr.translate_all().expect("translates");
            let stats = mgr.stats();
            assert_eq!(stats.cache_hits, N - 1, "{isa}: all but f3 hit");
            assert_eq!(stats.cache_misses, 1, "{isa}: only f3 misses");
            assert_eq!(stats.cache_stale, 1, "{isa}: f3's entry is stale");
            assert_eq!(
                stats.functions_translated, 1,
                "{isa}: exactly one function re-translates"
            );
            // per-function counters agree
            let f3 = mgr.module().function_by_name("f3").expect("f3").index();
            for (i, fc) in mgr.func_cache_stats().iter().enumerate() {
                if i == f3 {
                    assert_eq!((fc.hits, fc.misses, fc.stale), (0, 1, 1), "{isa} fn{i}");
                } else {
                    assert_eq!((fc.hits, fc.misses, fc.stale), (1, 0, 0), "{isa} fn{i}");
                }
            }
        }
    }

    #[test]
    fn parallel_translation_is_deterministic_across_worker_counts() {
        let src = many_functions(12);
        for isa in TargetIsa::ALL {
            // serial reference: cache contents + installed sizes
            let serial_storage = crate::storage::SharedStorage::new(MemStorage::new());
            let mut serial = ExecutionManager::new(module(&src), isa);
            serial.set_storage(Box::new(serial_storage.clone()), "det");
            serial.translate_all().expect("translates");
            let reference: Vec<(String, Vec<u8>)> = (0..serial.module().num_functions() as u32)
                .map(|f| {
                    let key = serial.cache_key(f);
                    let blob = serial_storage.read("det", &key).expect("cached").0;
                    (key, blob)
                })
                .collect();
            for workers in [1, 2, 8] {
                let storage = crate::storage::SyncStorage::new(MemStorage::new());
                let mut mgr = ExecutionManager::new(module(&src), isa);
                mgr.set_storage(Box::new(storage.clone()), "det");
                mgr.translate_all_parallel(workers).expect("translates");
                assert_eq!(
                    mgr.installed_bytes(),
                    serial.installed_bytes(),
                    "{isa}/{workers} workers: installed_bytes"
                );
                assert_eq!(
                    mgr.installed_insts(),
                    serial.installed_insts(),
                    "{isa}/{workers} workers: installed_insts"
                );
                for (key, blob) in &reference {
                    let got = storage.read("det", key).expect("cached").0;
                    assert_eq!(
                        &got, blob,
                        "{isa}/{workers} workers: byte-identical code for {key}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_warm_cache_skips_compilation() {
        let src = many_functions(10);
        let storage = crate::storage::SyncStorage::new(MemStorage::new());
        {
            let mut mgr = ExecutionManager::new(module(&src), TargetIsa::X86);
            mgr.set_storage(Box::new(storage.clone()), "warm");
            mgr.translate_all_parallel(4).expect("translates");
            assert_eq!(mgr.stats().functions_translated, 11);
        }
        let mut mgr = ExecutionManager::new(module(&src), TargetIsa::X86);
        mgr.set_storage(Box::new(storage), "warm");
        mgr.translate_all_parallel(4).expect("translates");
        assert_eq!(mgr.stats().functions_translated, 0, "all from cache");
        assert_eq!(mgr.stats().cache_hits, 11);
        let out = mgr.run("main", &[]).expect("runs");
        assert_eq!(out.value, 21);
    }

    #[test]
    fn intrinsics_via_native_code() {
        let src = r#"
declare int %llva.io.putchar(int)

int %main() {
entry:
    %a = call int %llva.io.putchar(int 111)
    %b = call int %llva.io.putchar(int 107)
    ret int 0
}
"#;
        for isa in TargetIsa::ALL {
            let mut mgr = ExecutionManager::new(module(src), isa);
            mgr.run("main", &[]).expect("runs");
            assert_eq!(mgr.env.stdout_string(), "ok", "{isa}");
        }
    }

    #[test]
    fn heap_alloc_intrinsic_end_to_end() {
        let src = r#"
declare sbyte* %llva.heap.alloc(ulong)

int %main() {
entry:
    %p = call sbyte* %llva.heap.alloc(ulong 16)
    %ip = cast sbyte* %p to int*
    store int 42, int* %ip
    %v = load int* %ip
    ret int %v
}
"#;
        for isa in TargetIsa::ALL {
            let mut mgr = ExecutionManager::new(module(src), isa);
            let out = mgr.run("main", &[]).expect("runs");
            assert_eq!(out.value, 42, "{isa}");
        }
    }

    #[test]
    fn smc_invalidation_retranslates_next_call() {
        let mut mgr = ExecutionManager::new(module(FIB), TargetIsa::X86);
        mgr.run("main", &[]).expect("runs");
        let before = mgr.stats().functions_translated;
        // SMC: change fib to return 0 for every input
        mgr.modify_function("fib", |m, fid| {
            m.discard_function_body(fid);
            let int = m.types_mut().int();
            let mut b = llva_core::builder::FunctionBuilder::new(m, fid);
            let e = b.block("entry");
            b.switch_to(e);
            let zero = b.iconst(int, 0);
            b.ret(Some(zero));
        });
        let out = mgr.run("main", &[]).expect("runs");
        assert_eq!(out.value, 0, "future invocations see the new code");
        assert!(mgr.stats().functions_translated > before);
        assert_eq!(mgr.stats().invalidations, 1);
    }

    #[test]
    fn trap_reported_after_handler() {
        let src = r#"
int %main(int %x) {
entry:
    %q = div int 10, %x
    ret int %q
}
"#;
        let mut mgr = ExecutionManager::new(module(src), TargetIsa::X86);
        match mgr.run("main", &[0]) {
            Err(EngineError::Trapped(t)) => assert_eq!(t.kind, TrapKind::DivideByZero),
            other => panic!("expected trap, got {other:?}"),
        }
    }
}
