//! # llva-bench — the evaluation harness
//!
//! Regenerates the paper's evaluation (Section 5): the [`table2`]
//! module computes every column of Table 2 for the 17 workloads, and
//! the Criterion benches under `benches/` cover translation cost,
//! optimization-pass cost, offline-cache effect, trace formation, and
//! the ablations listed in DESIGN.md.

pub mod table2;
