//! # llva-core — the LLVA Virtual Instruction Set Architecture
//!
//! A from-scratch reproduction of the V-ISA described in *"LLVA: A
//! Low-level Virtual Instruction Set Architecture"* (MICRO 2003): a
//! source-language-neutral, low-level, orthogonal, three-address virtual
//! instruction set with
//!
//! * an infinite, typed SSA register file ([`value`], [`function`]),
//! * exactly 28 instructions ([`instruction::Opcode`]),
//! * a small language-independent type system with four derived types
//!   ([`types`]),
//! * explicit control-flow graphs and `phi`-based dataflow,
//! * the `ExceptionsEnabled` attribute for flexible exception semantics
//!   (§3.3), and
//! * typed pointer arithmetic via `getelementptr` (§3.1).
//!
//! The crate also provides the textual assembly [`printer`] and
//! [`parser`], the self-extending binary [`bytecode`] ("virtual object
//! code"), the [`verifier`], CFG [`dominators`], and the OS-support
//! [`intrinsics`] of §3.5.
//!
//! # Quick start
//!
//! ```
//! use llva_core::builder::FunctionBuilder;
//! use llva_core::layout::TargetConfig;
//! use llva_core::module::Module;
//!
//! let mut m = Module::new("hello", TargetConfig::default());
//! let int = m.types_mut().int();
//! let f = m.add_function("double_it", int, vec![int]);
//! let mut b = FunctionBuilder::new(&mut m, f);
//! let entry = b.block("entry");
//! b.switch_to(entry);
//! let x = b.func().args()[0];
//! let two = b.iconst(int, 2);
//! let y = b.mul(x, two);
//! b.ret(Some(y));
//! llva_core::verifier::verify_module(&m).expect("well-formed module");
//! ```

pub mod builder;
pub mod bytecode;
pub mod dominators;
pub mod eval;
pub mod function;
pub mod instruction;
pub mod intrinsics;
pub mod layout;
pub mod module;
pub mod parser;
pub mod printer;
pub mod types;
pub mod value;
pub mod verifier;

pub use builder::FunctionBuilder;
pub use function::{BasicBlock, BlockId, Function, Linkage};
pub use instruction::{InstId, Instruction, Opcode};
pub use layout::{Endianness, PointerSize, TargetConfig};
pub use module::{FuncId, GlobalId, Initializer, Module};
pub use types::{StructId, TypeId, TypeKind, TypeTable};
pub use value::{Constant, ValueData, ValueId};
