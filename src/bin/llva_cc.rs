//! `llva-cc` — compile minic (the C-like front-end language) to LLVA
//! virtual object code.
//!
//! Usage: `llva-cc input.c [-o output.bc] [--target ia32|sparcv9]
//!         [--emit-asm] [-O]`

use std::process::exit;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut input = None;
    let mut output = None;
    let mut target = llva::core::layout::TargetConfig::default();
    let mut emit_asm = false;
    let mut optimize = false;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" => output = it.next().cloned(),
            "--target" => match it.next().map(String::as_str) {
                Some("ia32") => target = llva::core::layout::TargetConfig::ia32(),
                Some("sparcv9") => target = llva::core::layout::TargetConfig::sparc_v9(),
                other => {
                    eprintln!("llva-cc: unknown target {other:?} (ia32|sparcv9)");
                    exit(1);
                }
            },
            "--emit-asm" => emit_asm = true,
            "-O" => optimize = true,
            "-h" | "--help" => {
                eprintln!(
                    "usage: llva-cc input.c [-o out.bc] [--target ia32|sparcv9] [--emit-asm] [-O]"
                );
                exit(0);
            }
            other => input = Some(other.to_string()),
        }
    }
    let Some(input) = input else {
        eprintln!("usage: llva-cc input.c [-o out.bc]");
        exit(1);
    };
    let src = std::fs::read_to_string(&input).unwrap_or_else(|e| {
        eprintln!("llva-cc: cannot read {input}: {e}");
        exit(1);
    });
    let name = std::path::Path::new(&input)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "module".into());
    let mut module = llva::minic::compile(&src, &name, target).unwrap_or_else(|e| {
        eprintln!("llva-cc: {input}: {e}");
        exit(1);
    });
    if let Err(e) = llva::core::verifier::verify_module(&module) {
        eprintln!("llva-cc: INTERNAL ERROR — generated module does not verify:\n{e}");
        exit(2);
    }
    if optimize {
        let mut pm = llva::opt::standard_pipeline();
        pm.run(&mut module);
    }
    if emit_asm {
        print!("{}", llva::core::printer::print_module(&module));
        return;
    }
    let out = output.unwrap_or_else(|| format!("{name}.bc"));
    let bytes = llva::core::bytecode::encode_module(&module);
    if let Err(e) = std::fs::write(&out, &bytes) {
        eprintln!("llva-cc: cannot write {out}: {e}");
        exit(1);
    }
    eprintln!(
        "llva-cc: {} -> {} ({} LLVA instructions, {} bytes)",
        input,
        out,
        module.total_insts(),
        bytes.len()
    );
}
