//! Quickstart: build the paper's Figure 2 function (`Sum3rdChildren`
//! over a QuadTree) from C-like source, print its LLVA form, encode it
//! as virtual object code, and execute it on the reference interpreter
//! and both simulated processors.
//!
//! Run with: `cargo run --example quickstart`

use llva::core::layout::TargetConfig;
use llva::core::printer::print_module;
use llva::core::verifier::verify_module;
use llva::engine::llee::{ExecutionManager, TargetIsa};
use llva::engine::Interpreter;

/// The paper's Figure 2(a), in minic.
const FIGURE_2_C: &str = r#"
struct QuadTree {
    double data;
    struct QuadTree* children[4];
};

double sum3rdchildren(struct QuadTree* t) {
    if (t == (struct QuadTree*)0) return 0.0;
    return sum3rdchildren(t->children[3]) + t->data;
}

int main() {
    // build a small tree on the heap: a chain through child #3
    struct QuadTree* root = (struct QuadTree*)0;
    for (int i = 1; i <= 5; i++) {
        struct QuadTree* n = (struct QuadTree*)malloc(sizeof(struct QuadTree));
        n->data = (double)i;
        for (int k = 0; k < 4; k++) n->children[k] = (struct QuadTree*)0;
        n->children[3] = root;
        root = n;
    }
    return (int)sum3rdchildren(root); // 1+2+3+4+5
}
"#;

fn main() {
    println!("=== LLVA quickstart: the paper's Figure 2 ===\n");

    // 1. compile C-like source to LLVA
    let module = llva::minic::compile(FIGURE_2_C, "figure2", TargetConfig::default())
        .expect("minic compiles");
    verify_module(&module).expect("module verifies");

    // 2. print the virtual object code as assembly (Figure 2(b) style)
    println!("--- LLVA assembly (excerpt) ---");
    let text = print_module(&module);
    for line in text.lines().take(30) {
        println!("{line}");
    }
    println!("    ... ({} lines total)\n", text.lines().count());

    // 3. binary virtual object code (§3.1's self-extending encoding)
    let bytecode = llva::core::bytecode::encode_module(&module);
    let stats = llva::core::bytecode::encoding_stats(&module);
    println!(
        "virtual object code: {} bytes ({} instructions in the 32-bit small \
         format, {} self-extended)\n",
        bytecode.len(),
        stats.small_insts,
        stats.extended_insts
    );

    // 4. execute on the reference interpreter
    let mut interp = Interpreter::new(&module);
    let reference = interp.run("main", &[]).expect("interprets");
    println!("interpreter result    : {reference}");

    // 5. JIT-translate and execute on all three simulated processors
    for isa in TargetIsa::ALL {
        let m = llva::minic::compile(FIGURE_2_C, "figure2", TargetConfig::default())
            .expect("compiles");
        let mut mgr = ExecutionManager::new(m, isa);
        let out = mgr.run("main", &[]).expect("runs");
        println!(
            "{isa:<5} result         : {} ({} native insts translated in {:?}, \
             {} instructions executed)",
            out.value,
            mgr.installed_insts(),
            mgr.stats().translate_time,
            out.stats.instructions
        );
        assert_eq!(out.value, reference);
    }
    println!("\nall three executors agree: {reference} (= 1+2+3+4+5)");
}
