//! The OS-independent storage API (paper §4.1).
//!
//! > "The V-ABI defines a standard, OS-independent storage API with a
//! > set of routines that enables LLEE to read, write, and validate
//! > data in offline storage. … the basic storage API includes
//! > routines to create, delete, and query the size of an offline
//! > cache, read or write a vector of N bytes tagged by a unique
//! > string name from/to a cache, and check a timestamp on an LLVA
//! > program or on a cached vector."
//!
//! An OS implements [`Storage`] to enable offline translation and
//! caching; it is "strictly optional and the system will operate
//! correctly in their absence". Two implementations are provided:
//! an in-memory one (tests / OS-less operation, like DAISY/Crusoe's
//! memory-only translation cache) and a directory-backed one (the
//! user-level POSIX LLEE of §4.1).

use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;

/// The storage API of §4.1. All methods are infallible-or-`Option`
/// because a failed cache interaction must never break execution.
pub trait Storage {
    /// Creates (or opens) a named cache.
    fn create_cache(&mut self, cache: &str);

    /// Deletes a cache and everything in it.
    fn delete_cache(&mut self, cache: &str);

    /// Total bytes stored in a cache, or `None` if it does not exist.
    fn cache_size(&self, cache: &str) -> Option<u64>;

    /// Writes a named vector of bytes with a timestamp tag.
    fn write(&mut self, cache: &str, name: &str, bytes: &[u8], timestamp: u64);

    /// Reads a named vector and its timestamp.
    fn read(&self, cache: &str, name: &str) -> Option<(Vec<u8>, u64)>;

    /// Checks the timestamp of a named vector without reading it.
    fn timestamp(&self, cache: &str, name: &str) -> Option<u64>;
}

/// A purely in-memory storage (no OS support — entries die with the
/// process, exactly like DAISY and Crusoe's in-memory caches).
#[derive(Debug, Default, Clone)]
pub struct MemStorage {
    caches: HashMap<String, HashMap<String, (Vec<u8>, u64)>>,
}

impl MemStorage {
    /// Creates an empty storage.
    pub fn new() -> MemStorage {
        MemStorage::default()
    }
}

impl Storage for MemStorage {
    fn create_cache(&mut self, cache: &str) {
        self.caches.entry(cache.to_string()).or_default();
    }

    fn delete_cache(&mut self, cache: &str) {
        self.caches.remove(cache);
    }

    fn cache_size(&self, cache: &str) -> Option<u64> {
        Some(
            self.caches
                .get(cache)?
                .values()
                .map(|(b, _)| b.len() as u64)
                .sum(),
        )
    }

    fn write(&mut self, cache: &str, name: &str, bytes: &[u8], timestamp: u64) {
        self.caches
            .entry(cache.to_string())
            .or_default()
            .insert(name.to_string(), (bytes.to_vec(), timestamp));
    }

    fn read(&self, cache: &str, name: &str) -> Option<(Vec<u8>, u64)> {
        self.caches.get(cache)?.get(name).cloned()
    }

    fn timestamp(&self, cache: &str, name: &str) -> Option<u64> {
        self.caches.get(cache)?.get(name).map(|(_, t)| *t)
    }
}

/// Directory-backed storage: each vector is a file whose first 8 bytes
/// are the little-endian timestamp (the user-level LLEE of §4.1 that
/// "reads and writes disk files directly").
#[derive(Debug, Clone)]
pub struct DirStorage {
    root: PathBuf,
}

impl DirStorage {
    /// Creates storage rooted at `root` (created on demand).
    pub fn new(root: impl Into<PathBuf>) -> DirStorage {
        DirStorage { root: root.into() }
    }

    fn cache_dir(&self, cache: &str) -> PathBuf {
        self.root.join(sanitize(cache))
    }

    fn entry_path(&self, cache: &str, name: &str) -> PathBuf {
        self.cache_dir(cache).join(sanitize(name))
    }
}

impl fmt::Display for DirStorage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DirStorage({})", self.root.display())
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl Storage for DirStorage {
    fn create_cache(&mut self, cache: &str) {
        let _ = std::fs::create_dir_all(self.cache_dir(cache));
    }

    fn delete_cache(&mut self, cache: &str) {
        let _ = std::fs::remove_dir_all(self.cache_dir(cache));
    }

    fn cache_size(&self, cache: &str) -> Option<u64> {
        let dir = std::fs::read_dir(self.cache_dir(cache)).ok()?;
        Some(
            dir.flatten()
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .sum(),
        )
    }

    fn write(&mut self, cache: &str, name: &str, bytes: &[u8], timestamp: u64) {
        self.create_cache(cache);
        let mut blob = timestamp.to_le_bytes().to_vec();
        blob.extend_from_slice(bytes);
        let _ = std::fs::write(self.entry_path(cache, name), blob);
    }

    fn read(&self, cache: &str, name: &str) -> Option<(Vec<u8>, u64)> {
        let blob = std::fs::read(self.entry_path(cache, name)).ok()?;
        if blob.len() < 8 {
            return None;
        }
        let ts = u64::from_le_bytes(blob[..8].try_into().ok()?);
        Some((blob[8..].to_vec(), ts))
    }

    fn timestamp(&self, cache: &str, name: &str) -> Option<u64> {
        self.read(cache, name).map(|(_, t)| t)
    }
}

/// A cloneable handle sharing one underlying storage — lets a test or
/// benchmark keep inspecting the cache that an execution manager owns a
/// boxed handle to.
#[derive(Debug, Clone, Default)]
pub struct SharedStorage<S>(std::rc::Rc<std::cell::RefCell<S>>);

impl<S: Storage> SharedStorage<S> {
    /// Wraps `storage` in a shared handle.
    pub fn new(storage: S) -> SharedStorage<S> {
        SharedStorage(std::rc::Rc::new(std::cell::RefCell::new(storage)))
    }
}

impl<S: Storage> Storage for SharedStorage<S> {
    fn create_cache(&mut self, cache: &str) {
        self.0.borrow_mut().create_cache(cache);
    }
    fn delete_cache(&mut self, cache: &str) {
        self.0.borrow_mut().delete_cache(cache);
    }
    fn cache_size(&self, cache: &str) -> Option<u64> {
        self.0.borrow().cache_size(cache)
    }
    fn write(&mut self, cache: &str, name: &str, bytes: &[u8], timestamp: u64) {
        self.0.borrow_mut().write(cache, name, bytes, timestamp);
    }
    fn read(&self, cache: &str, name: &str) -> Option<(Vec<u8>, u64)> {
        self.0.borrow().read(cache, name)
    }
    fn timestamp(&self, cache: &str, name: &str) -> Option<u64> {
        self.0.borrow().timestamp(cache, name)
    }
}

/// A `Send + Sync` cloneable handle sharing one underlying storage —
/// the thread-safe sibling of [`SharedStorage`] for use with the
/// parallel offline translator ([`crate::llee::ExecutionManager::translate_all_parallel`])
/// or for sharing one cache across execution managers on different
/// threads. All operations take the mutex for their duration; the
/// storage contract says failures must never break execution, so a
/// poisoned lock is recovered rather than propagated.
#[derive(Debug, Default, Clone)]
pub struct SyncStorage<S>(std::sync::Arc<std::sync::Mutex<S>>);

impl<S: Storage> SyncStorage<S> {
    /// Wraps `storage` in a thread-shared handle.
    pub fn new(storage: S) -> SyncStorage<S> {
        SyncStorage(std::sync::Arc::new(std::sync::Mutex::new(storage)))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, S> {
        self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<S: Storage> Storage for SyncStorage<S> {
    fn create_cache(&mut self, cache: &str) {
        self.lock().create_cache(cache);
    }
    fn delete_cache(&mut self, cache: &str) {
        self.lock().delete_cache(cache);
    }
    fn cache_size(&self, cache: &str) -> Option<u64> {
        self.lock().cache_size(cache)
    }
    fn write(&mut self, cache: &str, name: &str, bytes: &[u8], timestamp: u64) {
        self.lock().write(cache, name, bytes, timestamp);
    }
    fn read(&self, cache: &str, name: &str) -> Option<(Vec<u8>, u64)> {
        self.lock().read(cache, name)
    }
    fn timestamp(&self, cache: &str, name: &str) -> Option<u64> {
        self.lock().timestamp(cache, name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(storage: &mut dyn Storage) {
        storage.create_cache("app");
        assert_eq!(storage.cache_size("app"), Some(0));
        storage.write("app", "fn0", b"code0", 100);
        storage.write("app", "fn1", b"code11", 101);
        assert_eq!(storage.read("app", "fn0"), Some((b"code0".to_vec(), 100)));
        assert_eq!(storage.timestamp("app", "fn1"), Some(101));
        assert_eq!(storage.cache_size("app").map(|s| s > 0), Some(true));
        storage.write("app", "fn0", b"newer", 200);
        assert_eq!(storage.read("app", "fn0"), Some((b"newer".to_vec(), 200)));
        assert_eq!(storage.read("app", "nope"), None);
        assert_eq!(storage.read("ghost", "fn0"), None);
        storage.delete_cache("app");
        assert_eq!(storage.read("app", "fn0"), None);
    }

    #[test]
    fn mem_storage_contract() {
        let mut s = MemStorage::new();
        exercise(&mut s);
    }

    #[test]
    fn dir_storage_contract() {
        let dir = std::env::temp_dir().join(format!("llva-storage-test-{}", std::process::id()));
        let mut s = DirStorage::new(&dir);
        exercise(&mut s);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dir_storage_persists_across_instances() {
        let dir = std::env::temp_dir().join(format!("llva-storage-persist-{}", std::process::id()));
        {
            let mut s = DirStorage::new(&dir);
            s.write("app", "fn0", b"persistent", 7);
        }
        {
            let s = DirStorage::new(&dir);
            assert_eq!(s.read("app", "fn0"), Some((b"persistent".to_vec(), 7)));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sync_storage_contract() {
        let mut s = SyncStorage::new(MemStorage::new());
        exercise(&mut s);
    }

    #[test]
    fn sync_storage_is_send_and_shares_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SyncStorage<MemStorage>>();

        let storage = SyncStorage::new(MemStorage::new());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let mut handle = storage.clone();
                scope.spawn(move || {
                    handle.write("app", &format!("fn{t}"), &[t as u8; 4], t);
                });
            }
        });
        for t in 0..4u64 {
            assert_eq!(
                storage.read("app", &format!("fn{t}")),
                Some((vec![t as u8; 4], t))
            );
        }
    }

    #[test]
    fn sanitize_rejects_path_tricks() {
        // path separators are neutralized; the result is one filename
        assert_eq!(sanitize("../../etc/passwd"), ".._.._etc_passwd");
        assert!(!sanitize("../../etc/passwd").contains('/'));
        assert_eq!(sanitize("fn0.x86"), "fn0.x86");
    }
}
