//! Per-pass structural invariants over generated programs.
//!
//! Every pass that appears in `standard_pipeline()` or
//! `link_time_pipeline()` is run *alone* — with the pass manager's
//! verify-after-each mode on — over a sweep of conformance-generated
//! modules. A pass that emits a malformed module panics inside the
//! pass manager with the pass's name, attributing the bug precisely
//! instead of letting a later pass or executor trip over it.
//!
//! Semantic preservation per pass is covered by the conformance
//! harness's `pass:<name>` oracle stages; this suite is the cheaper,
//! wider structural sweep.

use llva_conform::gen::{generate, GenConfig};

/// Runs every distinct pipeline pass individually over `seeds`.
fn sweep(seeds: std::ops::Range<u64>, cfg: &GenConfig) {
    for seed in seeds {
        let tc = generate(seed, cfg);
        for pass in llva_opt::standard_pass_list() {
            run_one(pass, &tc.module, seed);
        }
        for pass in llva_opt::link_time_pass_list(&[&tc.entry]) {
            run_one(pass, &tc.module, seed);
        }
    }
}

fn run_one(pass: Box<dyn llva_opt::ModulePass>, module: &llva_core::module::Module, seed: u64) {
    let name = pass.name();
    let mut pm = llva_opt::PassManager::new();
    pm.add_boxed(pass);
    pm.verify_after_each(true);
    let mut m = module.clone();
    pm.run(&mut m); // panics with the pass name if verification fails
    llva_core::verifier::verify_module(&m)
        .unwrap_or_else(|e| panic!("seed {seed}: pass '{name}' left a malformed module: {e}"));
}

#[test]
fn every_pipeline_pass_preserves_validity() {
    sweep(0..32, &GenConfig::default());
}

#[test]
fn every_pipeline_pass_preserves_validity_on_deep_modules() {
    let cfg = GenConfig {
        max_steps: 48,
        ..GenConfig::default()
    };
    sweep(1000..1012, &cfg);
}

#[test]
fn pipelines_report_their_pass_lists() {
    let std_names: Vec<&str> = llva_opt::standard_pass_list().iter().map(|p| p.name()).collect();
    assert_eq!(llva_opt::standard_pipeline().pass_names(), std_names);
    let lt_names: Vec<&str> = llva_opt::link_time_pass_list(&["main"])
        .iter()
        .map(|p| p.name())
        .collect();
    assert_eq!(llva_opt::link_time_pipeline(&["main"]).pass_names(), lt_names);
    // the pipelines are not trivially identical
    assert_ne!(std_names, lt_names);
    assert!(std_names.contains(&"mem2reg"));
    assert!(lt_names.contains(&"inline"));
}
