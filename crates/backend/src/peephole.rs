//! The shared, target-independent peephole pass.
//!
//! All three code generators run their finished instruction stream
//! through the same engine; each ISA contributes only a thin
//! [`PeepholeIsa`] lens that recognizes its own spellings of three
//! universal rewrite rules:
//!
//! 1. **Redundant move elision** — a register-to-register move whose
//!    source and destination coincide is deleted.
//! 2. **Load-after-store forwarding** — a full-width load from the
//!    exact `[base + off]` slot the immediately preceding instruction
//!    stored becomes a register move (or disappears entirely when it
//!    would reload the same register).
//! 3. **Branch-over-branch folding** — `bcond L1; jmp L2; L1:` becomes
//!    `b!cond L2` when `L1` is the fall-through.
//!
//! Because branch targets are instruction indices patched by the
//! generators *before* this pass runs, deletion is two-phase: rules
//! mark a tombstone mask, then one compaction remaps every control
//! transfer (including `invoke` unwind pads) through the survivor
//! index map. Rules never delete an instruction that is itself a
//! branch target unless it is a strict no-op at its position, so a
//! remapped edge that lands past a tombstone is always behavior
//! preserving.
//!
//! The pass is on by default and switched off with `LLVA_PEEPHOLE=0`
//! (or `off`); the conformance oracle's `*:nopeep` stages and the
//! perf-smoke instruction-count deltas are driven through
//! [`PeepholeConfig`] directly.

use llva_machine::common::Width;
use std::collections::HashSet;

/// Whether the peephole pass runs, threaded from the environment or
/// set explicitly by tests and the conformance oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeepholeConfig {
    /// Run the rewrite rules when set.
    pub enabled: bool,
}

impl PeepholeConfig {
    /// The pass enabled (the default).
    pub fn on() -> PeepholeConfig {
        PeepholeConfig { enabled: true }
    }

    /// The pass disabled — generators emit their raw streams.
    pub fn off() -> PeepholeConfig {
        PeepholeConfig { enabled: false }
    }

    /// Reads `LLVA_PEEPHOLE` (`0`/`off` disable; anything else, or
    /// unset, enables).
    pub fn from_env() -> PeepholeConfig {
        match std::env::var("LLVA_PEEPHOLE") {
            Ok(v) if v == "0" || v.eq_ignore_ascii_case("off") => PeepholeConfig::off(),
            _ => PeepholeConfig::on(),
        }
    }
}

/// Counts of applied rewrites, for perf-smoke reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeepholeStats {
    /// Rule 1: self-moves deleted.
    pub moves_elided: usize,
    /// Rule 2: loads forwarded from an adjacent store.
    pub loads_forwarded: usize,
    /// Rule 3: unconditional jumps folded into an inverted branch.
    pub branches_folded: usize,
}

impl PeepholeStats {
    /// Total instructions removed from the stream.
    pub fn total(&self) -> usize {
        self.moves_elided + self.loads_forwarded + self.branches_folded
    }
}

/// What the engine asks of each ISA. Implementations are pure pattern
/// lenses — all sequencing, tombstoning and retargeting lives in
/// [`run`].
pub trait PeepholeIsa {
    /// The ISA's instruction type.
    type Inst: Clone;

    /// Is this a register-to-register move with `dst == src` (a strict
    /// no-op)?
    fn is_nop_move(inst: &Self::Inst) -> bool;

    /// If `second` reloads, at full width, exactly the slot `first`
    /// just stored, the replacement: `Some(None)` deletes the load
    /// outright (it would reload the stored register into itself),
    /// `Some(Some(mv))` replaces it with a register move.
    #[allow(clippy::option_option)]
    fn forward_store_load(first: &Self::Inst, second: &Self::Inst)
        -> Option<Option<Self::Inst>>;

    /// The target of a conditional branch, if `inst` is one.
    fn cond_branch_target(inst: &Self::Inst) -> Option<u32>;

    /// The target of an unconditional jump, if `inst` is one.
    fn jump_target(inst: &Self::Inst) -> Option<u32>;

    /// The same conditional branch with its condition inverted and its
    /// target replaced (operand order preserved).
    fn invert_branch(inst: &Self::Inst, new_target: u32) -> Option<Self::Inst>;

    /// Every instruction index this instruction can transfer control
    /// to (branch/jump targets and `invoke` unwind pads).
    fn targets(inst: &Self::Inst, out: &mut Vec<u32>);

    /// Rewrites every control-transfer target through `map`.
    fn retarget(inst: &mut Self::Inst, map: &mut dyn FnMut(u32) -> u32);
}

/// Runs the rewrite rules to a fixpoint over `code`, returning the
/// compacted stream and what was removed.
pub fn run<I: PeepholeIsa>(
    mut code: Vec<I::Inst>,
    cfg: &PeepholeConfig,
) -> (Vec<I::Inst>, PeepholeStats) {
    let mut stats = PeepholeStats::default();
    if !cfg.enabled {
        return (code, stats);
    }
    // Each iteration applies every rule once, then compacts; new
    // adjacencies created by compaction are picked up next round.
    loop {
        let mut scratch = Vec::new();
        let mut jump_targets: HashSet<u32> = HashSet::new();
        for inst in &code {
            scratch.clear();
            I::targets(inst, &mut scratch);
            jump_targets.extend(scratch.iter().copied());
        }
        let mut deleted = vec![false; code.len()];
        let mut changed = false;

        // Rule 1: self-moves. Safe even when branch-targeted — the
        // remap lands on the next survivor and nothing was skipped.
        for (i, inst) in code.iter().enumerate() {
            if I::is_nop_move(inst) {
                deleted[i] = true;
                stats.moves_elided += 1;
                changed = true;
            }
        }

        // Rule 2: load-after-store forwarding. The load must not be a
        // branch target (control could arrive without the store).
        for i in 0..code.len().saturating_sub(1) {
            if deleted[i] || deleted[i + 1] || jump_targets.contains(&(i as u32 + 1)) {
                continue;
            }
            if let Some(repl) = I::forward_store_load(&code[i], &code[i + 1]) {
                match repl {
                    Some(mv) => code[i + 1] = mv,
                    None => deleted[i + 1] = true,
                }
                stats.loads_forwarded += 1;
                changed = true;
            }
        }

        // Rule 3: branch-over-branch. The jump must not be a branch
        // target (something else still needs to reach L2 through it).
        for i in 0..code.len().saturating_sub(2) {
            if deleted[i] || deleted[i + 1] || jump_targets.contains(&(i as u32 + 1)) {
                continue;
            }
            if I::cond_branch_target(&code[i]) != Some(i as u32 + 2) {
                continue;
            }
            let Some(l2) = I::jump_target(&code[i + 1]) else {
                continue;
            };
            if let Some(inv) = I::invert_branch(&code[i], l2) {
                code[i] = inv;
                deleted[i + 1] = true;
                stats.branches_folded += 1;
                changed = true;
            }
        }

        if !changed {
            return (code, stats);
        }

        // Compact and remap: new_index[i] = survivors strictly before
        // i, so a target on a tombstone falls through to the next
        // surviving instruction.
        let mut new_index = Vec::with_capacity(code.len() + 1);
        let mut n: u32 = 0;
        for &d in &deleted {
            new_index.push(n);
            if !d {
                n += 1;
            }
        }
        new_index.push(n);
        let mut kept: Vec<I::Inst> = code
            .into_iter()
            .zip(deleted)
            .filter_map(|(inst, d)| (!d).then_some(inst))
            .collect();
        for inst in &mut kept {
            I::retarget(inst, &mut |t| new_index[t as usize]);
        }
        code = kept;
    }
}

// ---------------------------------------------------------------------------
// x86 lens
// ---------------------------------------------------------------------------

/// The IA-32 lens. Moves and loads never write flags in this
/// simulator, so rewrites cannot disturb a `cmp`→`jcc` window.
pub struct X86Peep;

mod x86_lens {
    use super::*;
    use llva_machine::x86::{Cond, X86Inst};

    fn invert(c: Cond) -> Cond {
        match c {
            Cond::E => Cond::Ne,
            Cond::Ne => Cond::E,
            Cond::L => Cond::Ge,
            Cond::Ge => Cond::L,
            Cond::G => Cond::Le,
            Cond::Le => Cond::G,
            Cond::B => Cond::Ae,
            Cond::Ae => Cond::B,
            Cond::A => Cond::Be,
            Cond::Be => Cond::A,
        }
    }

    impl PeepholeIsa for X86Peep {
        type Inst = X86Inst;

        fn is_nop_move(inst: &X86Inst) -> bool {
            match inst {
                X86Inst::MovRR(d, s) => d == s,
                X86Inst::FMovRR(d, s) => d == s,
                _ => false,
            }
        }

        fn forward_store_load(first: &X86Inst, second: &X86Inst) -> Option<Option<X86Inst>> {
            match (first, second) {
                (
                    X86Inst::Store { src, mem, width: Width::B8 },
                    X86Inst::Load { dst, mem: m2, width: Width::B8, .. },
                ) if mem == m2 => Some((dst != src).then_some(X86Inst::MovRR(*dst, *src))),
                (
                    X86Inst::FStore { src, mem, is32: false },
                    X86Inst::FLoad { dst, mem: m2, is32: false },
                ) if mem == m2 => Some((dst != src).then_some(X86Inst::FMovRR(*dst, *src))),
                _ => None,
            }
        }

        fn cond_branch_target(inst: &X86Inst) -> Option<u32> {
            match inst {
                X86Inst::Jcc(_, t) => Some(*t),
                _ => None,
            }
        }

        fn jump_target(inst: &X86Inst) -> Option<u32> {
            match inst {
                X86Inst::Jmp(t) => Some(*t),
                _ => None,
            }
        }

        fn invert_branch(inst: &X86Inst, new_target: u32) -> Option<X86Inst> {
            match inst {
                X86Inst::Jcc(c, _) => Some(X86Inst::Jcc(invert(*c), new_target)),
                _ => None,
            }
        }

        fn targets(inst: &X86Inst, out: &mut Vec<u32>) {
            match inst {
                X86Inst::Jmp(t) | X86Inst::Jcc(_, t) => out.push(*t),
                X86Inst::CallFn { unwind, .. } | X86Inst::CallIndirect { unwind, .. } => {
                    if let Some(t) = unwind {
                        out.push(*t);
                    }
                }
                _ => {}
            }
        }

        fn retarget(inst: &mut X86Inst, map: &mut dyn FnMut(u32) -> u32) {
            match inst {
                X86Inst::Jmp(t) | X86Inst::Jcc(_, t) => *t = map(*t),
                X86Inst::CallFn { unwind, .. } | X86Inst::CallIndirect { unwind, .. } => {
                    if let Some(t) = unwind {
                        *t = map(*t);
                    }
                }
                _ => {}
            }
        }
    }

    /// The pass specialized to x86 streams.
    pub fn run_x86(
        code: Vec<X86Inst>,
        cfg: &PeepholeConfig,
    ) -> Vec<X86Inst> {
        super::run::<X86Peep>(code, cfg).0
    }
}

pub use x86_lens::run_x86;

// ---------------------------------------------------------------------------
// SPARC lens
// ---------------------------------------------------------------------------

/// The SPARC lens. Only `Cmp`/`FCmp` write condition codes, so move
/// elision and forwarding cannot clobber a deferred-flags window.
pub struct SparcPeep;

mod sparc_lens {
    use super::*;
    use llva_machine::sparc::{AluOp, Cond, RegOrImm, SparcInst, G0};

    fn invert(c: Cond) -> Cond {
        match c {
            Cond::E => Cond::Ne,
            Cond::Ne => Cond::E,
            Cond::L => Cond::Ge,
            Cond::Ge => Cond::L,
            Cond::G => Cond::Le,
            Cond::Le => Cond::G,
            Cond::Lu => Cond::Geu,
            Cond::Geu => Cond::Lu,
            Cond::Gu => Cond::Leu,
            Cond::Leu => Cond::Gu,
        }
    }

    impl PeepholeIsa for SparcPeep {
        type Inst = SparcInst;

        fn is_nop_move(inst: &SparcInst) -> bool {
            match inst {
                // `or rd, rd, 0` / `add rd, rd, 0` — the generators'
                // move idiom collapsed onto itself
                SparcInst::Alu {
                    op: AluOp::Or | AluOp::Add,
                    rs1,
                    rhs: RegOrImm::Imm(0),
                    rd,
                    ..
                } => rd == rs1,
                // `or rd, %g0, rs` with rd == rs
                SparcInst::Alu {
                    op: AluOp::Or,
                    rs1: G0,
                    rhs: RegOrImm::Reg(r),
                    rd,
                    ..
                } => rd == r,
                SparcInst::FMov(d, s) => d == s,
                _ => false,
            }
        }

        fn forward_store_load(first: &SparcInst, second: &SparcInst) -> Option<Option<SparcInst>> {
            match (first, second) {
                (
                    SparcInst::St { rs, rs1, off, width: Width::B8 },
                    SparcInst::Ld { rd, rs1: b2, off: o2, width: Width::B8, .. },
                ) if rs1 == b2 && off == o2 => Some((rd != rs).then_some(SparcInst::Alu {
                    op: AluOp::Or,
                    rs1: *rs,
                    rhs: RegOrImm::Imm(0),
                    rd: *rd,
                    trapping: false,
                })),
                (
                    SparcInst::StF { fs, rs1, off, is32: false },
                    SparcInst::LdF { fd, rs1: b2, off: o2, is32: false },
                ) if rs1 == b2 && off == o2 => {
                    Some((fd != fs).then_some(SparcInst::FMov(*fd, *fs)))
                }
                _ => None,
            }
        }

        fn cond_branch_target(inst: &SparcInst) -> Option<u32> {
            match inst {
                SparcInst::Br { target, .. } => Some(*target),
                _ => None,
            }
        }

        fn jump_target(inst: &SparcInst) -> Option<u32> {
            match inst {
                SparcInst::Ba { target } => Some(*target),
                _ => None,
            }
        }

        fn invert_branch(inst: &SparcInst, new_target: u32) -> Option<SparcInst> {
            match inst {
                SparcInst::Br { cond, .. } => Some(SparcInst::Br {
                    cond: invert(*cond),
                    target: new_target,
                }),
                _ => None,
            }
        }

        fn targets(inst: &SparcInst, out: &mut Vec<u32>) {
            match inst {
                SparcInst::Br { target, .. } | SparcInst::Ba { target } => out.push(*target),
                SparcInst::Call { unwind, .. } | SparcInst::CallIndirect { unwind, .. } => {
                    if let Some(t) = unwind {
                        out.push(*t);
                    }
                }
                _ => {}
            }
        }

        fn retarget(inst: &mut SparcInst, map: &mut dyn FnMut(u32) -> u32) {
            match inst {
                SparcInst::Br { target, .. } | SparcInst::Ba { target } => *target = map(*target),
                SparcInst::Call { unwind, .. } | SparcInst::CallIndirect { unwind, .. } => {
                    if let Some(t) = unwind {
                        *t = map(*t);
                    }
                }
                _ => {}
            }
        }
    }

    /// The pass specialized to SPARC streams.
    pub fn run_sparc(
        code: Vec<SparcInst>,
        cfg: &PeepholeConfig,
    ) -> Vec<SparcInst> {
        super::run::<SparcPeep>(code, cfg).0
    }
}

pub use sparc_lens::run_sparc;

// ---------------------------------------------------------------------------
// RISC-V lens
// ---------------------------------------------------------------------------

/// The RV64 lens. No condition codes at all, so every rewrite window
/// is flag-free by construction; branch inversion keeps the operand
/// order and flips only the condition.
pub struct RiscvPeep;

mod riscv_lens {
    use super::*;
    use llva_machine::riscv::{AluOp, BrCond, RegOrImm, RiscvInst};

    fn invert(c: BrCond) -> BrCond {
        match c {
            BrCond::Eq => BrCond::Ne,
            BrCond::Ne => BrCond::Eq,
            BrCond::Lt => BrCond::Ge,
            BrCond::Ge => BrCond::Lt,
            BrCond::Ltu => BrCond::Geu,
            BrCond::Geu => BrCond::Ltu,
        }
    }

    impl PeepholeIsa for RiscvPeep {
        type Inst = RiscvInst;

        fn is_nop_move(inst: &RiscvInst) -> bool {
            match inst {
                // `addi rd, rd, 0` — the move idiom collapsed
                RiscvInst::Alu {
                    op: AluOp::Add,
                    rs1,
                    rhs: RegOrImm::Imm(0),
                    rd,
                    trapping: false,
                } => rd == rs1,
                RiscvInst::FMov(d, s) => d == s,
                _ => false,
            }
        }

        fn forward_store_load(first: &RiscvInst, second: &RiscvInst) -> Option<Option<RiscvInst>> {
            match (first, second) {
                (
                    RiscvInst::St { rs, rs1, off, width: Width::B8 },
                    RiscvInst::Ld { rd, rs1: b2, off: o2, width: Width::B8, .. },
                ) if rs1 == b2 && off == o2 => Some((rd != rs).then_some(RiscvInst::Alu {
                    op: AluOp::Add,
                    rs1: *rs,
                    rhs: RegOrImm::Imm(0),
                    rd: *rd,
                    trapping: false,
                })),
                (
                    RiscvInst::StF { fs, rs1, off, is32: false },
                    RiscvInst::LdF { fd, rs1: b2, off: o2, is32: false },
                ) if rs1 == b2 && off == o2 => {
                    Some((fd != fs).then_some(RiscvInst::FMov(*fd, *fs)))
                }
                _ => None,
            }
        }

        fn cond_branch_target(inst: &RiscvInst) -> Option<u32> {
            match inst {
                RiscvInst::Br { target, .. } => Some(*target),
                _ => None,
            }
        }

        fn jump_target(inst: &RiscvInst) -> Option<u32> {
            match inst {
                RiscvInst::J { target } => Some(*target),
                _ => None,
            }
        }

        fn invert_branch(inst: &RiscvInst, new_target: u32) -> Option<RiscvInst> {
            match inst {
                RiscvInst::Br { cond, rs1, rs2, .. } => Some(RiscvInst::Br {
                    cond: invert(*cond),
                    rs1: *rs1,
                    rs2: *rs2,
                    target: new_target,
                }),
                _ => None,
            }
        }

        fn targets(inst: &RiscvInst, out: &mut Vec<u32>) {
            match inst {
                RiscvInst::Br { target, .. } | RiscvInst::J { target } => out.push(*target),
                RiscvInst::Call { unwind, .. } | RiscvInst::CallIndirect { unwind, .. } => {
                    if let Some(t) = unwind {
                        out.push(*t);
                    }
                }
                _ => {}
            }
        }

        fn retarget(inst: &mut RiscvInst, map: &mut dyn FnMut(u32) -> u32) {
            match inst {
                RiscvInst::Br { target, .. } | RiscvInst::J { target } => *target = map(*target),
                RiscvInst::Call { unwind, .. } | RiscvInst::CallIndirect { unwind, .. } => {
                    if let Some(t) = unwind {
                        *t = map(*t);
                    }
                }
                _ => {}
            }
        }
    }

    /// The pass specialized to RV64 streams.
    pub fn run_riscv(
        code: Vec<RiscvInst>,
        cfg: &PeepholeConfig,
    ) -> Vec<RiscvInst> {
        super::run::<RiscvPeep>(code, cfg).0
    }
}

pub use riscv_lens::run_riscv;

#[cfg(test)]
mod tests {
    use super::*;
    use llva_machine::x86::{Cond, Gpr, MemOp, X86Inst};

    fn mem(disp: i32) -> MemOp {
        MemOp { base: Gpr::Ebp, disp }
    }

    #[test]
    fn disabled_config_is_identity() {
        let code = vec![X86Inst::MovRR(Gpr::Eax, Gpr::Eax), X86Inst::Ret];
        let (out, stats) = run::<X86Peep>(code.clone(), &PeepholeConfig::off());
        assert_eq!(out, code);
        assert_eq!(stats.total(), 0);
    }

    #[test]
    fn self_move_deleted_and_branches_remap() {
        // jcc over the nop move must land on the ret that follows it
        let code = vec![
            X86Inst::Jcc(Cond::E, 2),
            X86Inst::MovRR(Gpr::Eax, Gpr::Eax),
            X86Inst::Ret,
        ];
        let (out, stats) = run::<X86Peep>(code, &PeepholeConfig::on());
        assert_eq!(out, vec![X86Inst::Jcc(Cond::E, 1), X86Inst::Ret]);
        assert_eq!(stats.moves_elided, 1);
    }

    #[test]
    fn store_load_forwards_to_move() {
        let code = vec![
            X86Inst::Store { src: Gpr::Ecx, mem: mem(-8), width: Width::B8 },
            X86Inst::Load { dst: Gpr::Eax, mem: mem(-8), width: Width::B8, signed: false },
            X86Inst::Ret,
        ];
        let (out, stats) = run::<X86Peep>(code, &PeepholeConfig::on());
        assert_eq!(
            out,
            vec![
                X86Inst::Store { src: Gpr::Ecx, mem: mem(-8), width: Width::B8 },
                X86Inst::MovRR(Gpr::Eax, Gpr::Ecx),
                X86Inst::Ret,
            ]
        );
        assert_eq!(stats.loads_forwarded, 1);
    }

    #[test]
    fn store_load_same_reg_deletes_load() {
        let code = vec![
            X86Inst::Store { src: Gpr::Eax, mem: mem(-8), width: Width::B8 },
            X86Inst::Load { dst: Gpr::Eax, mem: mem(-8), width: Width::B8, signed: false },
            X86Inst::Ret,
        ];
        let (out, _) = run::<X86Peep>(code, &PeepholeConfig::on());
        assert_eq!(
            out,
            vec![
                X86Inst::Store { src: Gpr::Eax, mem: mem(-8), width: Width::B8 },
                X86Inst::Ret,
            ]
        );
    }

    #[test]
    fn narrow_or_mismatched_slots_not_forwarded() {
        let code = vec![
            X86Inst::Store { src: Gpr::Ecx, mem: mem(-8), width: Width::B4 },
            X86Inst::Load { dst: Gpr::Eax, mem: mem(-8), width: Width::B4, signed: false },
            X86Inst::Store { src: Gpr::Ecx, mem: mem(-8), width: Width::B8 },
            X86Inst::Load { dst: Gpr::Eax, mem: mem(-16), width: Width::B8, signed: false },
            X86Inst::Ret,
        ];
        let (out, stats) = run::<X86Peep>(code.clone(), &PeepholeConfig::on());
        assert_eq!(out, code);
        assert_eq!(stats.total(), 0);
    }

    #[test]
    fn branch_target_blocks_forwarding() {
        // control reaches the load without the store — must not rewrite
        let code = vec![
            X86Inst::Jcc(Cond::E, 2),
            X86Inst::Store { src: Gpr::Ecx, mem: mem(-8), width: Width::B8 },
            X86Inst::Load { dst: Gpr::Eax, mem: mem(-8), width: Width::B8, signed: false },
            X86Inst::Ret,
        ];
        let (out, stats) = run::<X86Peep>(code.clone(), &PeepholeConfig::on());
        assert_eq!(out, code);
        assert_eq!(stats.total(), 0);
    }

    #[test]
    fn branch_over_branch_folds() {
        let code = vec![
            X86Inst::Jcc(Cond::L, 2),
            X86Inst::Jmp(5),
            X86Inst::MovRI(Gpr::Eax, 1),
            X86Inst::Ret,
            X86Inst::MovRI(Gpr::Eax, 2),
            X86Inst::Ret,
        ];
        let (out, stats) = run::<X86Peep>(code, &PeepholeConfig::on());
        assert_eq!(out[0], X86Inst::Jcc(Cond::Ge, 4));
        assert_eq!(out.len(), 5);
        assert_eq!(stats.branches_folded, 1);
    }

    #[test]
    fn targeted_jump_not_folded() {
        // something else branches *to* the jmp: folding would strand it
        let code = vec![
            X86Inst::Jcc(Cond::L, 2),
            X86Inst::Jmp(5),
            X86Inst::MovRI(Gpr::Eax, 1),
            X86Inst::Jcc(Cond::G, 1),
            X86Inst::Ret,
            X86Inst::MovRI(Gpr::Eax, 2),
            X86Inst::Ret,
        ];
        let (out, stats) = run::<X86Peep>(code.clone(), &PeepholeConfig::on());
        assert_eq!(out, code);
        assert_eq!(stats.total(), 0);
    }

    #[test]
    fn unwind_pads_are_remapped() {
        let code = vec![
            X86Inst::MovRR(Gpr::Eax, Gpr::Eax),
            X86Inst::CallFn { func: 0, unwind: Some(2) },
            X86Inst::Ret,
        ];
        let (out, _) = run::<X86Peep>(code, &PeepholeConfig::on());
        assert_eq!(
            out,
            vec![X86Inst::CallFn { func: 0, unwind: Some(1) }, X86Inst::Ret]
        );
    }

    #[test]
    fn fixpoint_chains_rules() {
        // folding the branch makes the store/load adjacent only after
        // compaction; the second round forwards it
        let code = vec![
            X86Inst::Store { src: Gpr::Ecx, mem: mem(-8), width: Width::B8 },
            X86Inst::MovRR(Gpr::Edx, Gpr::Edx),
            X86Inst::Load { dst: Gpr::Eax, mem: mem(-8), width: Width::B8, signed: false },
            X86Inst::Ret,
        ];
        let (out, stats) = run::<X86Peep>(code, &PeepholeConfig::on());
        assert_eq!(
            out,
            vec![
                X86Inst::Store { src: Gpr::Ecx, mem: mem(-8), width: Width::B8 },
                X86Inst::MovRR(Gpr::Eax, Gpr::Ecx),
                X86Inst::Ret,
            ]
        );
        assert_eq!(stats.moves_elided, 1);
        assert_eq!(stats.loads_forwarded, 1);
    }
}
