//! Image cache recovery sweep over the Table 2 workloads (CI's
//! `image-cache` job).
//!
//! For every workload: build a full persistent image (bytecode +
//! predecode + x86 native), corrupt one derived section with a flip
//! chosen deterministically from `LLVA_FAULT_SEED`, and check the
//! §4.1 offline-cache story end to end — `repair_image` rebuilds
//! exactly the damaged section, and both warm-start paths (lazy
//! pre-decode loader, lazy native probe) still execute to the
//! structural interpreter's answer.

use llva::engine::llee::{ExecutionManager, TargetIsa};
use llva::engine::{FastInterpreter, Interpreter, LlvaImage, SectionKind};
use std::sync::Arc;

/// Deterministic xorshift64* PRNG (no external deps).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn usize(&mut self, hi: usize) -> usize {
        (self.next() % hi as u64) as usize
    }
}

fn fault_seeds() -> Vec<u64> {
    match std::env::var("LLVA_FAULT_SEED") {
        Ok(s) => s
            .split(',')
            .filter_map(|t| t.trim().parse().ok())
            .collect(),
        Err(_) => vec![1, 7, 0x00de_cade],
    }
}

/// Flips seeded bits until exactly one *derived* section (predecode or
/// native — the ones `repair_image` can rebuild from the bytecode)
/// reports checksum damage, and returns that corrupted image.
fn corrupt_one_derived_section(intact: &[u8], seed: u64) -> (Vec<u8>, SectionKind) {
    let mut rng = Rng::new(seed);
    for _ in 0..4096 {
        let mut corrupt = intact.to_vec();
        let at = rng.usize(corrupt.len());
        corrupt[at] ^= 1 << rng.usize(8);
        let Ok(img) = LlvaImage::parse(corrupt.clone()) else {
            continue; // header/table damage: rejected wholesale
        };
        let bad: Vec<SectionKind> = img
            .sections()
            .into_iter()
            .filter(|&k| !img.section_ok(k))
            .collect();
        match bad[..] {
            [k] if k != SectionKind::Bytecode => return (corrupt, k),
            _ => continue,
        }
    }
    panic!("no seeded flip landed in a derived section (seed {seed})");
}

#[test]
fn corrupted_workload_images_recover_by_partial_rebuild() {
    for w in llva_workloads::all() {
        let module = w.compile(llva::core::layout::TargetConfig::default());
        let oracle = Interpreter::new(&module)
            .run("main", &[])
            .unwrap_or_else(|e| panic!("{}: oracle run failed: {e}", w.name));

        let mut mgr = ExecutionManager::new(module.clone(), TargetIsa::X86);
        mgr.translate_all_parallel(0)
            .unwrap_or_else(|e| panic!("{}: translation failed: {e}", w.name));
        let intact = mgr.build_image(true);
        let stamp = LlvaImage::parse(intact.clone()).expect("parses").stamp();

        for seed in fault_seeds() {
            let (corrupt, damaged) = corrupt_one_derived_section(&intact, seed);
            let (repaired, rebuilt) = llva::engine::repair_image(&corrupt)
                .unwrap_or_else(|e| panic!("{}: unrepairable: {e}", w.name));
            assert_eq!(
                rebuilt,
                vec![damaged],
                "{}: rebuild must touch only the damaged section",
                w.name
            );

            let image = Arc::new(LlvaImage::parse(repaired).expect("repaired parses"));
            assert_eq!(image.stamp(), stamp, "{}: stamp drifted", w.name);
            assert!(
                image.sections().iter().all(|&k| image.section_ok(k)),
                "{}: repaired image still damaged",
                w.name
            );

            // interpreter warm path: lazy loader, no SSA re-lowering
            let (pre, covered) = image.premodule(&module).expect("premodule");
            assert!(covered > 0, "{}: nothing warm-loaded", w.name);
            let mut interp = FastInterpreter::with_predecoded(pre);
            let got = interp
                .run("main", &[])
                .unwrap_or_else(|e| panic!("{}: warm interp failed: {e}", w.name));
            assert_eq!(got, oracle, "{}: warm interp diverged", w.name);

            // native warm path: per-function image probe, no JIT
            let mut warm = ExecutionManager::new(module.clone(), TargetIsa::X86);
            warm.set_image(image.clone());
            let out = warm
                .run("main", &[])
                .unwrap_or_else(|e| panic!("{}: warm native failed: {e}", w.name));
            assert_eq!(out.value, oracle, "{}: warm native diverged", w.name);
            let t = warm.stats();
            assert!(t.image_hits > 0, "{}: native probe never hit", w.name);
            assert_eq!(
                t.image_corrupt, 0,
                "{}: repaired image reported corruption",
                w.name
            );
        }
    }
}
