//! # llva-conform — N-way differential conformance harness
//!
//! The paper's core claim is that one virtual object file means the
//! same thing through every representation and on every processor
//! (§3, §4.1). This crate checks that claim at scale:
//!
//! 1. [`gen`] deterministically generates well-typed LLVA modules with
//!    real structure (CFGs, loops, phis, memory, call graphs) from a
//!    seed — every module verifies by construction.
//! 2. [`oracle`] executes each module identically across every
//!    representation: the reference interpreter, printer→parser and
//!    bytecode round trips, every optimization pass alone, both full
//!    pipelines, and LLEE-translated x86 and SPARC simulators. Any
//!    difference in return value, trap kind, or verifier acceptance is
//!    a conformance failure.
//! 3. [`shrink`] minimizes failures by delta debugging and the harness
//!    prints a reproducible seed plus minimized `.ll` text.
//!
//! The `llva-conform` CLI runs seed ranges with per-stage divergence
//! statistics; see DESIGN.md ("Conformance harness") for how to replay
//! a failure from a printed seed.
//!
//! ```
//! use llva_conform::{gen, oracle};
//!
//! let tc = gen::generate(7, &gen::GenConfig::default());
//! let (results, divergences) = oracle::Oracle::new().check(&tc.module, &tc.entry, &tc.args);
//! assert!(divergences.is_empty());
//! assert_eq!(results[0].stage, "interp");
//! ```

pub mod gen;
pub mod oracle;
pub mod rng;
pub mod shrink;

pub use gen::{generate, GenConfig, TestCase};
pub use oracle::{Divergence, Oracle, Outcome, StageResult};
pub use shrink::{shrink, ShrinkStats};

/// A minimized, reproducible failure report.
#[derive(Debug, Clone)]
pub struct MinimizedRepro {
    /// The generator seed that produced the failing module.
    pub seed: u64,
    /// Entry function name.
    pub entry: String,
    /// Raw argument bits the oracle ran with.
    pub args: Vec<u64>,
    /// The minimized module as LLVA assembly.
    pub text: String,
    /// Shrink statistics (before/after instruction counts).
    pub stats: ShrinkStats,
    /// The divergences still present in the minimized module.
    pub divergences: Vec<Divergence>,
}

impl MinimizedRepro {
    /// A human-readable report: the seed, how to replay it, the
    /// divergences, and the minimized assembly.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "CONFORMANCE FAILURE — seed {} (reproduce: llva-conform --seeds {}..{})\n",
            self.seed,
            self.seed,
            self.seed + 1
        ));
        out.push_str(&format!(
            "entry %{} args [{}]\n",
            self.entry,
            self.args
                .iter()
                .map(|a| format!("{}", *a as i64))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        for d in &self.divergences {
            out.push_str(&format!("  {d}\n"));
        }
        out.push_str(&format!(
            "shrunk {} -> {} instructions ({} edits)\n",
            self.stats.insts_before, self.stats.insts_after, self.stats.applied
        ));
        out.push_str("---- minimized module ----\n");
        out.push_str(&self.text);
        out
    }
}

/// The outcome of running one seed end to end.
#[derive(Debug, Clone)]
pub struct SeedOutcome {
    /// The seed.
    pub seed: u64,
    /// Per-stage results on the generated module.
    pub results: Vec<StageResult>,
    /// Stages that diverged (empty on a healthy pipeline).
    pub divergences: Vec<Divergence>,
    /// Present when divergences were found: the minimized reproducer.
    pub minimized: Option<MinimizedRepro>,
}

/// Generates the module for `seed`, runs the oracle, and (on
/// divergence) shrinks to a minimized reproducer.
pub fn run_seed(seed: u64, cfg: &GenConfig, oracle: &Oracle) -> SeedOutcome {
    let tc = gen::generate(seed, cfg);
    let (results, divergences) = oracle.check(&tc.module, &tc.entry, &tc.args);
    let minimized = if divergences.is_empty() {
        None
    } else {
        Some(minimize(seed, &tc, oracle))
    };
    SeedOutcome {
        seed,
        results,
        divergences,
        minimized,
    }
}

/// Shrinks an already-diverging test case to a [`MinimizedRepro`].
///
/// The shrinker's inner loop runs thousands of candidates, so it only
/// re-checks the stages that diverged on the original module (against a
/// fresh interpreter baseline) rather than the full oracle; the final
/// minimized module gets one full re-check for the report.
pub fn minimize(seed: u64, tc: &TestCase, oracle: &Oracle) -> MinimizedRepro {
    let entry = tc.entry.clone();
    let args = tc.args.clone();
    let (_, orig_divergences) = oracle.check(&tc.module, &tc.entry, &tc.args);
    let diverging: Vec<String> = orig_divergences.into_iter().map(|d| d.stage).collect();
    let interesting = |m: &llva_core::module::Module| -> bool {
        if diverging.is_empty() {
            return oracle.diverges(m, &entry, &args);
        }
        let Some(baseline) = oracle.run_stage("interp", m, &entry, &args) else {
            return false;
        };
        diverging
            .iter()
            .any(|s| oracle.run_stage(s, m, &entry, &args).is_some_and(|o| o != baseline))
    };
    let (min, stats) = shrink::shrink(&tc.module, &interesting);
    let (_, divergences) = oracle.check(&min, &entry, &args);
    MinimizedRepro {
        seed,
        entry,
        args,
        text: llva_core::printer::print_module(&min),
        stats,
        divergences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_seed_produces_no_repro() {
        let out = run_seed(4, &GenConfig::default(), &Oracle::new());
        assert!(out.divergences.is_empty(), "{:?}", out.divergences);
        assert!(out.minimized.is_none());
    }

    #[test]
    fn render_mentions_seed_and_replay_command() {
        let repro = MinimizedRepro {
            seed: 99,
            entry: "f".into(),
            args: vec![1, 2],
            text: "; empty\n".into(),
            stats: ShrinkStats::default(),
            divergences: vec![],
        };
        let text = repro.render();
        assert!(text.contains("seed 99"));
        assert!(text.contains("--seeds 99..100"));
    }
}
