//! Redundant load elimination (block-local, alias-aware).
//!
//! Within each basic block, forwards stored values to subsequent loads
//! of the same address and deduplicates repeated loads, invalidating
//! tracked memory facts at calls and at stores that *may* alias
//! (per [`AliasAnalysis`](crate::alias::AliasAnalysis)). This is the
//! kind of load/store disambiguation DAISY and Crusoe needed hardware
//! support for, and which the paper says the V-ISA's type + SSA
//! information lets the translator do in software (§3.3).

use crate::alias::{AliasAnalysis, AliasResult};
use crate::pass::ModulePass;
use llva_core::instruction::Opcode;
use llva_core::module::Module;
use llva_core::value::ValueId;

/// The load-elimination pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadElim {
    eliminated: usize,
}

impl LoadElim {
    /// Creates the pass.
    pub fn new() -> LoadElim {
        LoadElim::default()
    }

    /// Loads removed in the last run.
    pub fn eliminated(&self) -> usize {
        self.eliminated
    }
}

impl ModulePass for LoadElim {
    fn name(&self) -> &'static str {
        "loadelim"
    }

    fn run(&mut self, module: &mut Module) -> bool {
        self.eliminated = 0;
        for fid in module.function_ids() {
            if module.function(fid).is_declaration() {
                continue;
            }
            let aa = AliasAnalysis::compute(module, fid);
            let blocks = module.function(fid).block_order().to_vec();
            for block in blocks {
                // available: (address, value currently in memory there)
                let mut available: Vec<(ValueId, ValueId)> = Vec::new();
                let insts = module.function(fid).block(block).insts().to_vec();
                for inst_id in insts {
                    let func = module.function(fid);
                    let inst = func.inst(inst_id);
                    match inst.opcode() {
                        Opcode::Load => {
                            let ptr = inst.operands()[0];
                            let known = available.iter().find_map(|&(p, v)| {
                                (aa.alias(func, p, ptr) == AliasResult::MustAlias).then_some(v)
                            });
                            match known {
                                Some(v) => {
                                    let result =
                                        func.inst_result(inst_id).expect("load has a result");
                                    let fm = module.function_mut(fid);
                                    fm.replace_all_uses(result, v);
                                    fm.remove_inst(inst_id);
                                    self.eliminated += 1;
                                }
                                None => {
                                    let result =
                                        func.inst_result(inst_id).expect("load has a result");
                                    available.push((ptr, result));
                                }
                            }
                        }
                        Opcode::Store => {
                            let value = inst.operands()[0];
                            let ptr = inst.operands()[1];
                            // invalidate facts that may alias the store
                            available.retain(|&(p, _)| {
                                aa.alias(func, p, ptr) == AliasResult::NoAlias
                            });
                            available.push((ptr, value));
                        }
                        Opcode::Call | Opcode::Invoke => {
                            // a call may write any escaped or unknown memory
                            available.retain(|&(p, _)| {
                                let root = aa.root(func, p);
                                !aa.is_escaped(root)
                            });
                        }
                        _ => {}
                    }
                }
            }
        }
        self.eliminated > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llva_core::builder::FunctionBuilder;
    use llva_core::layout::TargetConfig;
    use llva_core::verifier::verify_module;

    #[test]
    fn store_to_load_forwarding() {
        let src = r#"
int %f(int* %p, int %x) {
entry:
    store int %x, int* %p
    %v = load int* %p
    ret int %v
}
"#;
        let mut m = llva_core::parser::parse_module(src).expect("parses");
        let mut pass = LoadElim::new();
        assert!(pass.run(&mut m));
        assert_eq!(pass.eliminated(), 1);
        verify_module(&m).expect("verifies");
        let f = m.function_by_name("f").expect("f");
        let func = m.function(f);
        // ret now returns %x directly
        let e = func.entry_block();
        let ret = *func.block(e).insts().last().unwrap();
        assert_eq!(func.inst(ret).operands()[0], func.args()[1]);
    }

    #[test]
    fn repeated_loads_deduplicate() {
        let src = r#"
int %f(int* %p) {
entry:
    %a = load int* %p
    %b = load int* %p
    %s = add int %a, %b
    ret int %s
}
"#;
        let mut m = llva_core::parser::parse_module(src).expect("parses");
        let mut pass = LoadElim::new();
        assert!(pass.run(&mut m));
        assert_eq!(pass.eliminated(), 1);
        verify_module(&m).expect("verifies");
    }

    #[test]
    fn intervening_may_alias_store_blocks_forwarding() {
        let src = r#"
int %f(int* %p, int* %q) {
entry:
    %a = load int* %p
    store int 0, int* %q
    %b = load int* %p
    %s = add int %a, %b
    ret int %s
}
"#;
        let mut m = llva_core::parser::parse_module(src).expect("parses");
        let mut pass = LoadElim::new();
        assert!(!pass.run(&mut m), "p and q may alias; loads must stay");
    }

    #[test]
    fn no_alias_store_does_not_block() {
        // distinct fields of the same struct cannot alias
        let src = r#"
%S = type { int, int }

int %f(%S* %s) {
entry:
    %p = getelementptr %S* %s, long 0, ubyte 0
    %q = getelementptr %S* %s, long 0, ubyte 1
    %a = load int* %p
    store int 0, int* %q
    %b = load int* %p
    %r = add int %a, %b
    ret int %r
}
"#;
        let mut m = llva_core::parser::parse_module(src).expect("parses");
        let mut pass = LoadElim::new();
        assert!(pass.run(&mut m));
        assert_eq!(pass.eliminated(), 1);
        verify_module(&m).expect("verifies");
    }

    #[test]
    fn call_invalidates_escaped_memory_only() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let intp = m.types_mut().pointer_to(int);
        let void = m.types_mut().void();
        let callee = m.add_function("mayhem", void, vec![intp]);
        let f = m.add_function("f", int, vec![intp]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let arg = b.func().args()[0];
        // local never escapes; arg-based memory is unknown
        let local = b.alloca(int);
        let one = b.iconst(int, 1);
        b.store(one, local);
        b.call(callee, vec![arg]);
        let v1 = b.load(local); // forwardable across the call
        let v2 = b.load(arg); // not tracked before the call anyway
        let s = b.add(v1, v2);
        b.ret(Some(s));
        let mut pass = LoadElim::new();
        assert!(pass.run(&mut m));
        assert_eq!(pass.eliminated(), 1);
        verify_module(&m).expect("verifies");
    }
}
