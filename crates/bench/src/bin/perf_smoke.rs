//! Non-gating perf smoke: interpreted MIPS for both interpreters over
//! every Table 2 workload, so each PR leaves a visible perf trajectory.
//!
//! For each workload this runs the structural `Interpreter` and the
//! pre-decoded `FastInterpreter` (decode timed separately, run timed
//! over a decode-once cache), checks they agree on the result and the
//! instruction count, prints a MIPS table, and writes the numbers to
//! `BENCH_interp.json` for CI to archive.
//!
//! Exit code is non-zero only on a *correctness* divergence between the
//! two interpreters — throughput numbers never fail the build.

use llva_core::layout::TargetConfig;
use llva_engine::{FastInterpreter, Interpreter, PreModule};
use std::fmt::Write as _;
use std::rc::Rc;
use std::time::Instant;

/// Repeats `run` until it has consumed at least this much wall time, so
/// short workloads still produce stable rates.
const MIN_MEASURE_SECS: f64 = 0.05;

/// Runs `run()` (which returns the instructions executed by one full
/// workload execution) repeatedly and returns instructions-per-second.
fn measure(mut run: impl FnMut() -> u64) -> f64 {
    // one warm-up execution
    run();
    let start = Instant::now();
    let mut insts: u64 = 0;
    let mut iters = 0u32;
    while start.elapsed().as_secs_f64() < MIN_MEASURE_SECS || iters == 0 {
        insts += run();
        iters += 1;
        if iters >= 1000 {
            break;
        }
    }
    insts as f64 / start.elapsed().as_secs_f64()
}

struct Row {
    name: String,
    insts: u64,
    slow_mips: f64,
    fast_mips: f64,
    decode_us: f64,
    speedup: f64,
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();
    let mut divergences = 0u32;

    for w in llva_workloads::all() {
        let m = w.compile(TargetConfig::default());

        let mut slow = Interpreter::new(&m);
        let slow_value = slow.run("main", &[]).expect("structural interpreter runs");
        let insts = slow.insts_executed();

        let t0 = Instant::now();
        let pre = Rc::new(PreModule::new(&m));
        pre.decode_all();
        let decode_us = t0.elapsed().as_secs_f64() * 1e6;

        let mut fast = FastInterpreter::with_predecoded(pre.clone());
        let fast_value = fast.run("main", &[]).expect("fast interpreter runs");
        if fast_value != slow_value || fast.insts_executed() != insts {
            eprintln!(
                "DIVERGENCE in {}: structural = ({slow_value}, {insts} insts), \
                 pre-decoded = ({fast_value}, {} insts)",
                w.name,
                fast.insts_executed()
            );
            divergences += 1;
            continue;
        }

        let slow_rate = measure(|| {
            let mut i = Interpreter::new(&m);
            i.run("main", &[]).expect("runs");
            i.insts_executed()
        });
        let fast_rate = measure(|| {
            let mut i = FastInterpreter::with_predecoded(pre.clone());
            i.run("main", &[]).expect("runs");
            i.insts_executed()
        });

        rows.push(Row {
            name: w.name.to_string(),
            insts,
            slow_mips: slow_rate / 1e6,
            fast_mips: fast_rate / 1e6,
            decode_us,
            speedup: fast_rate / slow_rate,
        });
    }

    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>11} {:>9}",
        "workload", "insts", "interp MIPS", "fast MIPS", "decode(us)", "speedup"
    );
    for r in &rows {
        println!(
            "{:<16} {:>12} {:>12.2} {:>12.2} {:>11.1} {:>8.2}x",
            r.name, r.insts, r.slow_mips, r.fast_mips, r.decode_us, r.speedup
        );
    }
    let geomean = (rows.iter().map(|r| r.speedup.ln()).sum::<f64>() / rows.len() as f64).exp();
    println!("geomean speedup: {geomean:.2}x over {} workloads", rows.len());

    // hand-built JSON (no serde in the container)
    let mut json = String::from("{\n  \"benchmark\": \"interp\",\n  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"insts\": {}, \"structural_mips\": {:.3}, \
             \"predecoded_mips\": {:.3}, \"decode_us\": {:.1}, \"speedup\": {:.3}}}{}",
            r.name,
            r.insts,
            r.slow_mips,
            r.fast_mips,
            r.decode_us,
            r.speedup,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"geomean_speedup\": {geomean:.3},\n  \"divergences\": {divergences}\n}}\n"
    );
    std::fs::write("BENCH_interp.json", &json).expect("write BENCH_interp.json");
    println!("wrote BENCH_interp.json");

    if divergences > 0 {
        eprintln!("{divergences} workload(s) diverged between interpreters");
        std::process::exit(1);
    }
}
