//! The pre-decoded register-file interpreter: the *fast* semantic oracle.
//!
//! The structural [`Interpreter`](crate::interp::Interpreter) is the
//! readable executable spec: it walks `Module` structures on every step
//! and keeps SSA values in a per-frame `HashMap`. That is exactly the
//! right shape for auditing against the paper, and exactly the wrong
//! shape for the ~19-stage differential conformance sweeps that now run
//! it as their baseline.
//!
//! This module adds a one-time, per-function lowering of verified SSA
//! into a flat, dense [`PreFunction`]:
//!
//! * instructions live in one contiguous `Vec<PreInst>` in block layout
//!   order (phis excluded — they compile into edge move lists);
//! * every operand is resolved at decode time to either a dense
//!   register-file *slot* index or an immediate ([`Src`]) — constants,
//!   global addresses, and function addresses are materialized as
//!   immediates, never looked up again;
//! * block targets become flat PCs; each CFG edge carries the parallel
//!   move list compiled from the target block's phis;
//! * per-instruction metadata (access width, signedness, exception bit,
//!   cast kind, GEP step plan) is precomputed, and a side table maps
//!   each flat PC back to `(block, index)` so [`LlvaTrap`]s stay
//!   precise and identical to the structural interpreter's;
//! * pre-decoded functions are cached per module ([`PreModule`]),
//!   lazily on first call, so repeated oracle stages and repeated
//!   workload runs pay the decode cost once.
//!
//! Execution ([`FastInterpreter`]) then runs over a `Vec<u64>` register
//! slab (frames carved out of one reusable allocation instead of a
//! fresh `HashMap` per call), with a tight dispatch loop that never
//! touches [`Module`] on the hot path. The two interpreters must be
//! trap-for-trap, value-for-value identical; `crates/conform` enforces
//! this with a dedicated `fast-interp` oracle stage.

use crate::env::{Env, StackView};
use crate::interp::{
    canonicalize, from_bits, int_binary, to_bits, trap_number, InterpError, LlvaTrap,
    Name, DEFAULT_MEMORY_SIZE,
};
use crate::traced::{
    CompiledTrace, TraceConfig, TraceEnd, TraceEngine, TraceExit, TraceOp, TraceStats,
};
use llva_backend::common::{access_of, canonical_const, layout_globals, GlobalImage};
use llva_core::function::{BlockId, Function};
use llva_core::instruction::Opcode;
use llva_core::intrinsics::Intrinsic;
use llva_core::module::{FuncId, Module};
use llva_core::types::{TypeId, TypeKind, TypeTable};
use llva_core::value::{Constant, ValueId};
use llva_machine::common::TrapKind;
use llva_machine::memory::Memory;
use llva_machine::x86::{function_value, FUNC_TAG};
use llva_machine::Width;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// A pre-resolved operand: a register-file slot or an immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// Read the value from this frame-relative register slot.
    Reg(u32),
    /// The value itself (constants are materialized at decode time).
    Imm(u64),
}

/// A pre-classified comparison, so the hot loop needs no type table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CmpClass {
    /// Signed 64-bit integer ordering.
    Sint,
    /// Unsigned ordering (also bool and pointers).
    Uint,
    /// 32-bit float ordering (NaN compares unordered).
    F32,
    /// 64-bit float ordering.
    F64,
}

/// A pre-classified `cast`, mirroring [`crate::interp::cast_value`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CastKind {
    /// Bit-identical (pointer↔int of same width, unknown targets).
    Identity,
    /// Integer/bool/pointer to bool: `v != 0`.
    IntToBool,
    /// Integer to integer: canonicalize to width/signedness.
    IntToInt { width: u32, signed: bool },
    /// Integer to float/double, respecting source signedness.
    IntToFloat { src_signed: bool, dst32: bool },
    /// Float/double to float/double.
    FloatToFloat { src32: bool, dst32: bool },
    /// Float/double to bool: `x != 0.0`.
    FloatToBool { src32: bool },
    /// Float/double to integer, canonicalized.
    FloatToInt { src32: bool, width: u32, signed: bool },
}

/// One step of a pre-planned `getelementptr` address computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum GepStep {
    /// `addr += value(idx) * size` (array/pointer indexing).
    Scaled { idx: Src, size: i64 },
    /// `addr += offset` (constant indices and struct fields, folded).
    Const(u64),
    /// Indexing into a non-aggregate: precise `MemoryFault`, like the
    /// structural interpreter.
    Trap,
}

/// A CFG edge: flat target PC plus the parallel move list compiled from
/// the target block's phis.
#[derive(Debug, Clone)]
pub(crate) struct Edge {
    /// Flat PC of the target block's first non-phi instruction.
    pub(crate) target_pc: u32,
    /// Arena index of the target block (trap coordinates).
    pub(crate) target_block: u32,
    /// `(dst slot, src)` pairs, executed as one parallel assignment.
    pub(crate) moves: Vec<(u32, Src)>,
    /// A phi in the target block has no incoming value for this edge
    /// (malformed module): taking the edge raises a `Software` trap,
    /// exactly like `Interpreter::run_phis`.
    pub(crate) trap: bool,
}

/// One pre-decoded instruction.
#[derive(Debug, Clone)]
pub(crate) enum PreInst {
    /// Integer arithmetic/bitwise binary op that cannot trap (`div` and
    /// `rem` decode as [`PreInst::IntDiv`], keeping this arm branchless).
    IntBin { op: Opcode, a: Src, b: Src, dst: u32, width: u32, signed: bool },
    /// Integer `div`/`rem` — the only integer binary ops that can trap.
    IntDiv { op: Opcode, a: Src, b: Src, dst: u32, width: u32, signed: bool, exc: bool },
    /// Float/double arithmetic binary op (`add`–`rem` only).
    FloatBin { op: Opcode, a: Src, b: Src, dst: u32, is32: bool },
    /// One of the six `set*` comparisons.
    Cmp { op: Opcode, class: CmpClass, a: Src, b: Src, dst: u32 },
    /// Return, with optional value.
    Ret { val: Option<Src> },
    /// Unconditional branch.
    Jump { edge: u32 },
    /// Conditional branch.
    BrCond { cond: Src, then_edge: u32, else_edge: u32 },
    /// Multi-way branch: first matching case wins, else default.
    Mbr { disc: Src, cases: Vec<(Src, u32)>, default_edge: u32 },
    /// `call` / `invoke`. `normal_edge`/`unwind_edge` are `Some` only
    /// for `invoke`; both are edges of the *calling* function.
    Call {
        callee: Src,
        args: Vec<Src>,
        dst: Option<u32>,
        normal_edge: Option<u32>,
        unwind_edge: Option<u32>,
    },
    /// Unwind to the nearest enclosing `invoke`.
    Unwind,
    /// Scalar load with precomputed access width.
    Load { addr: Src, dst: u32, width: Width, signed: bool, exc: bool },
    /// Scalar store with precomputed access width.
    Store { val: Src, addr: Src, width: Width, exc: bool },
    /// General GEP with a step plan.
    Gep { base: Src, steps: Vec<GepStep>, dst: u32 },
    /// GEP whose indices folded entirely into one constant offset.
    GepConst { base: Src, offset: u64, dst: u32 },
    /// Stack allocation with precomputed unit size.
    Alloca { count: Option<Src>, unit: u64, dst: u32 },
    /// Type conversion with precomputed kind.
    Cast { src: Src, kind: CastKind, dst: u32 },
    /// An instruction that always raises this trap (e.g. a bitwise op
    /// on floats, which the structural interpreter traps as Software).
    AlwaysTrap { kind: TrapKind },
}

/// A function lowered to the flat pre-decoded form.
pub struct PreFunction {
    pub(crate) name: Name,
    /// Block names by arena index (trap coordinates).
    pub(crate) block_names: Vec<Name>,
    pub(crate) insts: Vec<PreInst>,
    /// Per flat PC: `(block arena index, index within the block's
    /// original instruction list, phis included)` — the precise trap
    /// coordinate the structural interpreter would report.
    pub(crate) traps: Vec<(u32, u32)>,
    pub(crate) edges: Vec<Edge>,
    /// Per block arena index: `(first flat PC, flat instruction count)`.
    /// Blocks absent from the layout order keep `(0, 0)`. The trace
    /// compiler ([`crate::traced`]) walks these spans.
    pub(crate) block_span: Vec<(u32, u32)>,
    pub(crate) num_slots: u32,
    pub(crate) num_args: u32,
    pub(crate) entry_pc: u32,
}

impl fmt::Debug for PreFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PreFunction")
            .field("name", &self.name)
            .field("insts", &self.insts.len())
            .field("edges", &self.edges.len())
            .field("slots", &self.num_slots)
            .finish()
    }
}

impl PreFunction {
    /// The function name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of flat (non-phi) instructions.
    pub fn num_insts(&self) -> usize {
        self.insts.len()
    }

    /// Number of distinct CFG edges with compiled move lists.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Register-file slots this function needs per frame.
    pub fn num_slots(&self) -> u32 {
        self.num_slots
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Decoder<'a> {
    module: &'a Module,
    func: &'a Function,
    global_addrs: &'a [u64],
    bool_ty: TypeId,
    slots: HashMap<ValueId, u32>,
    block_start: Vec<u32>,
    insts: Vec<PreInst>,
    traps: Vec<(u32, u32)>,
    edges: Vec<Edge>,
    edge_map: HashMap<(BlockId, BlockId), u32>,
}

impl<'a> Decoder<'a> {
    /// Resolves `v` to a slot or an immediate, exactly as
    /// `Interpreter::value` would evaluate it.
    fn resolve(&self, v: ValueId) -> Src {
        if let Some(&s) = self.slots.get(&v) {
            return Src::Reg(s);
        }
        match self.func.value_as_const(v) {
            Some(Constant::GlobalAddr { global, .. }) => {
                Src::Imm(self.global_addrs[global.index()])
            }
            Some(Constant::FunctionAddr { func, .. }) => {
                Src::Imm(function_value(func.index() as u32))
            }
            Some(c) => Src::Imm(canonical_const(self.module, c)),
            None => panic!("use of undefined value {v}"),
        }
    }

    fn vty(&self, v: ValueId) -> TypeId {
        self.func.value_type(v, self.bool_ty)
    }

    fn slot_of(&self, v: ValueId) -> u32 {
        self.slots[&v]
    }

    /// Interns the `pred → succ` edge, compiling the target's phis into
    /// a parallel move list.
    fn edge(&mut self, pred: BlockId, succ: BlockId) -> u32 {
        if let Some(&e) = self.edge_map.get(&(pred, succ)) {
            return e;
        }
        let mut moves = Vec::new();
        let mut trap = false;
        for &i in self.func.block(succ).insts() {
            if self.func.inst(i).opcode() != Opcode::Phi {
                break;
            }
            let incoming = self.func.phi_incoming(i, pred);
            let result = self.func.inst_result(i);
            match (incoming, result) {
                (Some(incoming), Some(result)) => {
                    moves.push((self.slot_of(result), self.resolve(incoming)));
                }
                _ => {
                    // `Interpreter::run_phis` delivers a Software trap
                    // before committing any of the edge's assignments.
                    moves.clear();
                    trap = true;
                    break;
                }
            }
        }
        let id = u32::try_from(self.edges.len()).expect("edge count overflow");
        self.edges.push(Edge {
            target_pc: self.block_start[succ.index()],
            target_block: succ.index() as u32,
            moves,
            trap,
        });
        self.edge_map.insert((pred, succ), id);
        id
    }

    /// Plans a GEP: constant indices (and all struct fields) fold into
    /// constant offsets; consecutive constants merge.
    fn plan_gep(&mut self, ops: &[ValueId]) -> (Src, Vec<GepStep>) {
        let tt = self.module.types();
        let cfg = self.module.target();
        let base = self.resolve(ops[0]);
        let mut cur = tt.pointee(self.vty(ops[0])).expect("gep base");
        let mut steps: Vec<GepStep> = Vec::new();
        let mut pending: u64 = 0;
        let mut has_pending = false;
        for (i, &idx) in ops[1..].iter().enumerate() {
            let elem = if i == 0 {
                // first index scales by the pointee size and does not
                // descend into the type
                cur
            } else {
                match tt.kind(cur).clone() {
                    TypeKind::Array { elem, .. } => {
                        cur = elem;
                        elem
                    }
                    TypeKind::LiteralStruct(_) | TypeKind::Struct(_) => {
                        let field = self
                            .func
                            .value_as_const(idx)
                            .and_then(Constant::as_int_bits)
                            .expect("struct index constant")
                            as usize;
                        pending = pending.wrapping_add(cfg.field_offset(tt, cur, field));
                        has_pending = true;
                        cur = tt.struct_fields(cur).expect("defined")[field];
                        continue;
                    }
                    _ => {
                        if has_pending {
                            steps.push(GepStep::Const(pending));
                        }
                        steps.push(GepStep::Trap);
                        return (base, steps);
                    }
                }
            };
            let size = cfg.size_of(tt, elem) as i64;
            match self.resolve(idx) {
                Src::Imm(k) => {
                    pending = pending.wrapping_add((k as i64).wrapping_mul(size) as u64);
                    has_pending = true;
                }
                s @ Src::Reg(_) => {
                    if has_pending {
                        steps.push(GepStep::Const(pending));
                        pending = 0;
                        has_pending = false;
                    }
                    steps.push(GepStep::Scaled { idx: s, size });
                }
            }
        }
        if has_pending {
            steps.push(GepStep::Const(pending));
        }
        (base, steps)
    }
}

/// Pre-classifies a cast, mirroring [`crate::interp::cast_value`]
/// branch for branch.
fn cast_kind(tt: &TypeTable, from: TypeId, to: TypeId) -> CastKind {
    if tt.is_float(from) {
        let src32 = matches!(tt.kind(from), TypeKind::Float);
        return match tt.kind(to) {
            TypeKind::Float => CastKind::FloatToFloat { src32, dst32: true },
            TypeKind::Double => CastKind::FloatToFloat { src32, dst32: false },
            TypeKind::Bool => CastKind::FloatToBool { src32 },
            _ if tt.is_integer(to) => CastKind::FloatToInt {
                src32,
                width: tt.int_bits(to).expect("int"),
                signed: tt.is_signed_integer(to),
            },
            _ => CastKind::Identity,
        };
    }
    match tt.kind(to) {
        TypeKind::Bool => CastKind::IntToBool,
        TypeKind::Float => CastKind::IntToFloat {
            src_signed: tt.is_signed_integer(from),
            dst32: true,
        },
        TypeKind::Double => CastKind::IntToFloat {
            src_signed: tt.is_signed_integer(from),
            dst32: false,
        },
        TypeKind::Pointer(_) => CastKind::Identity,
        _ if tt.is_integer(to) => CastKind::IntToInt {
            width: tt.int_bits(to).expect("int"),
            signed: tt.is_signed_integer(to),
        },
        _ => CastKind::Identity,
    }
}

/// Runtime half of [`cast_kind`].
pub(crate) fn apply_cast(kind: CastKind, v: u64) -> u64 {
    match kind {
        CastKind::Identity => v,
        CastKind::IntToBool => u64::from(v != 0),
        CastKind::IntToInt { width, signed } => canonicalize(v, width, signed),
        CastKind::IntToFloat { src_signed, dst32 } => {
            let x = if src_signed { v as i64 as f64 } else { v as f64 };
            to_bits(x, dst32)
        }
        CastKind::FloatToFloat { src32, dst32 } => to_bits(from_bits(v, src32), dst32),
        CastKind::FloatToBool { src32 } => u64::from(from_bits(v, src32) != 0.0),
        CastKind::FloatToInt { src32, width, signed } => {
            let x = from_bits(v, src32);
            let raw = if signed { (x as i64) as u64 } else { x as u64 };
            canonicalize(raw, width, signed)
        }
    }
}

/// The infallible integer binary ops, inlined without the
/// division-by-zero `Option` of [`int_binary`] (decode routes `div` and
/// `rem` to [`PreInst::IntDiv`], so this never sees them).
#[inline(always)]
pub(crate) fn int_arith(op: Opcode, a: u64, b: u64, width: u32, signed: bool) -> u64 {
    let raw = match op {
        Opcode::Add => a.wrapping_add(b),
        Opcode::Sub => a.wrapping_sub(b),
        Opcode::Mul => a.wrapping_mul(b),
        Opcode::And => a & b,
        Opcode::Or => a | b,
        Opcode::Xor => a ^ b,
        Opcode::Shl => a.wrapping_shl((b & 63) as u32),
        Opcode::Shr => {
            if signed {
                ((a as i64).wrapping_shr((b & 63) as u32)) as u64
            } else {
                a.wrapping_shr((b & 63) as u32)
            }
        }
        _ => unreachable!("fallible integer op decoded as IntDiv"),
    };
    canonicalize(raw, width, signed)
}

/// Runtime comparison over a pre-classified operand class, mirroring
/// [`crate::interp::compare`].
pub(crate) fn do_cmp(op: Opcode, class: CmpClass, a: u64, b: u64) -> bool {
    use std::cmp::Ordering;
    let ord = match class {
        CmpClass::F32 | CmpClass::F64 => {
            let is32 = matches!(class, CmpClass::F32);
            let (x, y) = (from_bits(a, is32), from_bits(b, is32));
            match x.partial_cmp(&y) {
                Some(o) => o,
                None => return matches!(op, Opcode::SetNe),
            }
        }
        CmpClass::Sint => (a as i64).cmp(&(b as i64)),
        CmpClass::Uint => a.cmp(&b),
    };
    match op {
        Opcode::SetEq => ord == Ordering::Equal,
        Opcode::SetNe => ord != Ordering::Equal,
        Opcode::SetLt => ord == Ordering::Less,
        Opcode::SetGt => ord == Ordering::Greater,
        Opcode::SetLe => ord != Ordering::Greater,
        Opcode::SetGe => ord != Ordering::Less,
        _ => unreachable!("comparison opcode"),
    }
}

/// Lowers one function body into the flat pre-decoded form.
///
/// # Panics
///
/// Panics on malformed SSA that the verifier rejects (undefined value
/// uses, non-constant struct indices, phis after non-phis) — the same
/// inputs on which the structural interpreter panics.
#[allow(clippy::too_many_lines)]
fn decode_function(
    module: &Module,
    fid: FuncId,
    global_addrs: &[u64],
    bool_ty: TypeId,
) -> PreFunction {
    let func = module.function(fid);
    let tt = module.types();
    let cfg = module.target();
    let order = func.block_order().to_vec();
    let arena_len = order.iter().map(|b| b.index() + 1).max().unwrap_or(0);

    // slot assignment: arguments first (slot i == argument i), then
    // every instruction result in layout order
    let mut slots: HashMap<ValueId, u32> = HashMap::new();
    for (i, &a) in func.args().iter().enumerate() {
        slots.insert(a, i as u32);
    }
    let mut next = func.args().len() as u32;
    for (_, i) in func.inst_iter() {
        if let Some(r) = func.inst_result(i) {
            slots.insert(r, next);
            next += 1;
        }
    }

    // flat PCs: phis occupy no flat slots
    let mut block_start = vec![0u32; arena_len];
    let mut block_span = vec![(0u32, 0u32); arena_len];
    let mut pc = 0u32;
    for &b in &order {
        block_start[b.index()] = pc;
        let insts = func.block(b).insts();
        let nphi = insts
            .iter()
            .take_while(|&&i| func.inst(i).opcode() == Opcode::Phi)
            .count();
        assert!(
            insts[nphi..]
                .iter()
                .all(|&i| func.inst(i).opcode() != Opcode::Phi),
            "phi not at block head in %{}",
            func.name()
        );
        let n = (insts.len() - nphi) as u32;
        block_span[b.index()] = (pc, n);
        pc += n;
    }

    let mut block_names = vec![Name::new(""); arena_len];
    for &b in &order {
        block_names[b.index()] = Name::new(func.block(b).name());
    }

    let mut d = Decoder {
        module,
        func,
        global_addrs,
        bool_ty,
        slots,
        block_start,
        insts: Vec::with_capacity(pc as usize),
        traps: Vec::with_capacity(pc as usize),
        edges: Vec::new(),
        edge_map: HashMap::new(),
    };

    for &b in &order {
        for (pos, &iid) in func.block(b).insts().iter().enumerate() {
            let inst = func.inst(iid);
            let op = inst.opcode();
            if op == Opcode::Phi {
                continue;
            }
            let ops = inst.operands();
            let blocks = inst.block_operands();
            let exc = inst.exceptions_enabled();
            let result_ty = inst.result_type();
            let dst = func.inst_result(iid).map(|r| d.slot_of(r));
            let pre = match op {
                _ if op.is_binary() => {
                    let a = d.resolve(ops[0]);
                    let bb = d.resolve(ops[1]);
                    if tt.is_float(result_ty) {
                        if matches!(
                            op,
                            Opcode::Add | Opcode::Sub | Opcode::Mul | Opcode::Div | Opcode::Rem
                        ) {
                            PreInst::FloatBin {
                                op,
                                a,
                                b: bb,
                                dst: dst.expect("binary result"),
                                is32: matches!(tt.kind(result_ty), TypeKind::Float),
                            }
                        } else {
                            // bitwise op on floats: the structural
                            // interpreter traps Software
                            PreInst::AlwaysTrap { kind: TrapKind::Software }
                        }
                    } else {
                        let dst = dst.expect("binary result");
                        let width = tt.int_bits(result_ty).expect("integer binary op");
                        let signed = tt.is_signed_integer(result_ty);
                        if matches!(op, Opcode::Div | Opcode::Rem) {
                            PreInst::IntDiv { op, a, b: bb, dst, width, signed, exc }
                        } else {
                            PreInst::IntBin { op, a, b: bb, dst, width, signed }
                        }
                    }
                }
                _ if op.is_comparison() => {
                    let ty = d.vty(ops[0]);
                    let class = if tt.is_float(ty) {
                        if matches!(tt.kind(ty), TypeKind::Float) {
                            CmpClass::F32
                        } else {
                            CmpClass::F64
                        }
                    } else if tt.is_signed_integer(ty) {
                        CmpClass::Sint
                    } else {
                        CmpClass::Uint
                    };
                    PreInst::Cmp {
                        op,
                        class,
                        a: d.resolve(ops[0]),
                        b: d.resolve(ops[1]),
                        dst: dst.expect("cmp result"),
                    }
                }
                Opcode::Ret => PreInst::Ret {
                    val: ops.first().map(|&v| d.resolve(v)),
                },
                Opcode::Br => {
                    if ops.is_empty() {
                        PreInst::Jump { edge: d.edge(b, blocks[0]) }
                    } else {
                        PreInst::BrCond {
                            cond: d.resolve(ops[0]),
                            then_edge: d.edge(b, blocks[0]),
                            else_edge: d.edge(b, blocks[1]),
                        }
                    }
                }
                Opcode::Mbr => PreInst::Mbr {
                    disc: d.resolve(ops[0]),
                    cases: ops[1..]
                        .iter()
                        .zip(&blocks[1..])
                        .map(|(&c, &t)| (d.resolve(c), d.edge(b, t)))
                        .collect(),
                    default_edge: d.edge(b, blocks[0]),
                },
                Opcode::Call | Opcode::Invoke => PreInst::Call {
                    callee: d.resolve(ops[0]),
                    args: ops[1..].iter().map(|&a| d.resolve(a)).collect(),
                    dst,
                    normal_edge: (op == Opcode::Invoke).then(|| d.edge(b, blocks[0])),
                    unwind_edge: (op == Opcode::Invoke).then(|| d.edge(b, blocks[1])),
                },
                Opcode::Unwind => PreInst::Unwind,
                Opcode::Load => {
                    let pointee = tt.pointee(d.vty(ops[0])).expect("pointer");
                    let (width, signed) = access_of(module, pointee);
                    PreInst::Load {
                        addr: d.resolve(ops[0]),
                        dst: dst.expect("load result"),
                        width,
                        signed,
                        exc,
                    }
                }
                Opcode::Store => {
                    let pointee = tt.pointee(d.vty(ops[1])).expect("pointer");
                    let (width, _) = access_of(module, pointee);
                    PreInst::Store {
                        val: d.resolve(ops[0]),
                        addr: d.resolve(ops[1]),
                        width,
                        exc,
                    }
                }
                Opcode::GetElementPtr => {
                    let (base, steps) = d.plan_gep(ops);
                    let dst = dst.expect("gep result");
                    match steps.as_slice() {
                        [] => PreInst::GepConst { base, offset: 0, dst },
                        [GepStep::Const(off)] => PreInst::GepConst { base, offset: *off, dst },
                        _ => PreInst::Gep { base, steps, dst },
                    }
                }
                Opcode::Alloca => {
                    let pointee = tt.pointee(result_ty).expect("alloca pointer");
                    PreInst::Alloca {
                        count: ops.first().map(|&c| d.resolve(c)),
                        unit: cfg.size_of(tt, pointee).max(1),
                        dst: dst.expect("alloca result"),
                    }
                }
                Opcode::Cast => PreInst::Cast {
                    src: d.resolve(ops[0]),
                    kind: cast_kind(tt, d.vty(ops[0]), result_ty),
                    dst: dst.expect("cast result"),
                },
                Opcode::Phi => unreachable!("phis skipped above"),
                _ => unreachable!("all opcodes covered"),
            };
            d.insts.push(pre);
            d.traps.push((b.index() as u32, pos as u32));
        }
    }

    let entry_pc = d.block_start[func.entry_block().index()];
    PreFunction {
        name: Name::new(func.name()),
        block_names,
        insts: d.insts,
        traps: d.traps,
        edges: d.edges,
        block_span,
        num_slots: next,
        num_args: func.args().len() as u32,
        entry_pc,
    }
}

// ---------------------------------------------------------------------------
// The per-module pre-decode cache
// ---------------------------------------------------------------------------

/// Per-module pre-decode state: the global layout, interned function
/// metadata, and the lazily-populated [`PreFunction`] cache.
///
/// Share one `Rc<PreModule>` across repeated [`FastInterpreter`]
/// constructions (oracle stages, benchmark iterations) so each function
/// is decoded exactly once per module.
pub struct PreModule<'m> {
    module: &'m Module,
    image: GlobalImage,
    bool_ty: TypeId,
    /// Function names for [`Env`] (`llva.stack.funcname`).
    func_names: Vec<String>,
    /// Which functions are intrinsics, resolved once by name.
    intrinsics: Vec<Option<Intrinsic>>,
    pub(crate) is_declaration: Vec<bool>,
    decoded: RefCell<Vec<Option<Rc<PreFunction>>>>,
    /// Warm-start hook: asked for a function body *before* SSA lowering.
    /// A persistent module image installs one that deserializes its
    /// pre-decode records on demand ([`crate::image::LlvaImage`]);
    /// `None` from the loader falls back to lowering, so a bad record
    /// degrades to the cold path instead of failing the call.
    loader: RefCell<Option<RecordLoader>>,
}

/// A warm-start record loader: function index → pre-decoded body, or
/// `None` to fall back to SSA lowering for that function.
pub type RecordLoader = Box<dyn Fn(usize) -> Option<Rc<PreFunction>>>;

impl<'m> fmt::Debug for PreModule<'m> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PreModule")
            .field("module", &self.module.name())
            .field("decoded", &self.decoded_functions())
            .finish()
    }
}

impl<'m> PreModule<'m> {
    /// Builds the per-module state; no function is decoded yet.
    pub fn new(module: &'m Module) -> PreModule<'m> {
        let image = layout_globals(module);
        let bool_ty = module
            .types()
            .iter()
            .find_map(|(id, k)| matches!(k, TypeKind::Bool).then_some(id))
            .unwrap_or_else(|| TypeId::from_index((u32::MAX - 1) as usize));
        let n = module.num_functions();
        let mut func_names = Vec::with_capacity(n);
        let mut intrinsics = Vec::with_capacity(n);
        let mut is_declaration = Vec::with_capacity(n);
        for (_, f) in module.functions() {
            func_names.push(f.name().to_string());
            intrinsics.push(Intrinsic::by_name(f.name()));
            is_declaration.push(f.is_declaration());
        }
        PreModule {
            module,
            image,
            bool_ty,
            func_names,
            intrinsics,
            is_declaration,
            decoded: RefCell::new(vec![None; n]),
            loader: RefCell::new(None),
        }
    }

    /// The underlying module.
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// The pre-decoded body of `fid`, decoding it on first use: the
    /// warm loader (if one is attached) is probed first, then SSA
    /// lowering.
    pub fn get(&self, fid: FuncId) -> Rc<PreFunction> {
        if let Some(p) = &self.decoded.borrow()[fid.index()] {
            return p.clone();
        }
        let p = self
            .loader
            .borrow()
            .as_ref()
            .and_then(|l| l(fid.index()))
            .unwrap_or_else(|| {
                Rc::new(decode_function(self.module, fid, &self.image.addrs, self.bool_ty))
            });
        self.decoded.borrow_mut()[fid.index()] = Some(p.clone());
        p
    }

    /// Attaches a warm-start loader consulted by [`PreModule::get`]
    /// before SSA lowering. Already-cached functions are unaffected.
    pub fn set_loader(&self, loader: RecordLoader) {
        *self.loader.borrow_mut() = Some(loader);
    }

    /// Eagerly decodes every defined function (benchmark harnesses use
    /// this to separate decode time from run time).
    pub fn decode_all(&self) {
        for fid in self.module.function_ids() {
            if !self.is_declaration[fid.index()] {
                let _ = self.get(fid);
            }
        }
    }

    /// How many functions have been decoded so far.
    pub fn decoded_functions(&self) -> usize {
        self.decoded.borrow().iter().filter(|p| p.is_some()).count()
    }

    /// Whether `func`'s body is already in the cache.
    pub fn is_decoded(&self, func: usize) -> bool {
        matches!(self.decoded.borrow().get(func), Some(Some(_)))
    }

    /// Installs an externally-produced pre-decode for `func` (a warm
    /// image load deserializes records instead of re-lowering SSA).
    /// Out-of-range ids are ignored.
    pub fn install(&self, func: usize, pre: Rc<PreFunction>) {
        if let Some(slot) = self.decoded.borrow_mut().get_mut(func) {
            *slot = Some(pre);
        }
    }

    /// Drops the cached pre-decode of one function (§3.4 SMC: the next
    /// call re-decodes from the module). Live activations keep their
    /// `Rc<PreFunction>`, matching the paper's rule that a code edit
    /// takes effect from the *next* activation of the edited function.
    pub fn invalidate(&self, func: usize) {
        if let Some(slot) = self.decoded.borrow_mut().get_mut(func) {
            *slot = None;
        }
    }

    /// The simulated address of a global (profiling counter readback).
    pub fn global_addr(&self, g: llva_core::module::GlobalId) -> u64 {
        self.image.addrs[g.index()]
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Debug-build fill pattern for unused register-slab words; reads of it
/// mean a use-before-def escaped the verifier, frees catch stale reads.
const POISON: u64 = 0xDEAD_BEEF_DEAD_BEEF;

struct FastFrame {
    /// Function index (for [`StackView`]).
    func: u32,
    pre: Rc<PreFunction>,
    /// Saved PC: meaningful while a callee runs (points at the call).
    pc: u32,
    /// This frame's first register slot in the slab.
    base: usize,
    slots: u32,
    saved_sp: u64,
    /// Edge (in the *caller's* function) to take when an `unwind`
    /// reaches this frame; `Some` iff the frame was entered via `invoke`.
    unwind_edge: Option<u32>,
}

/// The pre-decoded register-file interpreter.
///
/// Semantically identical to [`Interpreter`](crate::interp::Interpreter)
/// — same values, same precise traps (kind, function, block, index),
/// same instruction counts — but executing flat [`PreFunction`] code
/// over a dense register slab. Use it when throughput matters (the
/// conformance oracle, workload sweeps); use the structural interpreter
/// when you want code that reads like the paper's semantics.
pub struct FastInterpreter<'m> {
    pre: Rc<PreModule<'m>>,
    /// The memory image (globals initialized at construction).
    pub mem: Memory,
    /// Intrinsic state shared with native execution.
    pub env: Env,
    frames: Vec<FastFrame>,
    /// The frame slab: every live frame's registers, contiguously.
    regs: Vec<u64>,
    /// High-water mark of live registers (`regs[top..]` is free).
    top: usize,
    sp: u64,
    insts: u64,
    fuel: u64,
    /// Fault injection: panic once `insts` reaches this count (see
    /// [`FastInterpreter::arm_panic_after`]). `None` = disarmed.
    panic_after: Option<u64>,
    phi_scratch: Vec<u64>,
    arg_buf: Vec<u64>,
    /// The hot-trace tier (paper §4.2), `None` when tracing is off.
    trace: Option<Box<TraceEngine>>,
}

/// Batched step accounting for the dispatch loop: `fuel`, `insts`, and
/// `env.clock` advance in lockstep, so the hot loop keeps one local
/// step counter and commits all three on every exit path instead of
/// performing three memory read-modify-writes per instruction.
struct Acct {
    /// Steps executed since the last commit/resync.
    steps: u64,
    /// Fuel available at the last resync (`steps == limit` ⇒ out of fuel).
    limit: u64,
    /// `self.insts` at the last resync.
    insts0: u64,
    /// `self.env.clock` at the last resync.
    clock0: u64,
}

/// How one pass over a trace's ops ended: back at the head (the driver
/// re-checks the fuel budget before the next pass) or leaving the trace.
enum PassEnd {
    Looped,
    Exit(TraceExit),
}

impl<'m> fmt::Debug for FastInterpreter<'m> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FastInterpreter")
            .field("module", &self.pre.module.name())
            .field("frames", &self.frames.len())
            .field("insts", &self.insts)
            .finish()
    }
}

#[inline]
fn read(regs: &[u64], base: usize, s: Src) -> u64 {
    match s {
        Src::Reg(r) => regs[base + r as usize],
        Src::Imm(v) => v,
    }
}

impl<'m> FastInterpreter<'m> {
    /// Creates a fast interpreter with its own pre-decode cache and the
    /// default 16 MiB memory ([`DEFAULT_MEMORY_SIZE`]).
    pub fn new(module: &'m Module) -> FastInterpreter<'m> {
        FastInterpreter::with_predecoded(Rc::new(PreModule::new(module)))
    }

    /// Creates a fast interpreter with a custom memory size.
    pub fn with_memory_size(module: &'m Module, mem_size: u64) -> FastInterpreter<'m> {
        FastInterpreter::with_predecoded_memory(Rc::new(PreModule::new(module)), mem_size)
    }

    /// Creates a fast interpreter sharing an existing pre-decode cache
    /// (repeated runs pay the decode cost once).
    pub fn with_predecoded(pre: Rc<PreModule<'m>>) -> FastInterpreter<'m> {
        FastInterpreter::with_predecoded_memory(pre, DEFAULT_MEMORY_SIZE)
    }

    /// [`FastInterpreter::with_predecoded`] with a custom memory size.
    pub fn with_predecoded_memory(pre: Rc<PreModule<'m>>, mem_size: u64) -> FastInterpreter<'m> {
        let module = pre.module;
        let mut mem = Memory::new(mem_size, pre.image.heap_base, module.target().endianness);
        mem.write_bytes(llva_machine::memory::GLOBAL_BASE, &pre.image.image)
            .expect("global image fits");
        let sp = mem.initial_sp();
        FastInterpreter {
            pre,
            mem,
            env: Env::new(),
            frames: Vec::new(),
            regs: Vec::new(),
            top: 0,
            sp,
            insts: 0,
            fuel: u64::MAX,
            panic_after: None,
            phi_scratch: Vec::new(),
            arg_buf: Vec::new(),
            trace: None,
        }
    }

    /// Enables the hot-trace tier: edge-profile counters accumulate at
    /// every block entry, hot regions compile into linear traces with
    /// fused superinstructions, and the dispatch loop enters them with
    /// a single anchor-table lookup (paper §4.2).
    pub fn enable_tracing(&mut self, config: TraceConfig) {
        self.trace = Some(Box::new(TraceEngine::new(config)));
    }

    /// Installs an existing trace engine. The engine's counters and
    /// compiled traces index into this interpreter's [`PreModule`] —
    /// only reuse an engine across interpreters sharing the same
    /// pre-decode cache (benchmark harnesses keep hot traces warm
    /// across fresh memory images this way).
    pub fn set_trace_engine(&mut self, engine: Box<TraceEngine>) {
        self.trace = Some(engine);
    }

    /// Detaches the trace engine, keeping compiled traces and stats.
    pub fn take_trace_engine(&mut self) -> Option<Box<TraceEngine>> {
        self.trace.take()
    }

    /// Trace-tier statistics, when tracing is enabled.
    /// Reads profiling counters back from this interpreter's memory
    /// after a run of an instrumented module (see [`crate::profile`]).
    pub fn read_counters(&self, map: &crate::profile::ProfileMap) -> Vec<u64> {
        let addr = self.pre.global_addr(map.counters);
        let bytes = self
            .mem
            .read_bytes(addr, (map.len * 8) as u64)
            .expect("counters mapped");
        let big = matches!(
            self.pre.module().target().endianness,
            llva_core::layout::Endianness::Big
        );
        crate::profile::decode_counters(bytes, map.len, big)
    }

    pub fn trace_stats(&self) -> Option<TraceStats> {
        self.trace.as_deref().map(TraceEngine::stats)
    }

    /// Limits the number of LLVA instructions executed.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Fault injection for the supervisor and robustness tests: panic
    /// (deterministically, mid-dispatch) once `insts` instructions have
    /// executed — the unwind crosses a live register slab and frame
    /// stack, the worst case for `catch_unwind` recovery.
    pub fn arm_panic_after(&mut self, insts: u64) {
        self.panic_after = Some(insts);
    }

    /// LLVA instructions executed so far (identical to the structural
    /// interpreter's count on the same program).
    pub fn insts_executed(&self) -> u64 {
        self.insts
    }

    /// The shared pre-decode cache.
    pub fn predecoded(&self) -> &Rc<PreModule<'m>> {
        &self.pre
    }

    /// Checks frame-slab invariants: live frames tile `regs[..top]`
    /// contiguously in stack order, and (in debug builds, where freed
    /// slots are poisoned) nothing above `top` holds live data.
    pub fn slab_consistent(&self) -> bool {
        let mut expect = 0usize;
        for f in &self.frames {
            if f.base != expect {
                return false;
            }
            expect += f.slots as usize;
        }
        if expect != self.top {
            return false;
        }
        #[cfg(debug_assertions)]
        if !self.regs[self.top..].iter().all(|&v| v == POISON) {
            return false;
        }
        true
    }

    /// Current depth of the call stack.
    pub fn call_depth(&self) -> usize {
        self.frames.len()
    }

    /// Runs function `name` with the given argument values.
    ///
    /// # Errors
    ///
    /// Exactly as [`Interpreter::run`](crate::interp::Interpreter::run):
    /// precise traps (after invoking a registered trap handler, §3.5),
    /// [`InterpError::OutOfFuel`], or [`InterpError::NoSuchFunction`].
    pub fn run(&mut self, name: &str, args: &[u64]) -> Result<u64, InterpError> {
        let module = self.pre.module;
        let fid = module
            .function_by_name(name)
            .filter(|&f| !module.function(f).is_declaration())
            .ok_or_else(|| InterpError::NoSuchFunction(name.to_string()))?;
        match self.run_function(fid, args) {
            Err(InterpError::Trap(trap)) => {
                // §3.5: deliver to a registered trap handler, then report.
                let trap_no = trap_number(trap.kind);
                if let Some(&handler) = self.env.trap_handlers.get(&trap_no) {
                    if (handler as usize) < module.num_functions() {
                        let h = FuncId::from_index(handler as usize);
                        if !module.function(h).is_declaration() {
                            let _ = self.run_function(h, &[u64::from(trap_no), 0]);
                        }
                    }
                }
                Err(InterpError::Trap(trap))
            }
            other => other,
        }
    }

    fn reset(&mut self) {
        self.frames.clear();
        #[cfg(debug_assertions)]
        for v in &mut self.regs[..self.top] {
            *v = POISON;
        }
        self.top = 0;
    }

    fn push_frame(
        &mut self,
        fid: FuncId,
        args: &[u64],
        unwind_edge: Option<u32>,
    ) -> Rc<PreFunction> {
        let pre = self.pre.get(fid);
        let base = self.top;
        let needed = base + pre.num_slots as usize;
        if self.regs.len() < needed {
            let fill = if cfg!(debug_assertions) { POISON } else { 0 };
            self.regs.resize(needed, fill);
        }
        debug_assert!(
            self.regs[base..needed].iter().all(|&v| v == POISON),
            "frame slab region reused without poisoning"
        );
        self.top = needed;
        for i in 0..pre.num_args as usize {
            self.regs[base + i] = args.get(i).copied().unwrap_or(0);
        }
        self.frames.push(FastFrame {
            func: fid.index() as u32,
            pre: pre.clone(),
            pc: pre.entry_pc,
            base,
            slots: pre.num_slots,
            saved_sp: self.sp,
            unwind_edge,
        });
        pre
    }

    fn pop_frame(&mut self) -> FastFrame {
        let f = self.frames.pop().expect("active frame");
        self.sp = f.saved_sp;
        #[cfg(debug_assertions)]
        for v in &mut self.regs[f.base..self.top] {
            *v = POISON;
        }
        self.top = f.base;
        f
    }

    /// Builds the precise trap for the instruction at `pc` of `cur`.
    fn trap_at(&self, cur: &PreFunction, pc: u32, kind: TrapKind) -> InterpError {
        let (b, i) = cur.traps[pc as usize];
        InterpError::Trap(LlvaTrap {
            kind,
            function: cur.name.clone(),
            block: cur.block_names[b as usize].clone(),
            index: i as usize,
        })
    }

    /// Performs edge `e` of `cur`: the parallel phi moves, then returns
    /// the new PC (or the Software trap for a malformed edge).
    fn take_edge(&mut self, cur: &PreFunction, base: usize, e: u32) -> Result<u32, InterpError> {
        let edge = &cur.edges[e as usize];
        if edge.trap {
            return Err(InterpError::Trap(LlvaTrap {
                kind: TrapKind::Software,
                function: cur.name.clone(),
                block: cur.block_names[edge.target_block as usize].clone(),
                index: 0,
            }));
        }
        match edge.moves.as_slice() {
            [] => {}
            &[(d, s)] => {
                let v = read(&self.regs, base, s);
                self.regs[base + d as usize] = v;
            }
            moves => {
                self.phi_scratch.clear();
                for &(_, s) in moves {
                    let v = read(&self.regs, base, s);
                    self.phi_scratch.push(v);
                }
                for (k, &(d, _)) in moves.iter().enumerate() {
                    self.regs[base + d as usize] = self.phi_scratch[k];
                }
            }
        }
        Ok(edge.target_pc)
    }

    /// The dispatch loop. Never touches [`Module`] structures: all hot
    /// state is the current [`PreFunction`], the register slab, `pc`,
    /// and `base`. Fuel/instruction/clock accounting is batched in an
    /// [`Acct`] and committed on every exit path, so the per-step cost
    /// is one compare and one add instead of three memory RMWs.
    #[allow(clippy::too_many_lines)]
    fn run_function(&mut self, fid: FuncId, args: &[u64]) -> Result<u64, InterpError> {
        // commits the batched accounting before propagating an error
        macro_rules! tc {
            ($self:ident, $acct:ident, $e:expr) => {
                match $e {
                    Ok(v) => v,
                    Err(err) => {
                        $self.commit(&$acct);
                        return Err(err);
                    }
                }
            };
        }
        self.reset();
        let mut cur = self.push_frame(fid, args, None);
        let mut func = fid.index() as u32;
        let mut base = self.frames.last().expect("frame just pushed").base;
        let mut acct = self.acct_begin();
        let mut pc = {
            let entry = cur.entry_pc;
            tc!(self, acct, self.entry_hot(&cur, func, base, entry, &mut acct))
        };
        loop {
            if acct.steps == acct.limit {
                self.commit(&acct);
                self.frames.last_mut().expect("active frame").pc = pc;
                return Err(InterpError::OutOfFuel);
            }
            if let Some(n) = self.panic_after {
                if acct.insts0 + acct.steps >= n {
                    self.commit(&acct);
                    panic!("injected fast-interpreter fault after {} insts", self.insts);
                }
            }
            acct.steps += 1;

            let inst = &cur.insts[pc as usize];
            match inst {
                PreInst::IntBin { op, a, b, dst, width, signed } => {
                    let x = read(&self.regs, base, *a);
                    let y = read(&self.regs, base, *b);
                    self.regs[base + *dst as usize] = int_arith(*op, x, y, *width, *signed);
                    pc += 1;
                }
                PreInst::IntDiv { op, a, b, dst, width, signed, exc } => {
                    let x = read(&self.regs, base, *a);
                    let y = read(&self.regs, base, *b);
                    let out = match int_binary(*op, x, y, *width, *signed) {
                        Some(v) => v,
                        None => {
                            if *exc {
                                return Err(self.fail(&acct, &cur, pc, TrapKind::DivideByZero));
                            }
                            0
                        }
                    };
                    self.regs[base + *dst as usize] = out;
                    pc += 1;
                }
                PreInst::FloatBin { op, a, b, dst, is32 } => {
                    let x = from_bits(read(&self.regs, base, *a), *is32);
                    let y = from_bits(read(&self.regs, base, *b), *is32);
                    let r = match op {
                        Opcode::Add => x + y,
                        Opcode::Sub => x - y,
                        Opcode::Mul => x * y,
                        Opcode::Div => x / y,
                        Opcode::Rem => x % y,
                        _ => unreachable!("decode rejects other float ops"),
                    };
                    self.regs[base + *dst as usize] = to_bits(r, *is32);
                    pc += 1;
                }
                PreInst::Cmp { op, class, a, b, dst } => {
                    let x = read(&self.regs, base, *a);
                    let y = read(&self.regs, base, *b);
                    self.regs[base + *dst as usize] = u64::from(do_cmp(*op, *class, x, y));
                    pc += 1;
                }
                PreInst::Ret { val } => {
                    let ret = val.map(|s| read(&self.regs, base, s)).unwrap_or(0);
                    self.pop_frame();
                    let Some(caller) = self.frames.last() else {
                        self.commit(&acct);
                        return Ok(ret);
                    };
                    cur = caller.pre.clone();
                    base = caller.base;
                    func = caller.func;
                    pc = caller.pc;
                    let PreInst::Call { dst, normal_edge, .. } = &cur.insts[pc as usize] else {
                        unreachable!("caller pc rests on its call instruction");
                    };
                    let (dst, normal_edge) = (*dst, *normal_edge);
                    if let Some(d) = dst {
                        self.regs[base + d as usize] = ret;
                    }
                    match normal_edge {
                        Some(e) => {
                            pc = tc!(self, acct, self.take_edge_hot(&cur, func, base, e, &mut acct));
                        }
                        None => {
                            pc = tc!(self, acct, self.resume_hot(&cur, func, base, pc + 1, &mut acct));
                        }
                    }
                }
                PreInst::Jump { edge } => {
                    let e = *edge;
                    pc = tc!(self, acct, self.take_edge_hot(&cur, func, base, e, &mut acct));
                }
                PreInst::BrCond { cond, then_edge, else_edge } => {
                    let e = if read(&self.regs, base, *cond) != 0 {
                        *then_edge
                    } else {
                        *else_edge
                    };
                    pc = tc!(self, acct, self.take_edge_hot(&cur, func, base, e, &mut acct));
                }
                PreInst::Mbr { disc, cases, default_edge } => {
                    let dv = read(&self.regs, base, *disc);
                    let mut e = *default_edge;
                    for &(c, t) in cases {
                        if read(&self.regs, base, c) == dv {
                            e = t;
                            break;
                        }
                    }
                    pc = tc!(self, acct, self.take_edge_hot(&cur, func, base, e, &mut acct));
                }
                PreInst::Call { callee, args, dst, normal_edge, unwind_edge } => {
                    let cv = read(&self.regs, base, *callee);
                    let idx = (cv & !FUNC_TAG) as usize;
                    if cv & FUNC_TAG == 0 || idx >= self.pre.intrinsics.len() {
                        return Err(self.fail(&acct, &cur, pc, TrapKind::BadFunctionPointer));
                    }
                    self.arg_buf.clear();
                    for &a in args {
                        let v = read(&self.regs, base, a);
                        self.arg_buf.push(v);
                    }
                    let (dst, normal_edge, unwind_edge) = (*dst, *normal_edge, *unwind_edge);
                    if let Some(intr) = self.pre.intrinsics[idx] {
                        let stack = StackView {
                            functions: self.frames.iter().rev().map(|f| f.func).collect(),
                        };
                        let argv = std::mem::take(&mut self.arg_buf);
                        // the intrinsic environment observes `env.clock`
                        self.commit(&acct);
                        let result = self.env.handle(
                            intr,
                            &argv,
                            &mut self.mem,
                            &stack,
                            &self.pre.func_names,
                        );
                        self.arg_buf = argv;
                        // §3.4: an SMC edit takes effect at the next
                        // activation — drop the pre-decoded body and any
                        // compiled traces of the edited function now
                        if !self.env.smc_invalidations.is_empty() {
                            let pend = std::mem::take(&mut self.env.smc_invalidations);
                            for f in pend {
                                self.pre.invalidate(f as usize);
                                if let Some(eng) = self.trace.as_deref_mut() {
                                    eng.invalidate(f as usize);
                                }
                            }
                        }
                        acct = self.acct_begin();
                        let ret = match result {
                            Ok(v) => v,
                            Err(k) => return Err(self.fail(&acct, &cur, pc, k)),
                        };
                        if let Some(d) = dst {
                            self.regs[base + d as usize] = ret;
                        }
                        match normal_edge {
                            Some(e) => {
                                pc = tc!(
                                    self,
                                    acct,
                                    self.take_edge_hot(&cur, func, base, e, &mut acct)
                                );
                            }
                            None => {
                                pc = tc!(
                                    self,
                                    acct,
                                    self.resume_hot(&cur, func, base, pc + 1, &mut acct)
                                );
                            }
                        }
                        continue;
                    }
                    if self.pre.is_declaration[idx] {
                        return Err(self.fail(&acct, &cur, pc, TrapKind::BadFunctionPointer));
                    }
                    if self.frames.len() > 4096 {
                        return Err(self.fail(&acct, &cur, pc, TrapKind::StackOverflow));
                    }
                    self.frames.last_mut().expect("active frame").pc = pc;
                    let argv = std::mem::take(&mut self.arg_buf);
                    cur = self.push_frame(FuncId::from_index(idx), &argv, unwind_edge);
                    self.arg_buf = argv;
                    func = idx as u32;
                    base = self.frames.last().expect("frame just pushed").base;
                    let entry = cur.entry_pc;
                    pc = tc!(self, acct, self.entry_hot(&cur, func, base, entry, &mut acct));
                }
                PreInst::Unwind => {
                    // pop frames to the nearest enclosing invoke (§3.1)
                    let unhandled = self.trap_at(&cur, pc, TrapKind::UnhandledUnwind);
                    loop {
                        if self.frames.is_empty() {
                            self.commit(&acct);
                            return Err(unhandled);
                        }
                        let f = self.pop_frame();
                        if let Some(e) = f.unwind_edge {
                            let Some(caller) = self.frames.last() else {
                                self.commit(&acct);
                                return Err(unhandled);
                            };
                            cur = caller.pre.clone();
                            base = caller.base;
                            func = caller.func;
                            pc = tc!(self, acct, self.take_edge_hot(&cur, func, base, e, &mut acct));
                            break;
                        }
                        if self.frames.is_empty() {
                            self.commit(&acct);
                            return Err(unhandled);
                        }
                    }
                }
                PreInst::Load { addr, dst, width, signed, exc } => {
                    let a = read(&self.regs, base, *addr);
                    let loaded = if *signed {
                        self.mem.load_signed(a, *width)
                    } else {
                        self.mem.load(a, *width)
                    };
                    let v = match loaded {
                        Ok(v) => v,
                        Err(k) => {
                            if *exc {
                                return Err(self.fail(&acct, &cur, pc, k));
                            }
                            0
                        }
                    };
                    self.regs[base + *dst as usize] = v;
                    pc += 1;
                }
                PreInst::Store { val, addr, width, exc } => {
                    let v = read(&self.regs, base, *val);
                    let a = read(&self.regs, base, *addr);
                    if let Err(k) = self.mem.store(a, v, *width) {
                        if *exc {
                            return Err(self.fail(&acct, &cur, pc, k));
                        }
                    }
                    pc += 1;
                }
                PreInst::Gep { base: b, steps, dst } => {
                    let mut addr = read(&self.regs, base, *b);
                    let mut fault = false;
                    for step in steps {
                        match *step {
                            GepStep::Scaled { idx, size } => {
                                let k = read(&self.regs, base, idx) as i64;
                                addr = addr.wrapping_add(k.wrapping_mul(size) as u64);
                            }
                            GepStep::Const(off) => addr = addr.wrapping_add(off),
                            GepStep::Trap => {
                                fault = true;
                                break;
                            }
                        }
                    }
                    if fault {
                        return Err(self.fail(&acct, &cur, pc, TrapKind::MemoryFault));
                    }
                    self.regs[base + *dst as usize] = addr;
                    pc += 1;
                }
                PreInst::GepConst { base: b, offset, dst } => {
                    let addr = read(&self.regs, base, *b).wrapping_add(*offset);
                    self.regs[base + *dst as usize] = addr;
                    pc += 1;
                }
                PreInst::Alloca { count, unit, dst } => {
                    let count = count.map(|c| read(&self.regs, base, c)).unwrap_or(1);
                    let size = (unit * count + 7) & !7;
                    if self.sp < self.mem.stack_limit() + size {
                        return Err(self.fail(&acct, &cur, pc, TrapKind::StackOverflow));
                    }
                    self.sp -= size;
                    self.regs[base + *dst as usize] = self.sp;
                    pc += 1;
                }
                PreInst::Cast { src, kind, dst } => {
                    let v = read(&self.regs, base, *src);
                    self.regs[base + *dst as usize] = apply_cast(*kind, v);
                    pc += 1;
                }
                PreInst::AlwaysTrap { kind } => {
                    return Err(self.fail(&acct, &cur, pc, *kind));
                }
            }
        }
    }

    /// Opens a fresh accounting batch against the current fuel level.
    #[inline]
    fn acct_begin(&self) -> Acct {
        Acct {
            steps: 0,
            limit: self.fuel,
            insts0: self.insts,
            clock0: self.env.clock,
        }
    }

    /// Writes a batch back to `fuel`/`insts`/`env.clock`. Committing the
    /// same batch twice is a no-op, so exit paths can commit defensively.
    #[inline]
    fn commit(&mut self, a: &Acct) {
        self.fuel = a.limit - a.steps;
        self.insts = a.insts0 + a.steps;
        self.env.clock = a.clock0 + a.steps;
    }

    /// Commits the accounting, then builds the precise trap at `pc`.
    #[cold]
    fn fail(&mut self, a: &Acct, cur: &PreFunction, pc: u32, kind: TrapKind) -> InterpError {
        self.commit(a);
        self.trap_at(cur, pc, kind)
    }

    /// [`FastInterpreter::take_edge`] plus the trace-tier hook: bumps the
    /// target block's profile counter and enters any trace anchored at
    /// the landing PC. With tracing disabled this compiles down to the
    /// plain edge transfer.
    #[inline]
    fn take_edge_hot(
        &mut self,
        cur: &Rc<PreFunction>,
        func: u32,
        base: usize,
        e: u32,
        acct: &mut Acct,
    ) -> Result<u32, InterpError> {
        let pc = self.take_edge(cur, base, e)?;
        if self.trace.is_none() || self.panic_after.is_some() {
            return Ok(pc);
        }
        let block = cur.edges[e as usize].target_block;
        self.trace_pc(cur, func, base, pc, Some(block), acct)
    }

    /// The trace-tier hook at function entry (the callee's entry block).
    #[inline]
    fn entry_hot(
        &mut self,
        cur: &Rc<PreFunction>,
        func: u32,
        base: usize,
        pc: u32,
        acct: &mut Acct,
    ) -> Result<u32, InterpError> {
        if self.trace.is_none() || self.panic_after.is_some() {
            return Ok(pc);
        }
        let block = cur.traps.get(pc as usize).map(|&(b, _)| b);
        self.trace_pc(cur, func, base, pc, block, acct)
    }

    /// The trace hook at a post-call resume point: plain calls resume
    /// mid-block, so there is no block entry to profile — only a
    /// continuation trace anchored at the resume pc to enter.
    #[inline]
    fn resume_hot(
        &mut self,
        cur: &Rc<PreFunction>,
        func: u32,
        base: usize,
        pc: u32,
        acct: &mut Acct,
    ) -> Result<u32, InterpError> {
        if self.trace.is_none() || self.panic_after.is_some() {
            return Ok(pc);
        }
        self.trace_pc(cur, func, base, pc, None, acct)
    }

    /// The per-edge trace hook: profile the block entry and check for an
    /// anchored trace in one per-function lookup; fall through to the
    /// dispatch loop when neither fires.
    #[inline]
    fn trace_pc(
        &mut self,
        cur: &Rc<PreFunction>,
        func: u32,
        base: usize,
        pc: u32,
        block: Option<u32>,
        acct: &mut Acct,
    ) -> Result<u32, InterpError> {
        let eng = self.trace.as_deref_mut().expect("tracing enabled");
        let (hot, anchored) = match block {
            Some(b) => eng.edge_event(func, b, pc, cur),
            // mid-block resume: no block entry to profile
            None => (false, eng.has_anchor(func, pc)),
        };
        if !hot && !anchored {
            return Ok(pc);
        }
        self.trace_enter(cur, func, base, pc, block, hot, acct)
    }

    /// The cold half of the trace hook: trigger trace formation and run
    /// a trace session.
    #[allow(clippy::too_many_arguments)]
    fn trace_enter(
        &mut self,
        cur: &Rc<PreFunction>,
        func: u32,
        base: usize,
        pc: u32,
        block: Option<u32>,
        hot: bool,
        acct: &mut Acct,
    ) -> Result<u32, InterpError> {
        // entering compiled code: fold the batch back into `fuel` so the
        // trace executor sees exact remaining fuel, and reopen it after
        self.commit(acct);
        let mut eng = self.trace.take().expect("tracing enabled");
        let r = self.trace_session(&mut eng, cur, func, base, pc, block, hot);
        self.trace = Some(eng);
        *acct = self.acct_begin();
        r
    }

    /// Runs traces anchored at `pc`, chaining across exits that land on
    /// further anchors, until execution leaves traced code. The engine
    /// is moved out of `self` for the whole session, so the chain loop
    /// pays no per-entry indirection; fuel, instruction counts, and
    /// statistics all commit exactly once when the session ends —
    /// identical instruction counts, trap coordinates, and fuel behavior
    /// to the general dispatch loop.
    #[allow(clippy::too_many_arguments)]
    fn trace_session(
        &mut self,
        eng: &mut TraceEngine,
        cur: &Rc<PreFunction>,
        func: u32,
        base: usize,
        mut pc: u32,
        mut block: Option<u32>,
        mut hot: bool,
    ) -> Result<u32, InterpError> {
        let avail = self.fuel;
        let mut done = 0u64;
        let mut entries = 0u64;
        let mut sides = 0u64;
        let mut first: Option<Rc<CompiledTrace>> = None;
        let result = loop {
            if hot {
                let b = block.expect("hot entries always name a block");
                eng.form_and_compile(&self.pre, func, b);
            }
            let Some(tr) = eng.anchor(func, pc) else {
                break Ok(pc);
            };
            entries += 1;
            if first.is_none() {
                first = Some(tr.clone());
            }
            match self.trace_body(&tr, cur, base, avail, &mut done) {
                Ok(exit) => {
                    pc = exit.pc;
                    sides += u64::from(exit.side);
                    let Some(b) = exit.block else {
                        // mid-block exit (call/ret boundary): no anchor
                        // can start here
                        break Ok(pc);
                    };
                    block = Some(b);
                    hot = eng.note_block_entry(func, b, cur);
                }
                Err(e) => break Err(e),
            }
        };
        self.fuel = avail - done;
        self.insts += done;
        self.env.clock += done;
        // profitability is judged per *session*, attributed to the trace
        // that opened it: entries chained within a session are cheap,
        // but opening a session (fold the fuel batch, enter, reopen)
        // must be covered by the instructions the session retires
        if let Some(tr) = first {
            eng.note_trace_profit(func, &tr, done);
        }
        let s = eng.stats_mut();
        s.trace_entries += entries;
        s.trace_insts += done;
        s.side_exits += sides;
        result
    }

    /// The trace dispatch loop: a budget-checking driver around
    /// [`Self::trace_pass`]. When the remaining fuel covers a whole pass
    /// over the trace (`pass_steps`), the pass runs without per-step
    /// fuel compares; only the final passes before exhaustion pay the
    /// per-step check, so exhaustion still lands on the exact
    /// instruction the general loop would stop at.
    fn trace_body(
        &mut self,
        tr: &CompiledTrace,
        cur: &Rc<PreFunction>,
        base: usize,
        avail: u64,
        done: &mut u64,
    ) -> Result<TraceExit, InterpError> {
        loop {
            let budget = avail - *done;
            let end = if budget >= tr.pass_steps {
                let passes = budget / tr.pass_steps;
                self.trace_pass::<false>(tr, cur, base, avail, done, passes)?
            } else {
                self.trace_pass::<true>(tr, cur, base, avail, done, 0)?
            };
            match end {
                PassEnd::Looped => {}
                PassEnd::Exit(e) => return Ok(e),
            }
        }
    }

    /// Runs a trace's ops. Every original instruction the trace covers
    /// bumps `done` exactly once (fused superinstructions bump it once
    /// per fused component), so accounting matches the general loop.
    /// `CHECKED` compiles the per-step fuel compare in or out: the
    /// checked instantiation loops in place until the trace exits or
    /// fuel runs dry, the unchecked one runs up to `max_passes` full
    /// passes (the caller guarantees the budget covers that many) and
    /// then hands back to the driver for a budget re-check.
    #[allow(clippy::too_many_lines)]
    fn trace_pass<const CHECKED: bool>(
        &mut self,
        tr: &CompiledTrace,
        cur: &Rc<PreFunction>,
        base: usize,
        avail: u64,
        done: &mut u64,
        max_passes: u64,
    ) -> Result<PassEnd, InterpError> {
        // one original instruction retires
        macro_rules! step {
            ($self:ident) => {
                if CHECKED && *done == avail {
                    $self
                        .frames
                        .last_mut()
                        .expect("active frame")
                        .pc = tr.head_pc;
                    return Err(InterpError::OutOfFuel);
                }
                *done += 1;
            };
        }
        // inlined hot-edge phi moves (parallel-move semantics)
        macro_rules! hot_moves {
            ($self:ident, $moves:expr) => {
                match $moves {
                    [] => {}
                    [(d, s)] => {
                        let v = read(&$self.regs, base, *s);
                        $self.regs[base + *d as usize] = v;
                    }
                    ms => {
                        $self.phi_scratch.clear();
                        for (_, s) in ms {
                            let v = read(&$self.regs, base, *s);
                            $self.phi_scratch.push(v);
                        }
                        for (i, (d, _)) in ms.iter().enumerate() {
                            $self.regs[base + *d as usize] = $self.phi_scratch[i];
                        }
                    }
                }
            };
        }
        let mut idx = 0usize;
        let mut passes = 0u64;
        loop {
            if idx == tr.ops.len() {
                match tr.end {
                    TraceEnd::Loop => {
                        passes += 1;
                        if CHECKED || passes < max_passes {
                            idx = 0;
                            continue;
                        }
                        // batch exhausted: hand the back-edge to the
                        // driver for a fresh budget check
                        return Ok(PassEnd::Looped);
                    }
                    TraceEnd::Exit { pc, block } => {
                        return Ok(PassEnd::Exit(TraceExit { pc, block, side: false }));
                    }
                }
            }
            match &tr.ops[idx] {
                TraceOp::Add { a, b, dst, width, signed } => {
                    step!(self);
                    let x = read(&self.regs, base, *a);
                    let y = read(&self.regs, base, *b);
                    self.regs[base + *dst as usize] =
                        canonicalize(x.wrapping_add(y), *width, *signed);
                }
                TraceOp::Sub { a, b, dst, width, signed } => {
                    step!(self);
                    let x = read(&self.regs, base, *a);
                    let y = read(&self.regs, base, *b);
                    self.regs[base + *dst as usize] =
                        canonicalize(x.wrapping_sub(y), *width, *signed);
                }
                TraceOp::Mul { a, b, dst, width, signed } => {
                    step!(self);
                    let x = read(&self.regs, base, *a);
                    let y = read(&self.regs, base, *b);
                    self.regs[base + *dst as usize] =
                        canonicalize(x.wrapping_mul(y), *width, *signed);
                }
                TraceOp::IntBin { op, a, b, dst, width, signed } => {
                    step!(self);
                    let x = read(&self.regs, base, *a);
                    let y = read(&self.regs, base, *b);
                    self.regs[base + *dst as usize] = int_arith(*op, x, y, *width, *signed);
                }
                TraceOp::IntDiv { op, a, b, dst, width, signed, exc, pc } => {
                    step!(self);
                    let x = read(&self.regs, base, *a);
                    let y = read(&self.regs, base, *b);
                    let out = match int_binary(*op, x, y, *width, *signed) {
                        Some(v) => v,
                        None => {
                            if *exc {
                                return Err(self.trap_at(cur, *pc, TrapKind::DivideByZero));
                            }
                            0
                        }
                    };
                    self.regs[base + *dst as usize] = out;
                }
                TraceOp::FloatBin { op, a, b, dst, is32 } => {
                    step!(self);
                    let x = from_bits(read(&self.regs, base, *a), *is32);
                    let y = from_bits(read(&self.regs, base, *b), *is32);
                    let r = match op {
                        Opcode::Add => x + y,
                        Opcode::Sub => x - y,
                        Opcode::Mul => x * y,
                        Opcode::Div => x / y,
                        Opcode::Rem => x % y,
                        _ => unreachable!("decode rejects other float ops"),
                    };
                    self.regs[base + *dst as usize] = to_bits(r, *is32);
                }
                TraceOp::Cmp { op, class, a, b, dst } => {
                    step!(self);
                    let x = read(&self.regs, base, *a);
                    let y = read(&self.regs, base, *b);
                    self.regs[base + *dst as usize] = u64::from(do_cmp(*op, *class, x, y));
                }
                TraceOp::Cast { src, kind, dst } => {
                    step!(self);
                    let v = read(&self.regs, base, *src);
                    self.regs[base + *dst as usize] = apply_cast(*kind, v);
                }
                TraceOp::Load { addr, dst, width, signed, exc, pc } => {
                    step!(self);
                    let a = read(&self.regs, base, *addr);
                    let v = self.trace_load(cur, a, *width, *signed, *exc, *pc)?;
                    self.regs[base + *dst as usize] = v;
                }
                TraceOp::Store { val, addr, width, exc, pc } => {
                    step!(self);
                    let v = read(&self.regs, base, *val);
                    let a = read(&self.regs, base, *addr);
                    if let Err(k) = self.mem.store(a, v, *width) {
                        if *exc {
                            return Err(self.trap_at(cur, *pc, k));
                        }
                    }
                }
                TraceOp::Gep { base: b, steps, dst, pc } => {
                    step!(self);
                    let mut addr = read(&self.regs, base, *b);
                    let mut fault = false;
                    for step in steps.iter() {
                        match *step {
                            GepStep::Scaled { idx, size } => {
                                let k = read(&self.regs, base, idx) as i64;
                                addr = addr.wrapping_add(k.wrapping_mul(size) as u64);
                            }
                            GepStep::Const(off) => addr = addr.wrapping_add(off),
                            GepStep::Trap => {
                                fault = true;
                                break;
                            }
                        }
                    }
                    if fault {
                        return Err(self.trap_at(cur, *pc, TrapKind::MemoryFault));
                    }
                    self.regs[base + *dst as usize] = addr;
                }
                TraceOp::GepS { base: b, off, idx: i, size, dst } => {
                    step!(self);
                    let k = read(&self.regs, base, *i) as i64;
                    let addr = read(&self.regs, base, *b)
                        .wrapping_add(*off)
                        .wrapping_add(k.wrapping_mul(*size) as u64);
                    self.regs[base + *dst as usize] = addr;
                }
                TraceOp::GepConst { base: b, offset, dst } => {
                    step!(self);
                    let addr = read(&self.regs, base, *b).wrapping_add(*offset);
                    self.regs[base + *dst as usize] = addr;
                }
                TraceOp::Alloca { count, unit, dst, pc } => {
                    step!(self);
                    let count = count.map(|c| read(&self.regs, base, c)).unwrap_or(1);
                    let size = (unit * count + 7) & !7;
                    if self.sp < self.mem.stack_limit() + size {
                        return Err(self.trap_at(cur, *pc, TrapKind::StackOverflow));
                    }
                    self.sp -= size;
                    self.regs[base + *dst as usize] = self.sp;
                }
                TraceOp::Jump0 => {
                    step!(self);
                }
                TraceOp::Jump1 { dst, src } => {
                    step!(self);
                    let v = read(&self.regs, base, *src);
                    self.regs[base + *dst as usize] = v;
                }
                TraceOp::Moves { moves } => {
                    step!(self);
                    hot_moves!(self, moves.as_ref());
                }
                TraceOp::Guard { cond, expect, hot, cold } => {
                    step!(self);
                    let taken = read(&self.regs, base, *cond) != 0;
                    if taken == *expect {
                        hot_moves!(self, hot.as_ref());
                    } else {
                        let pc = self.take_edge(cur, base, *cold)?;
                        let block = cur.edges[*cold as usize].target_block;
                        return Ok(PassEnd::Exit(TraceExit { pc, block: Some(block), side: true }));
                    }
                }
                TraceOp::CmpBr { op, class, a, b, dst, expect, hot, cold } => {
                    // fused setcc + br: two original instructions
                    step!(self);
                    let x = read(&self.regs, base, *a);
                    let y = read(&self.regs, base, *b);
                    let taken = do_cmp(*op, *class, x, y);
                    self.regs[base + *dst as usize] = u64::from(taken);
                    step!(self);
                    if taken == *expect {
                        hot_moves!(self, hot.as_ref());
                    } else {
                        let pc = self.take_edge(cur, base, *cold)?;
                        let block = cur.edges[*cold as usize].target_block;
                        return Ok(PassEnd::Exit(TraceExit { pc, block: Some(block), side: true }));
                    }
                }
                TraceOp::BinCmpBr {
                    bop, ba, bb, bdst, bwidth, bsigned,
                    cop, class, ca, cb, cdst, expect, hot, cold,
                } => {
                    // fused loop latch: three original instructions
                    step!(self);
                    let x = read(&self.regs, base, *ba);
                    let y = read(&self.regs, base, *bb);
                    self.regs[base + *bdst as usize] = int_arith(*bop, x, y, *bwidth, *bsigned);
                    step!(self);
                    let x = read(&self.regs, base, *ca);
                    let y = read(&self.regs, base, *cb);
                    let taken = do_cmp(*cop, *class, x, y);
                    self.regs[base + *cdst as usize] = u64::from(taken);
                    step!(self);
                    if taken == *expect {
                        hot_moves!(self, hot.as_ref());
                    } else {
                        let pc = self.take_edge(cur, base, *cold)?;
                        let block = cur.edges[*cold as usize].target_block;
                        return Ok(PassEnd::Exit(TraceExit { pc, block: Some(block), side: true }));
                    }
                }
                TraceOp::LoadBin {
                    op, addr, lwidth, lsigned, lexc, ldst, lpc,
                    other, loaded_lhs, dst, width, signed,
                } => {
                    // fused load + integer op: two original instructions
                    step!(self);
                    let a = read(&self.regs, base, *addr);
                    let v = self.trace_load(cur, a, *lwidth, *lsigned, *lexc, *lpc)?;
                    self.regs[base + *ldst as usize] = v;
                    step!(self);
                    let o = read(&self.regs, base, *other);
                    let (x, y) = if *loaded_lhs { (v, o) } else { (o, v) };
                    self.regs[base + *dst as usize] = int_arith(*op, x, y, *width, *signed);
                }
                TraceOp::BinStore {
                    op, a, b, tdst, width, signed, addr, swidth, sexc, spc,
                } => {
                    // fused integer op + store: two original instructions
                    step!(self);
                    let x = read(&self.regs, base, *a);
                    let y = read(&self.regs, base, *b);
                    let v = int_arith(*op, x, y, *width, *signed);
                    self.regs[base + *tdst as usize] = v;
                    step!(self);
                    let ad = read(&self.regs, base, *addr);
                    if let Err(k) = self.mem.store(ad, v, *swidth) {
                        if *sexc {
                            return Err(self.trap_at(cur, *spc, k));
                        }
                    }
                }
                TraceOp::GepLoad {
                    base: gb, off, idx: gi, gdst, dst, width, lsigned, lexc, lpc,
                } => {
                    // fused address computation + load
                    step!(self);
                    let mut addr = read(&self.regs, base, *gb).wrapping_add(*off);
                    if let Some((i, size)) = gi {
                        let k = read(&self.regs, base, *i) as i64;
                        addr = addr.wrapping_add(k.wrapping_mul(*size) as u64);
                    }
                    self.regs[base + *gdst as usize] = addr;
                    step!(self);
                    let v = self.trace_load(cur, addr, *width, *lsigned, *lexc, *lpc)?;
                    self.regs[base + *dst as usize] = v;
                }
                TraceOp::GepStore {
                    val, base: gb, off, idx: gi, gdst, swidth, sexc, spc,
                } => {
                    // fused address computation + store
                    step!(self);
                    let mut addr = read(&self.regs, base, *gb).wrapping_add(*off);
                    if let Some((i, size)) = gi {
                        let k = read(&self.regs, base, *i) as i64;
                        addr = addr.wrapping_add(k.wrapping_mul(*size) as u64);
                    }
                    self.regs[base + *gdst as usize] = addr;
                    step!(self);
                    let v = read(&self.regs, base, *val);
                    if let Err(k) = self.mem.store(addr, v, *swidth) {
                        if *sexc {
                            return Err(self.trap_at(cur, *spc, k));
                        }
                    }
                }
                TraceOp::Consts { writes } => {
                    // constant-folded chain: each write retires one
                    // original instruction
                    for (d, v) in writes.iter() {
                        step!(self);
                        self.regs[base + *d as usize] = *v;
                    }
                }
            }
            idx += 1;
        }
    }

    /// Shared load helper for trace ops (plain and fused).
    #[inline]
    fn trace_load(
        &mut self,
        cur: &PreFunction,
        addr: u64,
        width: Width,
        signed: bool,
        exc: bool,
        pc: u32,
    ) -> Result<u64, InterpError> {
        let loaded = if signed {
            self.mem.load_signed(addr, width)
        } else {
            self.mem.load(addr, width)
        };
        match loaded {
            Ok(v) => Ok(v),
            Err(k) => {
                if exc {
                    Err(self.trap_at(cur, pc, k))
                } else {
                    Ok(0)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{cast_value, compare};

    fn parse(src: &str) -> Module {
        let m = llva_core::parser::parse_module(src).expect("parses");
        llva_core::verifier::verify_module(&m).expect("verifies");
        m
    }

    #[test]
    fn cast_kind_matches_cast_value_on_every_scalar_pair() {
        let mut tt = TypeTable::new();
        let scalars = [
            tt.bool(),
            tt.ubyte(),
            tt.sbyte(),
            tt.ushort(),
            tt.short(),
            tt.uint(),
            tt.int(),
            tt.ulong(),
            tt.long(),
            tt.float(),
            tt.double(),
        ];
        let long = tt.long();
        let ptr = tt.pointer_to(long);
        let all: Vec<TypeId> = scalars.iter().copied().chain([ptr]).collect();
        let samples = [
            0u64,
            1,
            2,
            0x7F,
            0x80,
            0xFF,
            0xFFFF_FFFF,
            u64::MAX,
            (-5i64) as u64,
            f32::consts_sample_bits(),
            (2.5f64).to_bits(),
            (-3.75f64).to_bits(),
            f64::INFINITY.to_bits(),
            f64::NAN.to_bits(),
        ];
        for &from in &all {
            for &to in &all {
                let kind = cast_kind(&tt, from, to);
                for &v in &samples {
                    assert_eq!(
                        apply_cast(kind, v),
                        cast_value(&tt, from, to, v),
                        "cast {} -> {} of {v:#x} (kind {kind:?})",
                        tt.display(from),
                        tt.display(to),
                    );
                }
            }
        }
    }

    trait SampleBits {
        fn consts_sample_bits() -> u64;
    }

    impl SampleBits for f32 {
        fn consts_sample_bits() -> u64 {
            u64::from((1.5f32).to_bits())
        }
    }

    #[test]
    fn cmp_class_matches_structural_compare() {
        let mut tt = TypeTable::new();
        let cases = [
            (tt.int(), CmpClass::Sint),
            (tt.uint(), CmpClass::Uint),
            (tt.bool(), CmpClass::Uint),
            (tt.float(), CmpClass::F32),
            (tt.double(), CmpClass::F64),
        ];
        let ops = [
            Opcode::SetEq,
            Opcode::SetNe,
            Opcode::SetLt,
            Opcode::SetGt,
            Opcode::SetLe,
            Opcode::SetGe,
        ];
        let samples = [
            0u64,
            1,
            (-1i64) as u64,
            42,
            (1.5f64).to_bits(),
            u64::from((1.5f32).to_bits()),
            f64::NAN.to_bits(),
            u64::from(f32::NAN.to_bits()),
        ];
        for &(ty, class) in &cases {
            for &op in &ops {
                for &a in &samples {
                    for &b in &samples {
                        assert_eq!(
                            do_cmp(op, class, a, b),
                            compare(op, a, b, &tt, ty),
                            "{op} on {} with {a:#x}, {b:#x}",
                            tt.display(ty),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn constants_become_immediates() {
        let m = parse(
            r#"
int %f(int %x) {
entry:
    %a = add int %x, 7
    ret int %a
}
"#,
        );
        let pre = PreModule::new(&m);
        let f = pre.get(m.function_by_name("f").expect("f"));
        assert_eq!(f.num_insts(), 2);
        let PreInst::IntBin { a, b, .. } = &f.insts[0] else {
            panic!("expected IntBin, got {:?}", f.insts[0]);
        };
        assert!(matches!(a, Src::Reg(0)), "arg is slot 0: {a:?}");
        assert_eq!(*b, Src::Imm(7), "constant folded to immediate");
    }

    #[test]
    fn struct_gep_folds_to_constant_offset() {
        let m = parse(
            r#"
%Pair = type { int, long }

long* %f(%Pair* %p) {
entry:
    %f1 = getelementptr %Pair* %p, long 0, ubyte 1
    ret long* %f1
}
"#,
        );
        let pre = PreModule::new(&m);
        let f = pre.get(m.function_by_name("f").expect("f"));
        let PreInst::GepConst { offset, .. } = &f.insts[0] else {
            panic!("expected fully-folded GEP, got {:?}", f.insts[0]);
        };
        assert_eq!(*offset, 8, "long field sits at offset 8");
    }

    #[test]
    fn phis_compile_into_edge_moves() {
        let m = parse(
            r#"
int %sum(int %n) {
entry:
    br label %header
header:
    %i = phi int [ 0, %entry ], [ %i2, %body ]
    %c = setlt int %i, %n
    br bool %c, label %body, label %exit
body:
    %i2 = add int %i, 1
    br label %header
exit:
    ret int %i
}
"#,
        );
        let pre = PreModule::new(&m);
        let f = pre.get(m.function_by_name("sum").expect("sum"));
        // the phi occupies no flat slot
        assert_eq!(f.num_insts(), 6, "br, setlt, br, add, br, ret (no phi)");
        // entry->header and body->header each carry one move
        let with_moves = f.edges.iter().filter(|e| !e.moves.is_empty()).count();
        assert_eq!(with_moves, 2, "two phi-carrying edges: {:?}", f.edges);
        assert!(f.edges.iter().all(|e| !e.trap));
    }

    #[test]
    fn predecode_is_cached_per_function() {
        let m = parse(
            r#"
int %helper(int %x) {
entry:
    ret int %x
}
int %main() {
entry:
    %a = call int %helper(int 1)
    %b = call int %helper(int 2)
    %s = add int %a, %b
    ret int %s
}
"#,
        );
        let pre = Rc::new(PreModule::new(&m));
        assert_eq!(pre.decoded_functions(), 0, "decode is lazy");
        let mut i = FastInterpreter::with_predecoded(pre.clone());
        assert_eq!(i.run("main", &[]), Ok(3));
        assert_eq!(pre.decoded_functions(), 2);
        // a second interpreter over the same cache decodes nothing new
        let mut j = FastInterpreter::with_predecoded(pre.clone());
        assert_eq!(j.run("main", &[]), Ok(3));
        assert_eq!(pre.decoded_functions(), 2);
    }

    #[test]
    fn slab_reused_across_calls() {
        let m = parse(
            r#"
int %leaf(int %x) {
entry:
    %y = add int %x, 1
    ret int %y
}
int %main(int %n) {
entry:
    br label %header
header:
    %i = phi int [ 0, %entry ], [ %i2, %body ]
    %c = setlt int %i, %n
    br bool %c, label %body, label %exit
body:
    %i2 = call int %leaf(int %i)
    br label %header
exit:
    ret int %i
}
"#,
        );
        let mut i = FastInterpreter::new(&m);
        assert_eq!(i.run("main", &[100]), Ok(100));
        assert!(i.slab_consistent());
        // 100 leaf calls reuse one slab: high water = main + leaf frames
        let main_pre = i.pre.get(m.function_by_name("main").expect("main"));
        let leaf_pre = i.pre.get(m.function_by_name("leaf").expect("leaf"));
        assert!(
            i.regs.len() <= (main_pre.num_slots() + leaf_pre.num_slots()) as usize,
            "slab high water {} exceeds one main+leaf frame pair",
            i.regs.len()
        );
    }
}
