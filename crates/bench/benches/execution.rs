//! Execution-substrate bench: both interpreters vs. the two simulated
//! processors on the same workload, plus optimized-vs-unoptimized
//! simulated cycle counts (the "run time" side of Table 2's last
//! columns under DESIGN.md substitution #4).
//!
//! Interpreter numbers use a decode-once-run-many harness: the
//! `PreModule` (and the compiled workload) are built *outside* the
//! measured closure, so pre-decode cost — like the PR 1/PR 2
//! translation-cache effects — never pollutes steady-state run time.
//! Decode itself is measured as its own benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use llva_core::layout::TargetConfig;
use llva_engine::llee::{ExecutionManager, TargetIsa};
use llva_engine::{FastInterpreter, Interpreter, PreModule};
use std::rc::Rc;

fn bench_interpreters(c: &mut Criterion) {
    let mut group = c.benchmark_group("interp");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let w = llva_workloads::by_name("ptrdist-ft").expect("workload");
    let m = w.compile(TargetConfig::default());

    // one-line MIPS context so bench logs show absolute throughput
    {
        let mut i = Interpreter::new(&m);
        let t0 = std::time::Instant::now();
        i.run("main", &[]).expect("runs");
        let slow = i.insts_executed() as f64 / t0.elapsed().as_secs_f64() / 1e6;
        let pre = Rc::new(PreModule::new(&m));
        pre.decode_all();
        let mut f = FastInterpreter::with_predecoded(pre);
        let t1 = std::time::Instant::now();
        f.run("main", &[]).expect("runs");
        let fast = f.insts_executed() as f64 / t1.elapsed().as_secs_f64() / 1e6;
        println!(
            "ptrdist-ft interpreted MIPS: structural = {slow:.1}, pre-decoded = {fast:.1} ({:.1}x)",
            fast / slow
        );
    }

    group.bench_function("structural", |b| {
        b.iter(|| {
            let mut i = Interpreter::new(&m);
            i.run("main", &[]).expect("runs")
        });
    });
    // decode once, run many: the cache is shared across iterations
    let pre = Rc::new(PreModule::new(&m));
    pre.decode_all();
    group.bench_function("predecoded", |b| {
        b.iter(|| {
            let mut i = FastInterpreter::with_predecoded(pre.clone());
            i.run("main", &[]).expect("runs")
        });
    });
    // and the decode cost itself, separately
    group.bench_function("decode", |b| {
        b.iter(|| {
            let p = PreModule::new(&m);
            p.decode_all();
            p.decoded_functions()
        });
    });
    group.finish();
}

fn bench_executors(c: &mut Criterion) {
    let mut group = c.benchmark_group("executors");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let w = llva_workloads::by_name("ptrdist-ft").expect("workload");
    for isa in TargetIsa::ALL {
        group.bench_function(format!("machine/{isa}"), |b| {
            b.iter_batched(
                || w.compile(TargetConfig::default()),
                |m| {
                    let mut mgr = ExecutionManager::new(m, isa);
                    mgr.run("main", &[]).expect("runs").value
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_opt_effect_on_cycles(c: &mut Criterion) {
    // simulated-cycle effect of the optimizer (install-time optimization
    // benefit, §4.2 item 2)
    let w = llva_workloads::by_name("181.mcf").expect("workload");
    let cycles = |optimize: bool| {
        let mut m = w.compile(TargetConfig::default());
        if optimize {
            let mut pm = llva_opt::link_time_pipeline(&["main"]);
            pm.run(&mut m);
        }
        let mut mgr = ExecutionManager::new(m, TargetIsa::Sparc);
        mgr.run("main", &[]).expect("runs");
        mgr.exec_stats().cycles
    };
    let raw = cycles(false);
    let opt = cycles(true);
    println!(
        "181.mcf simulated cycles: unoptimized = {raw}, optimized = {opt} ({:.1}% saved)",
        100.0 * (raw as f64 - opt as f64) / raw as f64
    );
    let mut group = c.benchmark_group("opt_effect");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    group.bench_function("unoptimized", |b| b.iter(|| cycles(false)));
    group.bench_function("optimized", |b| b.iter(|| cycles(true)));
    group.finish();
}

criterion_group!(
    benches,
    bench_interpreters,
    bench_executors,
    bench_opt_effect_on_cycles
);
criterion_main!(benches);
