//! Conformance-harness coverage of the real front end.
//!
//! The harness's generated programs exercise the ISA broadly but are
//! synthetic; this suite feeds it the minic-compiled Table 2 workloads
//! instead, running the same N-way oracle stages over each: reference
//! interpreter, LLEE-translated x86 and SPARC processors, and both
//! again after `standard_pipeline()`. Every stage must agree on the
//! checksum, and optimization must not bloat the instruction count.

use llva_conform::oracle::Oracle;
use llva_core::layout::TargetConfig;

/// The oracle stages the workloads run through: -O0 on every executor
/// (all three interpreter tiers), then the standard pipeline
/// interpreted and on both processors.
const STAGES: [&str; 8] = [
    "interp",
    "fast-interp",
    "traced-interp",
    "x86",
    "sparc",
    "opt:standard",
    "x86:opt",
    "sparc:opt",
];

#[test]
fn workloads_agree_across_oracle_stages() {
    let mut oracle = Oracle::new();
    oracle.set_fuel(2_000_000_000);
    for w in llva_workloads::all() {
        let m = w.compile(TargetConfig::default());
        let baseline = oracle
            .run_stage("interp", &m, "main", &[])
            .expect("interp is a known stage");
        assert!(
            matches!(baseline, llva_conform::Outcome::Value(_)),
            "{}: baseline must complete normally, got {baseline}",
            w.name
        );
        for stage in &STAGES[1..] {
            let got = oracle
                .run_stage(stage, &m, "main", &[])
                .unwrap_or_else(|| panic!("unknown stage '{stage}'"));
            assert_eq!(
                got, baseline,
                "{}: stage '{stage}' disagrees with the interpreter",
                w.name
            );
        }
    }
}

#[test]
fn standard_pipeline_shrinks_workloads() {
    // instruction-count sanity: the standard pipeline must never grow
    // a workload (mem2reg + GVN + DCE only remove or combine), and the
    // result must still be a non-trivial program
    for w in llva_workloads::all() {
        let m = w.compile(TargetConfig::default());
        let before = m.total_insts();
        let mut opt = m.clone();
        llva_opt::standard_pipeline().run(&mut opt);
        llva_core::verifier::verify_module(&opt)
            .unwrap_or_else(|e| panic!("{} after standard pipeline: {e}", w.name));
        let after = opt.total_insts();
        assert!(
            after <= before,
            "{}: standard pipeline grew the module: {before} -> {after} insts",
            w.name
        );
        assert!(after > 0, "{}: optimized to nothing", w.name);
    }
}
