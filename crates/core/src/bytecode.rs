//! Binary "virtual object code" encoding (paper §3.1).
//!
//! > "To support an infinite register set, we use a self-extending
//! > instruction encoding, but define a fixed-size 32-bit format to hold
//! > small instructions for compactness and translator efficiency."
//!
//! The encoder normalizes each function to a dense value numbering
//! (arguments, then the constant pool in first-use order, then
//! instruction results in layout order). Most instructions then fit the
//! fixed 32-bit *small* format:
//!
//! ```text
//!  bit 31  30..22   21..13   12..5   4..0
//!  [ 0 ][  op2  ][  op1  ][ type ][ opcode ]
//! ```
//!
//! where `op1`/`op2` are 9-bit value numbers (`0x1FF` = unused) and
//! `type` is an 8-bit type index. Anything larger — wide indexes, block
//! operands, overridden `ExceptionsEnabled` — self-extends into a tagged
//! 32-bit word followed by LEB128 varints.
//!
//! Local value and block names are *not* encoded (like any object format,
//! locals are anonymous); function, global, and struct names are.

use crate::function::Linkage;
use crate::instruction::{Instruction, Opcode};
use crate::layout::{Endianness, PointerSize, TargetConfig};
use crate::module::{FuncId, GlobalId, Initializer, Module};
use crate::types::{TypeId, TypeKind};
use crate::value::{Constant, ValueData, ValueId};
use std::collections::HashMap;
use std::fmt;

/// Magic bytes at the start of every LLVA object file.
pub const MAGIC: &[u8; 4] = b"LLVA";
/// Format version.
pub const VERSION: u8 = 1;

/// A bytecode decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset at which decoding failed (best effort).
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bytecode error at offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for DecodeError {}

type Result<T> = std::result::Result<T, DecodeError>;

// -------------------------------------------------------------- writing --

#[derive(Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                break;
            }
            self.buf.push(byte | 0x80);
        }
    }
    fn str(&mut self, s: &str) {
        self.varint(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn bytes(&mut self, b: &[u8]) {
        self.varint(b.len() as u64);
        self.buf.extend_from_slice(b);
    }
}

/// Encodes a module into virtual object code.
pub fn encode_module(module: &Module) -> Vec<u8> {
    let mut w = Writer::default();
    w.buf.extend_from_slice(MAGIC);
    w.u8(VERSION);
    w.u8(match module.target().pointer_size {
        PointerSize::Bits32 => 32,
        PointerSize::Bits64 => 64,
    });
    w.u8(match module.target().endianness {
        Endianness::Little => 0,
        Endianness::Big => 1,
    });

    encode_types(module, &mut w);
    encode_globals(module, &mut w);
    encode_functions(module, &mut w);
    w.buf
}

fn encode_types(module: &Module, w: &mut Writer) {
    let tt = module.types();
    w.varint(tt.len() as u64);
    for (_, kind) in tt.iter() {
        match kind {
            TypeKind::Void => w.u8(0),
            TypeKind::Bool => w.u8(1),
            TypeKind::UByte => w.u8(2),
            TypeKind::SByte => w.u8(3),
            TypeKind::UShort => w.u8(4),
            TypeKind::Short => w.u8(5),
            TypeKind::UInt => w.u8(6),
            TypeKind::Int => w.u8(7),
            TypeKind::ULong => w.u8(8),
            TypeKind::Long => w.u8(9),
            TypeKind::Float => w.u8(10),
            TypeKind::Double => w.u8(11),
            TypeKind::Label => w.u8(12),
            TypeKind::Pointer(p) => {
                w.u8(13);
                w.varint(p.index() as u64);
            }
            TypeKind::Array { elem, len } => {
                w.u8(14);
                w.varint(elem.index() as u64);
                w.varint(*len);
            }
            TypeKind::LiteralStruct(fields) => {
                w.u8(15);
                w.varint(fields.len() as u64);
                for f in fields {
                    w.varint(f.index() as u64);
                }
            }
            TypeKind::Struct(sid) => {
                w.u8(16);
                w.str(tt.struct_def(*sid).name());
            }
            TypeKind::Function {
                ret,
                params,
                varargs,
            } => {
                w.u8(17);
                w.varint(ret.index() as u64);
                w.varint(params.len() as u64);
                for p in params {
                    w.varint(p.index() as u64);
                }
                w.u8(u8::from(*varargs));
            }
        }
    }
    // struct bodies
    let defs: Vec<_> = tt.struct_defs().collect();
    w.varint(defs.len() as u64);
    for (_, def) in defs {
        w.str(def.name());
        match def.body() {
            Some(fields) => {
                w.u8(1);
                w.varint(fields.len() as u64);
                for f in fields {
                    w.varint(f.index() as u64);
                }
            }
            None => w.u8(0),
        }
    }
}

fn encode_constant(c: &Constant, w: &mut Writer) {
    match c {
        Constant::Bool(b) => {
            w.u8(0);
            w.u8(u8::from(*b));
        }
        Constant::Int { ty, bits } => {
            w.u8(1);
            w.varint(ty.index() as u64);
            w.varint(*bits);
        }
        Constant::Float { ty, bits } => {
            w.u8(2);
            w.varint(ty.index() as u64);
            w.varint(*bits);
        }
        Constant::Null(ty) => {
            w.u8(3);
            w.varint(ty.index() as u64);
        }
        Constant::GlobalAddr { global, ty } => {
            w.u8(4);
            w.varint(global.index() as u64);
            w.varint(ty.index() as u64);
        }
        Constant::FunctionAddr { func, ty } => {
            w.u8(5);
            w.varint(func.index() as u64);
            w.varint(ty.index() as u64);
        }
        Constant::Undef(ty) => {
            w.u8(6);
            w.varint(ty.index() as u64);
        }
    }
}

fn encode_initializer(init: &Initializer, w: &mut Writer) {
    match init {
        Initializer::Zero => w.u8(0),
        Initializer::Scalar(c) => {
            w.u8(1);
            encode_constant(c, w);
        }
        Initializer::Array(items) => {
            w.u8(2);
            w.varint(items.len() as u64);
            for i in items {
                encode_initializer(i, w);
            }
        }
        Initializer::Struct(items) => {
            w.u8(3);
            w.varint(items.len() as u64);
            for i in items {
                encode_initializer(i, w);
            }
        }
        Initializer::Bytes(bytes) => {
            w.u8(4);
            w.bytes(bytes);
        }
    }
}

fn encode_globals(module: &Module, w: &mut Writer) {
    w.varint(module.num_globals() as u64);
    for (_, g) in module.globals() {
        w.str(g.name());
        w.varint(g.value_type().index() as u64);
        w.u8(u8::from(g.is_const()) | (u8::from(g.linkage() == Linkage::Internal) << 1));
        encode_initializer(g.init(), w);
    }
}

fn encode_function_sig(f: &crate::function::Function, w: &mut Writer) {
    w.str(f.name());
    w.varint(f.return_type().index() as u64);
    w.varint(f.param_types().len() as u64);
    for &p in f.param_types() {
        w.varint(p.index() as u64);
    }
    w.u8(u8::from(f.linkage() == Linkage::Internal));
}

fn encode_functions(module: &Module, w: &mut Writer) {
    w.varint(module.num_functions() as u64);
    for (_, f) in module.functions() {
        encode_function_sig(f, w);
        if f.is_declaration() {
            w.u8(0);
            continue;
        }
        w.u8(1);
        encode_body(f, w);
    }
}

/// Encodes everything a single function's translation can observe
/// *besides* its own body: the target configuration, the type table,
/// the globals (ids, layouts, initializers), and every function's
/// signature + declaration-ness (calls compile against callee ids and
/// signatures; intrinsic calls depend on declaration-ness). Two modules
/// with equal environment encodings and an equal [`encode_function`]
/// encoding for `f` produce byte-identical translations of `f` — this
/// is the basis of LLEE's per-function incremental cache keys.
pub fn encode_module_env(module: &Module) -> Vec<u8> {
    let mut w = Writer::default();
    w.buf.extend_from_slice(MAGIC);
    w.u8(VERSION);
    w.u8(match module.target().pointer_size {
        PointerSize::Bits32 => 32,
        PointerSize::Bits64 => 64,
    });
    w.u8(match module.target().endianness {
        Endianness::Little => 0,
        Endianness::Big => 1,
    });
    encode_types(module, &mut w);
    encode_globals(module, &mut w);
    w.varint(module.num_functions() as u64);
    for (_, f) in module.functions() {
        encode_function_sig(f, &mut w);
        w.u8(u8::from(!f.is_declaration()));
    }
    w.buf
}

/// Encodes one function (signature + body) in the same normalized form
/// `encode_module` uses. Together with [`encode_module_env`] this gives
/// a content-addressed identity for a function's translation input.
pub fn encode_function(module: &Module, f: FuncId) -> Vec<u8> {
    let mut w = Writer::default();
    let func = module.function(f);
    encode_function_sig(func, &mut w);
    if func.is_declaration() {
        w.u8(0);
    } else {
        w.u8(1);
        encode_body(func, &mut w);
    }
    w.buf
}

/// The normalized numbering of a function's values for encoding.
struct Numbering {
    map: HashMap<ValueId, u64>,
    consts: Vec<Constant>,
}

fn number_function(f: &crate::function::Function) -> Numbering {
    let mut map = HashMap::new();
    let mut next = 0u64;
    for &a in f.args() {
        map.insert(a, next);
        next += 1;
    }
    // constant pool in first-use order
    let mut consts = Vec::new();
    for (_, inst) in f.inst_iter() {
        for &op in f.inst(inst).operands() {
            if map.contains_key(&op) {
                continue;
            }
            if let ValueData::Const(c) = f.value(op) {
                map.insert(op, next);
                next += 1;
                consts.push(*c);
            }
        }
    }
    // instruction results in layout order
    for (_, inst) in f.inst_iter() {
        if let Some(r) = f.inst_result(inst) {
            map.insert(r, next);
            next += 1;
        }
    }
    Numbering { map, consts }
}

fn encode_body(f: &crate::function::Function, w: &mut Writer) {
    let numbering = number_function(f);
    w.varint(numbering.consts.len() as u64);
    for c in &numbering.consts {
        encode_constant(c, w);
    }
    // blocks
    let order = f.block_order();
    let block_index: HashMap<_, _> = order.iter().enumerate().map(|(i, &b)| (b, i)).collect();
    w.varint(order.len() as u64);
    for &b in order {
        let insts = f.block(b).insts();
        w.varint(insts.len() as u64);
        for &i in insts {
            encode_inst(f, i, &numbering, &block_index, w);
        }
    }
}

const SMALL_UNUSED: u32 = 0x1FF;

fn encode_inst(
    f: &crate::function::Function,
    id: crate::instruction::InstId,
    numbering: &Numbering,
    block_index: &HashMap<crate::function::BlockId, usize>,
    w: &mut Writer,
) {
    let inst = f.inst(id);
    let opcode = inst.opcode().encoding() as u32;
    let ty_idx = inst.result_type().index() as u64;
    let ops: Vec<u64> = inst.operands().iter().map(|o| numbering.map[o]).collect();
    let blocks: Vec<u64> = inst
        .block_operands()
        .iter()
        .map(|b| block_index[b] as u64)
        .collect();
    let exc_default = inst.opcode().default_exceptions_enabled();
    let small_ok = blocks.is_empty()
        && inst.exceptions_enabled() == exc_default
        && ty_idx < 256
        && ops.len() <= 2
        && ops.iter().all(|&o| o < SMALL_UNUSED as u64);
    if small_ok {
        let op1 = ops.first().map_or(SMALL_UNUSED, |&o| o as u32);
        let op2 = ops.get(1).map_or(SMALL_UNUSED, |&o| o as u32);
        let word = opcode | ((ty_idx as u32) << 5) | (op1 << 13) | (op2 << 22);
        debug_assert_eq!(word >> 31, 0);
        w.u32(word);
    } else {
        let word = (1u32 << 31) | opcode;
        w.u32(word);
        w.varint(ty_idx);
        let exc_flag = if inst.exceptions_enabled() == exc_default {
            0
        } else if inst.exceptions_enabled() {
            1
        } else {
            2
        };
        w.u8(exc_flag);
        w.varint(ops.len() as u64);
        for o in &ops {
            w.varint(*o);
        }
        w.varint(blocks.len() as u64);
        for b in &blocks {
            w.varint(*b);
        }
    }
}

// -------------------------------------------------------------- reading --

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(DecodeError {
            offset: self.pos,
            message: message.into(),
        })
    }
    fn u8(&mut self) -> Result<u8> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| DecodeError {
                offset: self.pos,
                message: "unexpected end of file".into(),
            })?;
        self.pos += 1;
        Ok(b)
    }
    fn u32(&mut self) -> Result<u32> {
        if self.pos + 4 > self.buf.len() {
            return self.err("unexpected end of file");
        }
        let v = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().expect("4 bytes"));
        self.pos += 4;
        Ok(v)
    }
    fn varint(&mut self) -> Result<u64> {
        let mut v = 0u64;
        let mut shift = 0;
        loop {
            let b = self.u8()?;
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift >= 64 {
                return self.err("varint too long");
            }
        }
    }
    fn str(&mut self) -> Result<String> {
        let bytes = self.bytes()?;
        String::from_utf8(bytes).map_err(|_| DecodeError {
            offset: self.pos,
            message: "invalid utf-8 string".into(),
        })
    }
    /// Reads an item count, bounded by the remaining input. Every
    /// counted item occupies at least one byte, so a larger count is
    /// malformed; rejecting it before any `Vec::with_capacity` keeps a
    /// hostile length prefix from becoming an allocation bomb (an
    /// allocation failure aborts — it cannot be caught downstream).
    fn count(&mut self, what: &str) -> Result<usize> {
        let n = self.varint()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n > remaining {
            return self.err(format!("{what} count {n} exceeds {remaining} remaining bytes"));
        }
        Ok(n as usize)
    }
    /// Reads a table index, rejecting values a 32-bit id cannot hold
    /// (the id constructors panic on overflow; untrusted input must
    /// surface a `DecodeError` instead).
    fn index(&mut self, what: &str) -> Result<usize> {
        let n = self.varint()?;
        if n >= u64::from(u32::MAX) {
            return self.err(format!("{what} index {n} out of range"));
        }
        Ok(n as usize)
    }
    fn bytes(&mut self) -> Result<Vec<u8>> {
        // compare against remaining (not pos + len) so a huge length
        // prefix can neither overflow the addition nor drive an
        // oversized allocation
        let len = self.varint()?;
        if len > (self.buf.len() - self.pos) as u64 {
            return self.err("unexpected end of file in bytes");
        }
        let len = len as usize;
        let v = self.buf[self.pos..self.pos + len].to_vec();
        self.pos += len;
        Ok(v)
    }
}

/// Decodes virtual object code back into a [`Module`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on malformed input. Decoding a module
/// produced by [`encode_module`] always succeeds.
pub fn decode_module(bytes: &[u8]) -> Result<Module> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if bytes.len() < 7 || &bytes[0..4] != MAGIC {
        return r.err("bad magic");
    }
    r.pos = 4;
    let version = r.u8()?;
    if version != VERSION {
        return r.err(format!("unsupported version {version}"));
    }
    let psize = match r.u8()? {
        32 => PointerSize::Bits32,
        64 => PointerSize::Bits64,
        other => return r.err(format!("bad pointer size {other}")),
    };
    let endian = match r.u8()? {
        0 => Endianness::Little,
        1 => Endianness::Big,
        other => return r.err(format!("bad endianness {other}")),
    };
    let mut module = Module::new(
        "decoded",
        TargetConfig {
            pointer_size: psize,
            endianness: endian,
        },
    );

    decode_types(&mut module, &mut r)?;
    decode_globals(&mut module, &mut r)?;
    decode_functions(&mut module, &mut r)?;
    Ok(module)
}

fn decode_types(module: &mut Module, r: &mut Reader<'_>) -> Result<()> {
    let count = r.count("type")?;
    for i in 0..count {
        let tag = r.u8()?;
        let tt = module.types_mut();
        let id = match tag {
            0 => tt.void(),
            1 => tt.bool(),
            2 => tt.ubyte(),
            3 => tt.sbyte(),
            4 => tt.ushort(),
            5 => tt.short(),
            6 => tt.uint(),
            7 => tt.int(),
            8 => tt.ulong(),
            9 => tt.long(),
            10 => tt.float(),
            11 => tt.double(),
            12 => tt.label(),
            13 => {
                let p = TypeId::from_index(r.index("pointee type")?);
                module.types_mut().pointer_to(p)
            }
            14 => {
                let elem = TypeId::from_index(r.index("element type")?);
                let len = r.varint()?;
                module.types_mut().array_of(elem, len)
            }
            15 => {
                let n = r.count("struct field")?;
                let mut fields = Vec::with_capacity(n);
                for _ in 0..n {
                    fields.push(TypeId::from_index(r.index("field type")?));
                }
                module.types_mut().literal_struct(fields)
            }
            16 => {
                let name = r.str()?;
                module.types_mut().named_struct(&name)
            }
            17 => {
                let ret = TypeId::from_index(r.index("return type")?);
                let n = r.count("parameter")?;
                let mut params = Vec::with_capacity(n);
                for _ in 0..n {
                    params.push(TypeId::from_index(r.index("parameter type")?));
                }
                let varargs = r.u8()? != 0;
                module.types_mut().function(ret, params, varargs)
            }
            other => return r.err(format!("bad type tag {other}")),
        };
        if id.index() != i {
            return r.err(format!(
                "type table order mismatch: expected {i}, got {}",
                id.index()
            ));
        }
    }
    // struct bodies
    let ndefs = r.count("struct def")?;
    for _ in 0..ndefs {
        let name = r.str()?;
        let has_body = r.u8()? != 0;
        if has_body {
            let n = r.count("struct body field")?;
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                fields.push(TypeId::from_index(r.index("body field type")?));
            }
            module.types_mut().set_struct_body(&name, fields);
        } else {
            module.types_mut().named_struct(&name);
        }
    }
    Ok(())
}

fn decode_constant(r: &mut Reader<'_>) -> Result<Constant> {
    Ok(match r.u8()? {
        0 => Constant::Bool(r.u8()? != 0),
        1 => Constant::Int {
            ty: TypeId::from_index(r.index("constant type")?),
            bits: r.varint()?,
        },
        2 => Constant::Float {
            ty: TypeId::from_index(r.index("constant type")?),
            bits: r.varint()?,
        },
        3 => Constant::Null(TypeId::from_index(r.index("constant type")?)),
        4 => Constant::GlobalAddr {
            global: GlobalId::from_index(r.index("global")?),
            ty: TypeId::from_index(r.index("constant type")?),
        },
        5 => Constant::FunctionAddr {
            func: FuncId::from_index(r.index("function")?),
            ty: TypeId::from_index(r.index("constant type")?),
        },
        6 => Constant::Undef(TypeId::from_index(r.index("constant type")?)),
        other => return r.err(format!("bad constant tag {other}")),
    })
}

fn decode_initializer(r: &mut Reader<'_>) -> Result<Initializer> {
    Ok(match r.u8()? {
        0 => Initializer::Zero,
        1 => Initializer::Scalar(decode_constant(r)?),
        2 => {
            let n = r.count("array initializer item")?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(decode_initializer(r)?);
            }
            Initializer::Array(items)
        }
        3 => {
            let n = r.count("struct initializer item")?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(decode_initializer(r)?);
            }
            Initializer::Struct(items)
        }
        4 => Initializer::Bytes(r.bytes()?),
        other => return r.err(format!("bad initializer tag {other}")),
    })
}

fn decode_globals(module: &mut Module, r: &mut Reader<'_>) -> Result<()> {
    let count = r.count("global")?;
    for _ in 0..count {
        let name = r.str()?;
        let ty = TypeId::from_index(r.index("global type")?);
        let flags = r.u8()?;
        let init = decode_initializer(r)?;
        if module.global_by_name(&name).is_some() {
            return r.err(format!("duplicate global {name}"));
        }
        let g = module.add_global(&name, ty, init, flags & 1 != 0);
        if flags & 2 != 0 {
            module.global_mut(g).set_linkage(Linkage::Internal);
        }
    }
    Ok(())
}

fn decode_functions(module: &mut Module, r: &mut Reader<'_>) -> Result<()> {
    let count = r.count("function")?;
    for _ in 0..count {
        let name = r.str()?;
        let ret = TypeId::from_index(r.index("return type")?);
        let nparams = r.count("parameter")?;
        let mut params = Vec::with_capacity(nparams);
        for _ in 0..nparams {
            params.push(TypeId::from_index(r.index("parameter type")?));
        }
        let internal = r.u8()? != 0;
        if module.function_by_name(&name).is_some() {
            return r.err(format!("duplicate function {name}"));
        }
        let f = module.add_function(&name, ret, params);
        if internal {
            module.function_mut(f).set_linkage(Linkage::Internal);
        }
        let has_body = r.u8()? != 0;
        if has_body {
            decode_body(module, f, r)?;
        }
    }
    Ok(())
}

struct RawInst {
    opcode: Opcode,
    ty: TypeId,
    exc_flag: u8,
    ops: Vec<u64>,
    blocks: Vec<u64>,
}

fn decode_body(module: &mut Module, f: FuncId, r: &mut Reader<'_>) -> Result<()> {
    let void = module.types_mut().void();
    let nconsts = r.count("constant")?;
    let mut value_by_number: Vec<ValueId> = module.function(f).args().to_vec();
    for _ in 0..nconsts {
        let c = decode_constant(r)?;
        let v = module.function_mut(f).constant(c);
        value_by_number.push(v);
    }
    let nblocks = r.count("block")?;
    let mut blocks = Vec::with_capacity(nblocks);
    let mut raw: Vec<(usize, RawInst)> = Vec::new();
    for bi in 0..nblocks {
        let b = module.function_mut(f).add_block(format!("b{bi}"));
        blocks.push(b);
        let ninsts = r.count("instruction")?;
        for _ in 0..ninsts {
            raw.push((bi, decode_raw_inst(r)?));
        }
    }
    // Pass A: create instructions, collect result values.
    let mut inst_ids = Vec::with_capacity(raw.len());
    for (bi, ri) in &raw {
        let mut inst = Instruction::new(ri.opcode, ri.ty, vec![], vec![]);
        match ri.exc_flag {
            0 => {}
            1 => inst.set_exceptions_enabled(true),
            2 => inst.set_exceptions_enabled(false),
            other => return r.err(format!("bad exceptions flag {other}")),
        }
        let (iid, result) = module
            .function_mut(f)
            .append_inst(blocks[*bi], inst, void);
        if let Some(rv) = result {
            value_by_number.push(rv);
        }
        inst_ids.push(iid);
    }
    // Pass B: patch operands.
    for (iid, (_, ri)) in inst_ids.iter().zip(&raw) {
        let mut operands = Vec::with_capacity(ri.ops.len());
        for &n in &ri.ops {
            let v = *value_by_number.get(n as usize).ok_or_else(|| DecodeError {
                offset: r.pos,
                message: format!("value number {n} out of range"),
            })?;
            operands.push(v);
        }
        let mut bops = Vec::with_capacity(ri.blocks.len());
        for &n in &ri.blocks {
            let b = *blocks.get(n as usize).ok_or_else(|| DecodeError {
                offset: r.pos,
                message: format!("block number {n} out of range"),
            })?;
            bops.push(b);
        }
        let func = module.function_mut(f);
        func.inst_mut(*iid).set_operands(operands);
        func.inst_mut(*iid).set_block_operands(bops);
    }
    Ok(())
}

fn decode_raw_inst(r: &mut Reader<'_>) -> Result<RawInst> {
    let word = r.u32()?;
    if word >> 31 == 0 {
        // small format
        let opcode = Opcode::from_encoding((word & 0x1F) as u8)
            .ok_or_else(|| DecodeError {
                offset: r.pos,
                message: format!("bad opcode {}", word & 0x1F),
            })?;
        let ty = TypeId::from_index(((word >> 5) & 0xFF) as usize);
        let op1 = (word >> 13) & 0x1FF;
        let op2 = (word >> 22) & 0x1FF;
        let mut ops = Vec::new();
        if op1 != SMALL_UNUSED {
            ops.push(u64::from(op1));
        }
        if op2 != SMALL_UNUSED {
            ops.push(u64::from(op2));
        }
        Ok(RawInst {
            opcode,
            ty,
            exc_flag: 0,
            ops,
            blocks: Vec::new(),
        })
    } else {
        let opcode = Opcode::from_encoding((word & 0x1F) as u8)
            .ok_or_else(|| DecodeError {
                offset: r.pos,
                message: format!("bad opcode {}", word & 0x1F),
            })?;
        let ty = TypeId::from_index(r.index("result type")?);
        let exc_flag = r.u8()?;
        let nops = r.count("operand")?;
        let mut ops = Vec::with_capacity(nops);
        for _ in 0..nops {
            ops.push(r.varint()?);
        }
        let nblocks = r.count("block operand")?;
        let mut blocks = Vec::with_capacity(nblocks);
        for _ in 0..nblocks {
            blocks.push(r.varint()?);
        }
        Ok(RawInst {
            opcode,
            ty,
            exc_flag,
            ops,
            blocks,
        })
    }
}

/// Statistics about an encoded module, used by the Table 2 harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EncodingStats {
    /// Total size of the object code in bytes.
    pub total_bytes: usize,
    /// Number of instructions encoded in the fixed 32-bit small format.
    pub small_insts: usize,
    /// Number of instructions that needed the self-extending format.
    pub extended_insts: usize,
}

/// Encodes `module` and reports size/format statistics.
pub fn encoding_stats(module: &Module) -> EncodingStats {
    let bytes = encode_module(module);
    let mut small = 0usize;
    let mut extended = 0usize;
    for (_, f) in module.functions() {
        if f.is_declaration() {
            continue;
        }
        let numbering = number_function(f);
        let order = f.block_order();
        let block_index: HashMap<_, _> = order.iter().enumerate().map(|(i, &b)| (b, i)).collect();
        for &b in order {
            for &i in f.block(b).insts() {
                let mut w = Writer::default();
                encode_inst(f, i, &numbering, &block_index, &mut w);
                if w.buf.len() == 4 && w.buf[3] & 0x80 == 0 {
                    small += 1;
                } else {
                    extended += 1;
                }
            }
        }
    }
    EncodingStats {
        total_bytes: bytes.len(),
        small_insts: small,
        extended_insts: extended,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::printer::print_module;
    use crate::verifier::verify_module;

    fn fib_module() -> Module {
        crate::parser::parse_module(
            r#"
int %fib(int %n) {
entry:
    %c = setlt int %n, 2
    br bool %c, label %base, label %rec
base:
    ret int %n
rec:
    %n1 = sub int %n, 1
    %a = call int %fib(int %n1)
    %n2 = sub int %n, 2
    %b = call int %fib(int %n2)
    %s = add int %a, %b
    ret int %s
}
"#,
        )
        .expect("parses")
    }

    #[test]
    fn round_trip_preserves_structure() {
        let m1 = fib_module();
        let bytes = encode_module(&m1);
        let m2 = decode_module(&bytes).expect("decodes");
        verify_module(&m2).expect("verifies");
        let f1 = m1.function(m1.function_by_name("fib").expect("fib"));
        let f2 = m2.function(m2.function_by_name("fib").expect("fib"));
        assert_eq!(f1.num_insts(), f2.num_insts());
        assert_eq!(f1.num_blocks(), f2.num_blocks());
        // re-encoding the decoded module is a fixpoint
        let bytes2 = encode_module(&m2);
        assert_eq!(bytes, bytes2);
    }

    #[test]
    fn round_trip_preserves_semantic_text() {
        // Text after decode differs only in local names, which we drop.
        let m1 = fib_module();
        let m2 = decode_module(&encode_module(&m1)).expect("decodes");
        // Count mnemonics in both printed forms — structure identical.
        let count = |text: &str, pat: &str| text.matches(pat).count();
        let t1 = print_module(&m1);
        let t2 = print_module(&m2);
        for pat in ["add", "sub", "call", "setlt", "br", "ret"] {
            assert_eq!(count(&t1, pat), count(&t2, pat), "{pat}");
        }
    }

    #[test]
    fn small_format_dominates_simple_code() {
        let m = fib_module();
        let stats = encoding_stats(&m);
        assert!(stats.small_insts > 0);
        // calls carry a callee + arg and still fit small format (2 ops)
        assert!(
            stats.small_insts >= stats.extended_insts,
            "expected mostly small instructions: {stats:?}"
        );
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        assert!(decode_module(b"NOPE").is_err());
        let m = fib_module();
        let bytes = encode_module(&m);
        assert!(decode_module(&bytes[..bytes.len() - 3]).is_err());
        let mut corrupt = bytes.clone();
        corrupt[4] = 99; // version
        assert!(decode_module(&corrupt).is_err());
    }

    #[test]
    fn globals_and_targets_round_trip() {
        let mut m = Module::new("g", TargetConfig::ia32());
        let int = m.types_mut().int();
        let arr = m.types_mut().array_of(int, 3);
        m.add_global(
            "table",
            arr,
            Initializer::Array(vec![
                Initializer::Scalar(Constant::Int { ty: int, bits: 1 }),
                Initializer::Scalar(Constant::Int { ty: int, bits: 2 }),
                Initializer::Scalar(Constant::Int { ty: int, bits: 3 }),
            ]),
            true,
        );
        let bytes = encode_module(&m);
        let m2 = decode_module(&bytes).expect("decodes");
        assert_eq!(m2.target(), TargetConfig::ia32());
        let g = m2.global_by_name("table").expect("table");
        assert!(m2.global(g).is_const());
        assert!(matches!(m2.global(g).init(), Initializer::Array(v) if v.len() == 3));
    }

    #[test]
    fn exceptions_override_round_trips() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let f = m.add_function("f", int, vec![int, int]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let (x, y) = (b.func().args()[0], b.func().args()[1]);
        let d = b.div(x, y);
        b.ret(Some(d));
        let div_inst = m.function(f).block(e).insts()[0];
        m.function_mut(f)
            .inst_mut(div_inst)
            .set_exceptions_enabled(false);
        let m2 = decode_module(&encode_module(&m)).expect("decodes");
        let f2 = m2.function_by_name("f").expect("f");
        let e2 = m2.function(f2).entry_block();
        let d2 = m2.function(f2).block(e2).insts()[0];
        assert!(!m2.function(f2).inst(d2).exceptions_enabled());
    }

    #[test]
    fn named_struct_round_trips() {
        let src = r#"
%QT = type { double, [4 x %QT*] }

void %touch(%QT* %p) {
entry:
    %f = getelementptr %QT* %p, long 0, ubyte 0
    %v = load double* %f
    store double %v, double* %f
    ret void
}
"#;
        let m1 = crate::parser::parse_module(src).expect("parses");
        let m2 = decode_module(&encode_module(&m1)).expect("decodes");
        verify_module(&m2).expect("verifies");
        let sid = m2.types().struct_by_name("QT").expect("QT");
        assert!(m2.types().struct_def(sid).body().is_some());
    }
}
