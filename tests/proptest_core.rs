//! Property-based tests over randomly generated LLVA programs.
//!
//! The programs come from the conformance harness's seeded generator
//! (`llva::conform::gen`) — well-typed modules with real control flow
//! (branches, loops, phis, `mbr`), memory traffic through `alloca` and
//! globals, and multi-function call graphs, all verifying by
//! construction. Properties assert that every representation change
//! (bytecode, assembly) and every optimization preserves the
//! interpreter's semantics, and that both simulated processors agree
//! with the interpreter — each property is one oracle stage from
//! `llva::conform::oracle`, so a failure here is replayable as
//! `llva-conform --seeds N..N+1`.
//!
//! The build environment has no crates.io access, so instead of the
//! proptest crate these properties are driven by the harness's small
//! deterministic xorshift generator: every run explores the same case
//! set, and a failing case is reproducible from the printed seed.

use llva::conform::gen::{generate, GenConfig};
use llva::conform::oracle::Oracle;
use llva::conform::rng::Rng;
use llva::core::module::Module;
use llva::engine::Interpreter;

const CASES: u64 = 48;

fn interp(m: &Module, entry: &str, args: &[u64]) -> u64 {
    let mut i = Interpreter::new(m);
    i.set_fuel(50_000_000);
    i.run(entry, args).expect("generated programs are total")
}

/// One oracle stage must agree with the baseline interpreter over a
/// seed sweep.
fn stage_agrees(stage: &str, seeds: std::ops::Range<u64>) {
    let cfg = GenConfig::default();
    let oracle = Oracle::new();
    for seed in seeds {
        let tc = generate(seed, &cfg);
        let baseline = oracle
            .run_stage("interp", &tc.module, &tc.entry, &tc.args)
            .expect("interp is a known stage");
        let got = oracle
            .run_stage(stage, &tc.module, &tc.entry, &tc.args)
            .unwrap_or_else(|| panic!("unknown stage '{stage}'"));
        assert_eq!(
            got, baseline,
            "seed {seed}: stage '{stage}' diverged (replay: llva-conform --seeds {seed}..{})",
            seed + 1
        );
    }
}

#[test]
fn generated_modules_verify() {
    let cfg = GenConfig::default();
    for seed in 0..CASES {
        let tc = generate(seed, &cfg);
        llva::core::verifier::verify_module(&tc.module)
            .unwrap_or_else(|e| panic!("seed {seed}: generated module fails to verify: {e:?}"));
    }
}

#[test]
fn bytecode_round_trip_preserves_semantics() {
    stage_agrees("bytecode", 0..CASES);
}

#[test]
fn assembly_round_trip_preserves_semantics() {
    stage_agrees("print-parse", 0..CASES);
}

#[test]
fn optimizer_preserves_semantics() {
    // like the oracle's opt:standard stage, but with the pass manager's
    // verify-after-each-pass mode on, so a pass that emits a malformed
    // module is caught at the offending pass rather than downstream
    let cfg = GenConfig::default();
    for seed in 0..CASES {
        let tc = generate(seed, &cfg);
        let expected = interp(&tc.module, &tc.entry, &tc.args);
        let mut m = tc.module.clone();
        let mut pm = llva::opt::standard_pipeline();
        pm.verify_after_each(true);
        pm.run(&mut m);
        assert_eq!(interp(&m, &tc.entry, &tc.args), expected, "seed {seed}");
    }
}

#[test]
fn both_processors_agree_with_interpreter() {
    stage_agrees("x86", 0..24);
    stage_agrees("sparc", 0..24);
}

#[test]
fn both_processors_agree_on_optimized_modules() {
    stage_agrees("x86:opt", 24..40);
    stage_agrees("sparc:opt", 24..40);
}

#[test]
fn constant_folding_agrees_with_runtime() {
    let cfg = GenConfig::default();
    for seed in 0..CASES {
        let tc = generate(seed, &cfg);
        let expected = interp(&tc.module, &tc.entry, &tc.args);
        let mut folded = tc.module.clone();
        let mut pm = llva::opt::PassManager::new();
        pm.add(llva::opt::constfold::ConstFold::new())
            .add(llva::opt::dce::Dce::new())
            .verify_after_each(true);
        pm.run_to_fixpoint(&mut folded, 8);
        assert_eq!(interp(&folded, &tc.entry, &tc.args), expected, "seed {seed}");
    }
}

#[test]
fn eval_matches_interpreter_for_binaries() {
    use llva::core::builder::FunctionBuilder;
    use llva::core::instruction::Opcode;
    use llva::core::layout::TargetConfig;
    let ops = [
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mul,
        Opcode::Div,
        Opcode::Rem,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Shl,
        Opcode::Shr,
    ];
    for seed in 0..CASES * 4 {
        let mut rng = Rng::new(0xE7A1_0000 + seed);
        // mix full-range and small operands so div/rem edge cases and
        // ordinary arithmetic are both exercised
        let a = if seed % 3 == 0 {
            rng.next_u64() as i64
        } else {
            rng.range(-1000, 1000)
        };
        let b = match seed % 5 {
            0 => 0,
            1 => -1,
            _ => rng.next_u64() as i64,
        };
        let op = ops[rng.index(ops.len())];
        let mut m = Module::new("e", TargetConfig::default());
        let long = m.types_mut().long();
        let f = m.add_function("f", long, vec![long, long]);
        let mut bb = FunctionBuilder::new(&mut m, f);
        let entry = bb.block("entry");
        bb.switch_to(entry);
        let (x, y) = (bb.func().args()[0], bb.func().args()[1]);
        let r = match op {
            Opcode::Add => bb.add(x, y),
            Opcode::Sub => bb.sub(x, y),
            Opcode::Mul => bb.mul(x, y),
            Opcode::Div => bb.div(x, y),
            Opcode::Rem => bb.rem(x, y),
            Opcode::And => bb.and(x, y),
            Opcode::Or => bb.or(x, y),
            Opcode::Xor => bb.xor(x, y),
            Opcode::Shl => bb.shl(x, y),
            _ => bb.shr(x, y),
        };
        bb.ret(Some(r));

        let ca = llva::core::value::Constant::Int {
            ty: long,
            bits: a as u64,
        };
        let cb = llva::core::value::Constant::Int {
            ty: long,
            bits: b as u64,
        };
        let folded = llva::core::eval::fold_binary(m.types(), op, &ca, &cb);
        let mut i = Interpreter::new(&m);
        i.set_fuel(1000);
        let run = i.run("f", &[a as u64, b as u64]);
        match folded {
            Some(c) => {
                // the interpreter must agree with compile-time folding
                assert_eq!(
                    run.expect("no trap when folding succeeded"),
                    c.as_int_bits().unwrap(),
                    "seed {seed}"
                );
            }
            None => {
                // fold refuses for division by zero and for
                // i64::MIN / -1 overflow (where the runtime wraps but
                // folding conservatively declines)
                assert!(matches!(op, Opcode::Div | Opcode::Rem), "seed {seed}");
                if b == 0 {
                    // §3.3: exceptions are on by default for div (must
                    // trap), but off for rem — rem-by-zero is defined
                    // as 0 rather than trapping
                    match op {
                        Opcode::Div => assert!(run.is_err(), "seed {seed}"),
                        _ => assert_eq!(
                            run.expect("rem-by-zero with exceptions off"),
                            0,
                            "seed {seed}"
                        ),
                    }
                }
            }
        }
    }
}

#[test]
fn dominator_properties() {
    use llva::core::dominators::DomTree;
    let cfg = GenConfig::default();
    for seed in 0..CASES {
        let m = generate(seed, &cfg).module;
        for (_, func) in m.functions() {
            if func.is_declaration() {
                continue;
            }
            let dom = DomTree::compute(func);
            let entry = func.entry_block();
            for &b in dom.reverse_postorder() {
                // the entry dominates every reachable block
                assert!(dom.dominates(entry, b), "seed {seed}");
                // the immediate dominator strictly dominates its child
                if let Some(idom) = dom.idom(b) {
                    assert!(dom.strictly_dominates(idom, b), "seed {seed}");
                } else {
                    assert_eq!(b, entry, "seed {seed}");
                }
                // no block strictly dominates itself
                assert!(!dom.strictly_dominates(b, b), "seed {seed}");
            }
        }
    }
}

#[test]
fn encoding_stats_are_consistent() {
    let cfg = GenConfig::default();
    for seed in 0..CASES {
        let m = generate(seed, &cfg).module;
        let stats = llva::core::bytecode::encoding_stats(&m);
        assert_eq!(
            stats.small_insts + stats.extended_insts,
            m.total_insts(),
            "seed {seed}"
        );
        assert!(stats.total_bytes > 0, "seed {seed}");
    }
}
