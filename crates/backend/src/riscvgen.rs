//! The RV64 code generator — the third LLEE target.
//!
//! Same use-count register assignment discipline as the SPARC back end
//! (hot SSA values live in the 12 callee-saved registers
//! `s1`/`s2`–`s11`), but shaped by the RISC-V model: **no condition
//! codes**. Comparisons that feed a branch fuse directly into
//! compare-and-branch instructions (`beq`/`blt`/…); comparisons whose
//! boolean is consumed as a value materialize it with
//! `slt`/`sltu`/`xor`+`sltiu` sequences, and float comparisons write
//! 0/1 through `feq`/`flt`/`fle`. Constants beyond 12 bits need
//! `lui`/`addi` pairs (one bit tighter than SPARC's 13-bit fields), and
//! loads/stores carry immediate-only offsets, so wide frame offsets
//! route through an address add.
//!
//! Frame discipline mirrors the SPARC back end: `s0`/`fp` holds the
//! caller's stack pointer; spill slots, phi staging slots, preallocated
//! `alloca`s and the saved registers live at negative `fp` offsets;
//! outgoing argument overflow lives at `[sp + 8j]`; incoming overflow
//! at `[fp + 8*(i-8)]` (eight register arguments `a0`–`a7`).

use crate::common::{
    access_of, canonical_const, classify, fused_compares, inst_defining, intrinsic_target,
    peephole, use_counts, PeepholeConfig, ValClass,
};
use llva_core::function::{BlockId, Function};
use llva_core::instruction::{InstId, Opcode};
use llva_core::module::{FuncId, Module};
use llva_core::types::{TypeId, TypeKind};
use llva_core::value::{Constant, ValueId};
use llva_machine::common::Sym;
use llva_machine::riscv::{
    fits_imm12, AluOp, BrCond, FReg, FSetOp, Reg, RegOrImm, RiscvInst, A0, FP, SP, T0, T1, T2, X0,
};
use std::collections::{HashMap, HashSet};

/// Address-materialization scratch `x28`/`t3`.
const T3: Reg = Reg(28);
/// Constant-materialization scratch `x29`/`t4` (internal to `mat_const`).
const T4: Reg = Reg(29);

/// Compiles one function to RV64 code. The module must verify.
pub fn compile_riscv(module: &Module, fid: FuncId) -> Vec<RiscvInst> {
    compile_riscv_with(module, fid, &PeepholeConfig::from_env())
}

/// [`compile_riscv`] with an explicit peephole configuration (used by
/// the conformance oracle's off-vs-on stages and perf-smoke deltas).
pub fn compile_riscv_with(
    module: &Module,
    fid: FuncId,
    peep: &PeepholeConfig,
) -> Vec<RiscvInst> {
    let func = module.function(fid);
    assert!(!func.is_declaration(), "cannot compile a declaration");
    let mut cg = CodeGen::new(module, func);
    cg.run();
    peephole::run_riscv(cg.finish(), peep)
}

/// Allocatable callee-saved registers: `s1` (`x9`), `s2`–`s11`
/// (`x18`–`x27`). `s0` is the frame pointer.
const ALLOCATABLE: [Reg; 11] = [
    Reg(9),
    Reg(18),
    Reg(19),
    Reg(20),
    Reg(21),
    Reg(22),
    Reg(23),
    Reg(24),
    Reg(25),
    Reg(26),
    Reg(27),
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    Reg(Reg),
    Slot(i32), // negative offset from fp
}

struct CodeGen<'a> {
    module: &'a Module,
    func: &'a Function,
    code: Vec<RiscvInst>,
    locs: HashMap<ValueId, Loc>,
    staging: HashMap<InstId, i32>,
    alloca_home: HashMap<InstId, i32>,
    save_slots: HashMap<Reg, i32>,
    frame_size: i32,
    used_saved: Vec<Reg>,
    fused: HashSet<InstId>,
    block_starts: HashMap<BlockId, u32>,
    fixups: Vec<(usize, BlockId)>,
    bool_ty: TypeId,
    out_area: i32,
}

impl<'a> CodeGen<'a> {
    fn new(module: &'a Module, func: &'a Function) -> CodeGen<'a> {
        let bool_ty = module
            .types()
            .iter()
            .find_map(|(id, k)| matches!(k, TypeKind::Bool).then_some(id))
            .unwrap_or_else(|| TypeId::from_index((u32::MAX - 1) as usize));
        let mut cg = CodeGen {
            module,
            func,
            code: Vec::new(),
            locs: HashMap::new(),
            staging: HashMap::new(),
            alloca_home: HashMap::new(),
            save_slots: HashMap::new(),
            // fp-8 = saved old fp; saved regs and slots grow below
            frame_size: 8,
            used_saved: Vec::new(),
            fused: fused_compares(func),
            block_starts: HashMap::new(),
            fixups: Vec::new(),
            bool_ty,
            out_area: 0,
        };
        cg.assign_locations();
        cg
    }

    fn new_slot(&mut self) -> i32 {
        self.frame_size += 8;
        -self.frame_size
    }

    fn assign_locations(&mut self) {
        let counts = use_counts(self.func);
        // candidates: int-class args + int-class instruction results
        let mut candidates: Vec<(usize, ValueId)> = Vec::new();
        for &a in self.func.args() {
            if classify(self.module, self.func.value_type(a, self.bool_ty)) == ValClass::Int {
                candidates.push((counts.get(&a).copied().unwrap_or(0) + 1, a));
            }
        }
        for (_, inst_id) in self.func.inst_iter() {
            if let Some(r) = self.func.inst_result(inst_id) {
                if classify(self.module, self.func.value_type(r, self.bool_ty)) == ValClass::Int {
                    candidates.push((counts.get(&r).copied().unwrap_or(0), r));
                }
            }
        }
        candidates.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for ((_, v), &reg) in candidates.iter().zip(ALLOCATABLE.iter()) {
            self.locs.insert(*v, Loc::Reg(reg));
            if !self.used_saved.contains(&reg) {
                self.used_saved.push(reg);
                let slot = self.new_slot();
                self.save_slots.insert(reg, slot);
            }
        }
        // everything else gets a slot
        for a in self.func.args().to_vec() {
            if !self.locs.contains_key(&a) {
                let s = self.new_slot();
                self.locs.insert(a, Loc::Slot(s));
            }
        }
        for (_, inst_id) in self.func.inst_iter().collect::<Vec<_>>() {
            if let Some(r) = self.func.inst_result(inst_id) {
                if !self.locs.contains_key(&r) {
                    let s = self.new_slot();
                    self.locs.insert(r, Loc::Slot(s));
                }
            }
            let inst = self.func.inst(inst_id);
            if inst.opcode() == Opcode::Phi {
                let s = self.new_slot();
                self.staging.insert(inst_id, s);
            }
            if inst.opcode() == Opcode::Alloca && inst.operands().is_empty() {
                let pointee = self
                    .module
                    .types()
                    .pointee(inst.result_type())
                    .expect("alloca yields a pointer");
                let size = self.module.target().size_of(self.module.types(), pointee);
                let size = ((size + 7) & !7) as i32;
                self.frame_size += size;
                self.alloca_home.insert(inst_id, -self.frame_size);
            }
            if matches!(inst.opcode(), Opcode::Call | Opcode::Invoke) {
                let extra = inst.operands().len().saturating_sub(1).saturating_sub(8) as i32;
                self.out_area = self.out_area.max(extra * 8);
            }
        }
    }

    fn finish(self) -> Vec<RiscvInst> {
        self.code
    }

    fn vty(&self, v: ValueId) -> TypeId {
        self.func.value_type(v, self.bool_ty)
    }

    fn emit(&mut self, inst: RiscvInst) {
        self.code.push(inst);
    }

    fn mov(&mut self, dst: Reg, src: Reg) {
        if dst != src {
            self.emit(RiscvInst::Alu {
                op: AluOp::Add,
                rs1: src,
                rhs: RegOrImm::Imm(0),
                rd: dst,
                trapping: false,
            });
        }
    }

    /// Materializes the low 32 bits of `w` into `dst` (`lui`+`addi`;
    /// the upper 32 bits of the register may hold sign-extension
    /// garbage — callers mask or shift it away).
    fn mat_low32(&mut self, w: u32, dst: Reg) {
        let sv = w as i32 as i64;
        if fits_imm12(sv) {
            self.emit(RiscvInst::Alu {
                op: AluOp::Add,
                rs1: X0,
                rhs: RegOrImm::Imm(sv as i16),
                rd: dst,
                trapping: false,
            });
            return;
        }
        let hi20 = (w.wrapping_add(0x800) >> 12) & 0xF_FFFF;
        let lo12 = ((w & 0xFFF) as i32) << 20 >> 20; // sign-extend 12 bits
        self.emit(RiscvInst::Lui { imm20: hi20, rd: dst });
        if lo12 != 0 {
            self.emit(RiscvInst::Alu {
                op: AluOp::Add,
                rs1: dst,
                rhs: RegOrImm::Imm(lo12 as i16),
                rd: dst,
                trapping: false,
            });
        }
    }

    /// Materializes an integer constant into `dst` (clobbers `t4` for
    /// full 64-bit constants).
    fn mat_const(&mut self, bits: u64, dst: Reg) {
        let v = bits as i64;
        if v == 0 {
            self.mov(dst, X0);
            return;
        }
        if fits_imm12(v) {
            self.emit(RiscvInst::Alu {
                op: AluOp::Add,
                rs1: X0,
                rhs: RegOrImm::Imm(v as i16),
                rd: dst,
                trapping: false,
            });
            return;
        }
        if v == (v as i32) as i64 {
            // standard li expansion; the +0x800 rounding keeps lo12 in
            // range except at the very top of the i32 range, which
            // falls through to the general path
            let hi20 = (((v + 0x800) >> 12) & 0xF_FFFF) as u32;
            let base = i64::from((hi20 << 12) as i32);
            let lo = v - base;
            if fits_imm12(lo) {
                self.emit(RiscvInst::Lui { imm20: hi20, rd: dst });
                if lo != 0 {
                    self.emit(RiscvInst::Alu {
                        op: AluOp::Add,
                        rs1: dst,
                        rhs: RegOrImm::Imm(lo as i16),
                        rd: dst,
                        trapping: false,
                    });
                }
                return;
            }
        }
        // general 64-bit: high half shifted up, low half masked in
        let low32 = (bits & 0xFFFF_FFFF) as u32;
        let high32 = (bits >> 32) as u32;
        self.mat_low32(high32, dst);
        self.emit(RiscvInst::Alu {
            op: AluOp::Sll,
            rs1: dst,
            rhs: RegOrImm::Imm(32),
            rd: dst,
            trapping: false,
        });
        if low32 != 0 {
            self.mat_low32(low32, T4);
            self.emit(RiscvInst::Alu {
                op: AluOp::Sll,
                rs1: T4,
                rhs: RegOrImm::Imm(32),
                rd: T4,
                trapping: false,
            });
            self.emit(RiscvInst::Alu {
                op: AluOp::Srl,
                rs1: T4,
                rhs: RegOrImm::Imm(32),
                rd: T4,
                trapping: false,
            });
            self.emit(RiscvInst::Alu {
                op: AluOp::Or,
                rs1: dst,
                rhs: RegOrImm::Reg(T4),
                rd: dst,
                trapping: false,
            });
        }
    }

    /// A (base, offset) pair addressing `fp + off`. Loads and stores
    /// only take 12-bit immediate offsets, so wide offsets compute the
    /// address into `t3` first.
    fn fp_addr(&mut self, off: i32) -> (Reg, i16) {
        if fits_imm12(i64::from(off)) {
            (FP, off as i16)
        } else {
            self.mat_const(off as i64 as u64, T3);
            self.emit(RiscvInst::Alu {
                op: AluOp::Add,
                rs1: FP,
                rhs: RegOrImm::Reg(T3),
                rd: T3,
                trapping: false,
            });
            (T3, 0)
        }
    }

    /// Ensures `v` is in a register, loading/materializing into
    /// `scratch` when needed. Returns the register actually holding it.
    fn reg_of(&mut self, v: ValueId, scratch: Reg) -> Reg {
        if let Some(c) = self.func.value_as_const(v) {
            match c {
                Constant::GlobalAddr { global, .. } => {
                    self.emit(RiscvInst::MovSym {
                        rd: scratch,
                        sym: Sym::Global(global.index() as u32),
                    });
                }
                Constant::FunctionAddr { func, .. } => {
                    self.emit(RiscvInst::MovSym {
                        rd: scratch,
                        sym: Sym::Function(func.index() as u32),
                    });
                }
                _ => {
                    let bits = canonical_const(self.module, c);
                    if bits == 0 {
                        return X0;
                    }
                    self.mat_const(bits, scratch);
                }
            }
            return scratch;
        }
        match self.locs[&v] {
            Loc::Reg(r) => r,
            Loc::Slot(off) => {
                let (base, o) = self.fp_addr(off);
                self.emit(RiscvInst::Ld {
                    rd: scratch,
                    rs1: base,
                    off: o,
                    width: llva_machine::Width::B8,
                    signed: false,
                });
                scratch
            }
        }
    }

    /// The second-operand form: a 12-bit immediate when possible.
    fn rhs_of(&mut self, v: ValueId, scratch: Reg) -> RegOrImm {
        if let Some(c) = self.func.value_as_const(v) {
            if !matches!(
                c,
                Constant::GlobalAddr { .. } | Constant::FunctionAddr { .. }
            ) {
                let bits = canonical_const(self.module, c) as i64;
                if fits_imm12(bits) {
                    return RegOrImm::Imm(bits as i16);
                }
            }
        }
        RegOrImm::Reg(self.reg_of(v, scratch))
    }

    /// Where to compute a result: directly into its home register, or
    /// into `scratch` followed by a store.
    fn dst_of(&mut self, inst: InstId, scratch: Reg) -> (Reg, Option<i32>) {
        let v = self.func.inst_result(inst).expect("has result");
        match self.locs[&v] {
            Loc::Reg(r) => (r, None),
            Loc::Slot(off) => (scratch, Some(off)),
        }
    }

    fn finish_dst(&mut self, reg: Reg, spill: Option<i32>) {
        if let Some(off) = spill {
            let (base, o) = self.fp_addr(off);
            self.emit(RiscvInst::St {
                rs: reg,
                rs1: base,
                off: o,
                width: llva_machine::Width::B8,
            });
        }
    }

    /// Loads a float value into `f`.
    fn freg_of(&mut self, v: ValueId, f: FReg) {
        if let Some(c) = self.func.value_as_const(v) {
            let bits = canonical_const(self.module, c);
            self.mat_const(bits, T0);
            self.emit(RiscvInst::MovFG(f, T0));
            return;
        }
        match self.locs[&v] {
            Loc::Reg(r) => self.emit(RiscvInst::MovFG(f, r)),
            Loc::Slot(off) => {
                let (base, o) = self.fp_addr(off);
                self.emit(RiscvInst::LdF {
                    fd: f,
                    rs1: base,
                    off: o,
                    is32: false,
                });
            }
        }
    }

    fn fstore_result(&mut self, inst: InstId, f: FReg) {
        let v = self.func.inst_result(inst).expect("has result");
        match self.locs[&v] {
            Loc::Reg(r) => self.emit(RiscvInst::MovGF(r, f)),
            Loc::Slot(off) => {
                let (base, o) = self.fp_addr(off);
                self.emit(RiscvInst::StF {
                    fs: f,
                    rs1: base,
                    off: o,
                    is32: false,
                });
            }
        }
    }

    /// Normalizes `r` to the canonical form of a narrow integer type
    /// using a shift pair.
    fn normalize(&mut self, r: Reg, ty: TypeId) {
        let tt = self.module.types();
        if let Some(w) = tt.int_bits(ty) {
            if w < 64 {
                let sh = (64 - w.max(8)) as i16;
                self.emit(RiscvInst::Alu {
                    op: AluOp::Sll,
                    rs1: r,
                    rhs: RegOrImm::Imm(sh),
                    rd: r,
                    trapping: false,
                });
                self.emit(RiscvInst::Alu {
                    op: if tt.is_signed_integer(ty) {
                        AluOp::Sra
                    } else {
                        AluOp::Srl
                    },
                    rs1: r,
                    rhs: RegOrImm::Imm(sh),
                    rd: r,
                    trapping: false,
                });
            }
        }
    }

    fn jump(&mut self, target: BlockId) {
        self.fixups.push((self.code.len(), target));
        self.emit(RiscvInst::J { target: 0 });
    }

    /// Compare-and-branch to `target` — the RISC-V fusion of what SPARC
    /// expresses as `cmp` + `b<cond>`. `rs1`/`rs2` are already ordered
    /// for the branch opcode.
    fn jcc(&mut self, cond: BrCond, rs1: Reg, rs2: Reg, target: BlockId) {
        self.fixups.push((self.code.len(), target));
        self.emit(RiscvInst::Br {
            cond,
            rs1,
            rs2,
            target: 0,
        });
    }

    /// Maps a comparison opcode to a branch condition and operand
    /// order: `(cond, swap)` — `swap` means branch on `(b, a)`.
    fn br_cond_for(&self, op: Opcode, ty: TypeId) -> (BrCond, bool) {
        let tt = self.module.types();
        let signed = tt.is_signed_integer(ty) || tt.is_float(ty);
        match (op, signed) {
            (Opcode::SetEq, _) => (BrCond::Eq, false),
            (Opcode::SetNe, _) => (BrCond::Ne, false),
            (Opcode::SetLt, true) => (BrCond::Lt, false),
            (Opcode::SetLt, false) => (BrCond::Ltu, false),
            (Opcode::SetGt, true) => (BrCond::Lt, true),
            (Opcode::SetGt, false) => (BrCond::Ltu, true),
            (Opcode::SetLe, true) => (BrCond::Ge, true),
            (Opcode::SetLe, false) => (BrCond::Geu, true),
            (Opcode::SetGe, true) => (BrCond::Ge, false),
            (Opcode::SetGe, false) => (BrCond::Geu, false),
            _ => unreachable!("not a comparison"),
        }
    }

    /// Emits a fused comparison as a direct branch to `target`.
    fn emit_compare_branch(&mut self, def: InstId, target: BlockId) {
        let inst = self.func.inst(def);
        let op = inst.opcode();
        let (a, b) = (inst.operands()[0], inst.operands()[1]);
        let ty = self.vty(a);
        match classify(self.module, ty) {
            ValClass::Int => {
                let ra = self.reg_of(a, T0);
                let rb = self.reg_of(b, T1);
                let (cond, swap) = self.br_cond_for(op, ty);
                let (r1, r2) = if swap { (rb, ra) } else { (ra, rb) };
                self.jcc(cond, r1, r2, target);
            }
            _ => {
                // float: materialize the 0/1 with feq/flt/fle, branch on it
                self.emit_float_setcc(op, a, b, T0);
                self.jcc(BrCond::Ne, T0, X0, target);
            }
        }
    }

    /// Materializes a float comparison's 0/1 into `rd` (NaN operands
    /// make every `FSet` false; `Ne` is the complement, so unordered
    /// compares agree with the interpreter's semantics).
    fn emit_float_setcc(&mut self, op: Opcode, a: ValueId, b: ValueId, rd: Reg) {
        let is32 = classify(self.module, self.vty(a)) == ValClass::F32;
        self.freg_of(a, FReg(0));
        self.freg_of(b, FReg(1));
        let (fop, swap, negate) = match op {
            Opcode::SetEq => (FSetOp::Feq, false, false),
            Opcode::SetNe => (FSetOp::Feq, false, true),
            Opcode::SetLt => (FSetOp::Flt, false, false),
            Opcode::SetGt => (FSetOp::Flt, true, false),
            Opcode::SetLe => (FSetOp::Fle, false, false),
            Opcode::SetGe => (FSetOp::Fle, true, false),
            _ => unreachable!("not a comparison"),
        };
        let (f1, f2) = if swap {
            (FReg(1), FReg(0))
        } else {
            (FReg(0), FReg(1))
        };
        self.emit(RiscvInst::FSet {
            op: fop,
            rd,
            fs1: f1,
            fs2: f2,
            is32,
        });
        if negate {
            self.emit(RiscvInst::Alu {
                op: AluOp::Xor,
                rs1: rd,
                rhs: RegOrImm::Imm(1),
                rd,
                trapping: false,
            });
        }
    }

    /// Materializes an integer comparison's 0/1 into `rd` with
    /// `slt`/`sltu`/`xor`+`sltiu` sequences — no flags to read.
    fn emit_int_setcc(&mut self, op: Opcode, a: ValueId, b: ValueId, rd: Reg) {
        let ty = self.vty(a);
        let signed = self.module.types().is_signed_integer(ty);
        let slt = if signed { AluOp::Slt } else { AluOp::Sltu };
        let ra = self.reg_of(a, T0);
        let rb = self.reg_of(b, T1);
        match op {
            Opcode::SetEq | Opcode::SetNe => {
                self.emit(RiscvInst::Alu {
                    op: AluOp::Xor,
                    rs1: ra,
                    rhs: RegOrImm::Reg(rb),
                    rd,
                    trapping: false,
                });
                if op == Opcode::SetEq {
                    // seqz: rd = (rd unsigned< 1)
                    self.emit(RiscvInst::Alu {
                        op: AluOp::Sltu,
                        rs1: rd,
                        rhs: RegOrImm::Imm(1),
                        rd,
                        trapping: false,
                    });
                } else {
                    // snez: rd = (0 unsigned< rd)
                    self.emit(RiscvInst::Alu {
                        op: AluOp::Sltu,
                        rs1: X0,
                        rhs: RegOrImm::Reg(rd),
                        rd,
                        trapping: false,
                    });
                }
            }
            Opcode::SetLt => self.emit(RiscvInst::Alu {
                op: slt,
                rs1: ra,
                rhs: RegOrImm::Reg(rb),
                rd,
                trapping: false,
            }),
            Opcode::SetGt => self.emit(RiscvInst::Alu {
                op: slt,
                rs1: rb,
                rhs: RegOrImm::Reg(ra),
                rd,
                trapping: false,
            }),
            Opcode::SetGe | Opcode::SetLe => {
                let (r1, r2) = if op == Opcode::SetGe { (ra, rb) } else { (rb, ra) };
                self.emit(RiscvInst::Alu {
                    op: slt,
                    rs1: r1,
                    rhs: RegOrImm::Reg(r2),
                    rd,
                    trapping: false,
                });
                self.emit(RiscvInst::Alu {
                    op: AluOp::Xor,
                    rs1: rd,
                    rhs: RegOrImm::Imm(1),
                    rd,
                    trapping: false,
                });
            }
            _ => unreachable!("not a comparison"),
        }
    }

    fn run(&mut self) {
        self.emit_prologue();
        let order = self.func.block_order().to_vec();
        for (bi, &block) in order.iter().enumerate() {
            self.block_starts.insert(block, self.code.len() as u32);
            let next_block = order.get(bi + 1).copied();
            let insts = self.func.block(block).insts().to_vec();
            for &inst_id in &insts {
                self.emit_inst(block, inst_id, next_block);
            }
        }
        for (idx, block) in std::mem::take(&mut self.fixups) {
            let target = self.block_starts[&block];
            match &mut self.code[idx] {
                RiscvInst::J { target: t } | RiscvInst::Br { target: t, .. } => *t = target,
                RiscvInst::Call { unwind, .. } | RiscvInst::CallIndirect { unwind, .. } => {
                    *unwind = Some(target);
                }
                other => unreachable!("fixup on {other:?}"),
            }
        }
    }

    fn emit_prologue(&mut self) {
        let frame = (self.frame_size + self.out_area + 15) & !15;
        // t0 = old sp
        self.mov(T0, SP);
        if fits_imm12(i64::from(frame)) {
            self.emit(RiscvInst::Alu {
                op: AluOp::Sub,
                rs1: SP,
                rhs: RegOrImm::Imm(frame as i16),
                rd: SP,
                trapping: false,
            });
        } else {
            self.mat_const(frame as u64, T1);
            self.emit(RiscvInst::Alu {
                op: AluOp::Sub,
                rs1: SP,
                rhs: RegOrImm::Reg(T1),
                rd: SP,
                trapping: false,
            });
        }
        // save old fp at [t0 - 8]; fp = old sp
        self.emit(RiscvInst::St {
            rs: FP,
            rs1: T0,
            off: -8,
            width: llva_machine::Width::B8,
        });
        self.mov(FP, T0);
        // save used callee-saved registers
        let saves: Vec<(Reg, i32)> = self
            .used_saved
            .iter()
            .map(|r| (*r, self.save_slots[r]))
            .collect();
        for (r, off) in saves {
            let (base, o) = self.fp_addr(off);
            self.emit(RiscvInst::St {
                rs: r,
                rs1: base,
                off: o,
                width: llva_machine::Width::B8,
            });
        }
        // move incoming arguments to their homes
        let args = self.func.args().to_vec();
        for (i, &a) in args.iter().enumerate() {
            if i < 8 {
                let src = Reg(10 + i as u8);
                match self.locs[&a] {
                    Loc::Reg(r) => self.mov(r, src),
                    Loc::Slot(off) => {
                        let (base, o) = self.fp_addr(off);
                        self.emit(RiscvInst::St {
                            rs: src,
                            rs1: base,
                            off: o,
                            width: llva_machine::Width::B8,
                        });
                    }
                }
            } else {
                // incoming overflow at [fp + 8*(i-8)]
                let off = 8 * (i as i32 - 8);
                self.emit(RiscvInst::Ld {
                    rd: T0,
                    rs1: FP,
                    off: off as i16,
                    width: llva_machine::Width::B8,
                    signed: false,
                });
                match self.locs[&a] {
                    Loc::Reg(r) => self.mov(r, T0),
                    Loc::Slot(soff) => {
                        let (base, o) = self.fp_addr(soff);
                        self.emit(RiscvInst::St {
                            rs: T0,
                            rs1: base,
                            off: o,
                            width: llva_machine::Width::B8,
                        });
                    }
                }
            }
        }
    }

    fn emit_epilogue(&mut self) {
        let saves: Vec<(Reg, i32)> = self
            .used_saved
            .iter()
            .map(|r| (*r, self.save_slots[r]))
            .collect();
        for (r, off) in saves {
            let (base, o) = self.fp_addr(off);
            self.emit(RiscvInst::Ld {
                rd: r,
                rs1: base,
                off: o,
                width: llva_machine::Width::B8,
                signed: false,
            });
        }
        // old fp at [fp - 8]; sp = fp
        self.emit(RiscvInst::Ld {
            rd: T0,
            rs1: FP,
            off: -8,
            width: llva_machine::Width::B8,
            signed: false,
        });
        self.mov(SP, FP);
        self.mov(FP, T0);
        self.emit(RiscvInst::Ret);
    }

    fn emit_phi_copies(&mut self, block: BlockId, succ: BlockId) {
        let phis: Vec<InstId> = self
            .func
            .block(succ)
            .insts()
            .iter()
            .copied()
            .filter(|&i| self.func.inst(i).opcode() == Opcode::Phi)
            .collect();
        for phi in phis {
            let Some(incoming) = self.func.phi_incoming(phi, block) else {
                continue;
            };
            let off = self.staging[&phi];
            let r = self.reg_of(incoming, T0);
            let (base, o) = self.fp_addr(off);
            self.emit(RiscvInst::St {
                rs: r,
                rs1: base,
                off: o,
                width: llva_machine::Width::B8,
            });
        }
    }

    fn emit_all_phi_copies(&mut self, block: BlockId) {
        for succ in self.func.successors(block) {
            self.emit_phi_copies(block, succ);
        }
    }

    #[allow(clippy::too_many_lines)]
    fn emit_inst(&mut self, block: BlockId, inst_id: InstId, next_block: Option<BlockId>) {
        let inst = self.func.inst(inst_id).clone();
        let op = inst.opcode();
        let ops = inst.operands().to_vec();
        let blocks = inst.block_operands().to_vec();
        let tt = self.module.types();

        if self.fused.contains(&inst_id) {
            return;
        }

        match op {
            _ if op.is_binary() => {
                let ty = inst.result_type();
                match classify(self.module, ty) {
                    ValClass::Int => {
                        let signed = tt.is_signed_integer(ty);
                        let alu = match op {
                            Opcode::Add => AluOp::Add,
                            Opcode::Sub => AluOp::Sub,
                            Opcode::Mul => AluOp::Mul,
                            Opcode::Div => {
                                if signed {
                                    AluOp::Sdiv
                                } else {
                                    AluOp::Udiv
                                }
                            }
                            Opcode::Rem => {
                                if signed {
                                    AluOp::Srem
                                } else {
                                    AluOp::Urem
                                }
                            }
                            Opcode::And => AluOp::And,
                            Opcode::Or => AluOp::Or,
                            Opcode::Xor => AluOp::Xor,
                            Opcode::Shl => AluOp::Sll,
                            Opcode::Shr => {
                                if signed {
                                    AluOp::Sra
                                } else {
                                    AluOp::Srl
                                }
                            }
                            _ => unreachable!(),
                        };
                        let ra = self.reg_of(ops[0], T0);
                        let rb = self.rhs_of(ops[1], T1);
                        let (rd, spill) = self.dst_of(inst_id, T2);
                        self.emit(RiscvInst::Alu {
                            op: alu,
                            rs1: ra,
                            rhs: rb,
                            rd,
                            trapping: inst.exceptions_enabled(),
                        });
                        if matches!(
                            op,
                            Opcode::Add
                                | Opcode::Sub
                                | Opcode::Mul
                                | Opcode::Shl
                                | Opcode::Div
                                | Opcode::Rem
                        ) {
                            self.normalize(rd, ty);
                        }
                        self.finish_dst(rd, spill);
                    }
                    class => {
                        let is32 = class == ValClass::F32;
                        self.freg_of(ops[0], FReg(0));
                        self.freg_of(ops[1], FReg(1));
                        let fop = match op {
                            Opcode::Add => llva_machine::riscv::FpOp::Add,
                            Opcode::Sub => llva_machine::riscv::FpOp::Sub,
                            Opcode::Mul => llva_machine::riscv::FpOp::Mul,
                            Opcode::Div | Opcode::Rem => llva_machine::riscv::FpOp::Div,
                            _ => panic!("bitwise op on float"),
                        };
                        if op == Opcode::Rem {
                            self.emit(RiscvInst::FAlu {
                                op: llva_machine::riscv::FpOp::Div,
                                fs1: FReg(0),
                                fs2: FReg(1),
                                fd: FReg(2),
                                is32,
                            });
                            self.emit(RiscvInst::CvtFI {
                                rd: T0,
                                fs: FReg(2),
                                from32: is32,
                                signed: true,
                            });
                            self.emit(RiscvInst::CvtIF {
                                fd: FReg(2),
                                rs: T0,
                                to32: is32,
                                signed: true,
                            });
                            self.emit(RiscvInst::FAlu {
                                op: llva_machine::riscv::FpOp::Mul,
                                fs1: FReg(2),
                                fs2: FReg(1),
                                fd: FReg(2),
                                is32,
                            });
                            self.emit(RiscvInst::FAlu {
                                op: llva_machine::riscv::FpOp::Sub,
                                fs1: FReg(0),
                                fs2: FReg(2),
                                fd: FReg(0),
                                is32,
                            });
                        } else {
                            self.emit(RiscvInst::FAlu {
                                op: fop,
                                fs1: FReg(0),
                                fs2: FReg(1),
                                fd: FReg(0),
                                is32,
                            });
                        }
                        self.fstore_result(inst_id, FReg(0));
                    }
                }
            }
            _ if op.is_comparison() => {
                let (rd, spill) = self.dst_of(inst_id, T2);
                match classify(self.module, self.vty(ops[0])) {
                    ValClass::Int => self.emit_int_setcc(op, ops[0], ops[1], rd),
                    _ => self.emit_float_setcc(op, ops[0], ops[1], rd),
                }
                self.finish_dst(rd, spill);
            }
            Opcode::Ret => {
                if let Some(&v) = ops.first() {
                    match classify(self.module, self.vty(v)) {
                        ValClass::Int => {
                            let r = self.reg_of(v, T0);
                            self.mov(A0, r);
                        }
                        _ => {
                            // float returns as raw bits in a0
                            self.freg_of(v, FReg(0));
                            self.emit(RiscvInst::MovGF(A0, FReg(0)));
                        }
                    }
                }
                self.emit_epilogue();
            }
            Opcode::Br => {
                self.emit_all_phi_copies(block);
                if ops.is_empty() {
                    if next_block != Some(blocks[0]) {
                        self.jump(blocks[0]);
                    }
                } else {
                    let cond_val = ops[0];
                    match inst_defining(self.func, cond_val) {
                        Some(def) if self.fused.contains(&def) => {
                            self.emit_compare_branch(def, blocks[0]);
                        }
                        _ => {
                            let r = self.reg_of(cond_val, T0);
                            self.jcc(BrCond::Ne, r, X0, blocks[0]);
                        }
                    }
                    if next_block != Some(blocks[1]) {
                        self.jump(blocks[1]);
                    }
                }
            }
            Opcode::Mbr => {
                self.emit_all_phi_copies(block);
                let r = self.reg_of(ops[0], T0);
                for (i, &case) in ops[1..].iter().enumerate() {
                    let rc = self.reg_of(case, T1);
                    self.jcc(BrCond::Eq, r, rc, blocks[1 + i]);
                }
                if next_block != Some(blocks[0]) {
                    self.jump(blocks[0]);
                }
            }
            Opcode::Call | Opcode::Invoke => {
                self.emit_call(block, inst_id, op, &ops, &blocks);
            }
            Opcode::Unwind => self.emit(RiscvInst::Unwind),
            Opcode::Load => {
                let pointee = tt.pointee(self.vty(ops[0])).expect("pointer");
                let (width, signed) = access_of(self.module, pointee);
                let rp = self.reg_of(ops[0], T0);
                match classify(self.module, pointee) {
                    ValClass::Int => {
                        let (rd, spill) = self.dst_of(inst_id, T2);
                        self.emit(RiscvInst::Ld {
                            rd,
                            rs1: rp,
                            off: 0,
                            width,
                            signed,
                        });
                        self.finish_dst(rd, spill);
                    }
                    class => {
                        self.emit(RiscvInst::LdF {
                            fd: FReg(0),
                            rs1: rp,
                            off: 0,
                            is32: class == ValClass::F32,
                        });
                        self.fstore_result(inst_id, FReg(0));
                    }
                }
            }
            Opcode::Store => {
                let pointee = tt.pointee(self.vty(ops[1])).expect("pointer");
                let (width, _) = access_of(self.module, pointee);
                let rv = self.reg_of(ops[0], T0);
                let rp = self.reg_of(ops[1], T1);
                self.emit(RiscvInst::St {
                    rs: rv,
                    rs1: rp,
                    off: 0,
                    width,
                });
            }
            Opcode::GetElementPtr => self.emit_gep(inst_id, &ops),
            Opcode::Alloca => {
                let (rd, spill) = self.dst_of(inst_id, T2);
                if ops.is_empty() {
                    let off = self.alloca_home[&inst_id];
                    if fits_imm12(i64::from(off)) {
                        self.emit(RiscvInst::Alu {
                            op: AluOp::Add,
                            rs1: FP,
                            rhs: RegOrImm::Imm(off as i16),
                            rd,
                            trapping: false,
                        });
                    } else {
                        self.mat_const(off as i64 as u64, T3);
                        self.emit(RiscvInst::Alu {
                            op: AluOp::Add,
                            rs1: FP,
                            rhs: RegOrImm::Reg(T3),
                            rd,
                            trapping: false,
                        });
                    }
                } else {
                    let pointee = tt.pointee(inst.result_type()).expect("pointer");
                    let size = self.module.target().size_of(tt, pointee).max(1);
                    let size = (size + 7) & !7;
                    let rc = self.reg_of(ops[0], T0);
                    self.mat_const(size, T1);
                    self.emit(RiscvInst::Alu {
                        op: AluOp::Mul,
                        rs1: rc,
                        rhs: RegOrImm::Reg(T1),
                        rd: T0,
                        trapping: false,
                    });
                    self.emit(RiscvInst::Alu {
                        op: AluOp::Sub,
                        rs1: SP,
                        rhs: RegOrImm::Reg(T0),
                        rd: SP,
                        trapping: false,
                    });
                    self.mov(rd, SP);
                }
                self.finish_dst(rd, spill);
            }
            Opcode::Cast => self.emit_cast(inst_id, ops[0], inst.result_type()),
            Opcode::Phi => {
                let off = self.staging[&inst_id];
                let (rd, spill) = self.dst_of(inst_id, T2);
                let (base, o) = self.fp_addr(off);
                self.emit(RiscvInst::Ld {
                    rd,
                    rs1: base,
                    off: o,
                    width: llva_machine::Width::B8,
                    signed: false,
                });
                self.finish_dst(rd, spill);
            }
            _ => unreachable!("all opcodes covered"),
        }
    }

    fn emit_call(
        &mut self,
        block: BlockId,
        inst_id: InstId,
        op: Opcode,
        ops: &[ValueId],
        blocks: &[BlockId],
    ) {
        let args = &ops[1..];
        for (i, &a) in args.iter().take(8).enumerate() {
            let dst = Reg(10 + i as u8);
            match classify(self.module, self.vty(a)) {
                ValClass::Int => {
                    let r = self.reg_of(a, dst);
                    self.mov(dst, r);
                }
                _ => {
                    self.freg_of(a, FReg(0));
                    self.emit(RiscvInst::MovGF(dst, FReg(0)));
                }
            }
        }
        for (j, &a) in args.iter().skip(8).enumerate() {
            let r = self.reg_of(a, T0);
            self.emit(RiscvInst::St {
                rs: r,
                rs1: SP,
                off: (8 * j) as i16,
                width: llva_machine::Width::B8,
            });
        }
        let call_idx = self.code.len();
        if let Some(intr) = intrinsic_target(self.module, self.func, ops[0]) {
            self.emit(RiscvInst::CallIntrinsic {
                which: intr,
                nargs: args.len().min(8) as u8,
            });
        } else if let Some(Constant::FunctionAddr { func, .. }) = self.func.value_as_const(ops[0])
        {
            self.emit(RiscvInst::Call {
                func: func.index() as u32,
                unwind: None,
            });
        } else {
            let r = self.reg_of(ops[0], T0);
            self.emit(RiscvInst::CallIndirect {
                rs: r,
                unwind: None,
            });
        }
        if let Some(result) = self.func.inst_result(inst_id) {
            match classify(self.module, self.func.inst(inst_id).result_type()) {
                ValClass::Int => match self.locs[&result] {
                    Loc::Reg(r) => self.mov(r, A0),
                    Loc::Slot(off) => {
                        let (base, o) = self.fp_addr(off);
                        self.emit(RiscvInst::St {
                            rs: A0,
                            rs1: base,
                            off: o,
                            width: llva_machine::Width::B8,
                        });
                    }
                },
                _ => {
                    self.emit(RiscvInst::MovFG(FReg(0), A0));
                    self.fstore_result(inst_id, FReg(0));
                }
            }
        }
        if op == Opcode::Invoke {
            self.emit_phi_copies(block, blocks[0]);
            self.jump(blocks[0]);
            let pad = self.code.len() as u32;
            self.emit_phi_copies(block, blocks[1]);
            self.jump(blocks[1]);
            match &mut self.code[call_idx] {
                RiscvInst::Call { unwind, .. } | RiscvInst::CallIndirect { unwind, .. } => {
                    *unwind = Some(pad);
                }
                _ => {}
            }
        }
    }

    fn emit_gep(&mut self, inst_id: InstId, ops: &[ValueId]) {
        let tt = self.module.types();
        let cfg = self.module.target();
        let base = self.reg_of(ops[0], T0);
        self.mov(T0, base);
        let mut cur = tt.pointee(self.vty(ops[0])).expect("pointer");
        let mut static_off: i64 = 0;
        for (i, &idx) in ops[1..].iter().enumerate() {
            let elem_size = if i == 0 {
                cfg.size_of(tt, cur)
            } else {
                match tt.kind(cur).clone() {
                    TypeKind::Array { elem, .. } => {
                        let s = cfg.size_of(tt, elem);
                        cur = elem;
                        s
                    }
                    TypeKind::LiteralStruct(_) | TypeKind::Struct(_) => {
                        let field = self
                            .func
                            .value_as_const(idx)
                            .and_then(Constant::as_int_bits)
                            .expect("struct index constant")
                            as usize;
                        static_off += cfg.field_offset(tt, cur, field) as i64;
                        cur = tt.struct_fields(cur).expect("defined")[field];
                        continue;
                    }
                    other => panic!("gep into {other:?}"),
                }
            };
            if let Some(k) = self
                .func
                .value_as_const(idx)
                .map(|c| canonical_const(self.module, c) as i64)
            {
                static_off += k * elem_size as i64;
            } else {
                let ri = self.reg_of(idx, T1);
                if elem_size.is_power_of_two() {
                    self.emit(RiscvInst::Alu {
                        op: AluOp::Sll,
                        rs1: ri,
                        rhs: RegOrImm::Imm(elem_size.trailing_zeros() as i16),
                        rd: T1,
                        trapping: false,
                    });
                } else {
                    self.mat_const(elem_size, T2);
                    self.emit(RiscvInst::Alu {
                        op: AluOp::Mul,
                        rs1: ri,
                        rhs: RegOrImm::Reg(T2),
                        rd: T1,
                        trapping: false,
                    });
                }
                self.emit(RiscvInst::Alu {
                    op: AluOp::Add,
                    rs1: T0,
                    rhs: RegOrImm::Reg(T1),
                    rd: T0,
                    trapping: false,
                });
            }
        }
        let (rd, spill) = self.dst_of(inst_id, T2);
        if static_off != 0 {
            if fits_imm12(static_off) {
                self.emit(RiscvInst::Alu {
                    op: AluOp::Add,
                    rs1: T0,
                    rhs: RegOrImm::Imm(static_off as i16),
                    rd,
                    trapping: false,
                });
            } else {
                self.mat_const(static_off as u64, T3);
                self.emit(RiscvInst::Alu {
                    op: AluOp::Add,
                    rs1: T0,
                    rhs: RegOrImm::Reg(T3),
                    rd,
                    trapping: false,
                });
            }
        } else {
            self.mov(rd, T0);
        }
        self.finish_dst(rd, spill);
    }

    fn emit_cast(&mut self, inst_id: InstId, src: ValueId, to: TypeId) {
        let tt = self.module.types();
        let from = self.vty(src);
        let from_class = classify(self.module, from);
        let to_class = classify(self.module, to);
        match (from_class, to_class) {
            (ValClass::Int, ValClass::Int) => {
                let rs = self.reg_of(src, T0);
                let (rd, spill) = self.dst_of(inst_id, T2);
                if matches!(tt.kind(to), TypeKind::Bool) {
                    // snez rd, rs
                    self.emit(RiscvInst::Alu {
                        op: AluOp::Sltu,
                        rs1: X0,
                        rhs: RegOrImm::Reg(rs),
                        rd,
                        trapping: false,
                    });
                } else {
                    self.mov(rd, rs);
                    self.normalize(rd, to);
                }
                self.finish_dst(rd, spill);
            }
            (ValClass::Int, fc) => {
                let rs = self.reg_of(src, T0);
                self.emit(RiscvInst::CvtIF {
                    fd: FReg(0),
                    rs,
                    to32: fc == ValClass::F32,
                    signed: tt.is_signed_integer(from) || matches!(tt.kind(from), TypeKind::Bool),
                });
                self.fstore_result(inst_id, FReg(0));
            }
            (fc, ValClass::Int) => {
                self.freg_of(src, FReg(0));
                let (rd, spill) = self.dst_of(inst_id, T2);
                if matches!(tt.kind(to), TypeKind::Bool) {
                    // rd = !(src == 0.0); feq is false on NaN, so NaN → true
                    self.emit(RiscvInst::MovFG(FReg(1), X0));
                    self.emit(RiscvInst::FSet {
                        op: FSetOp::Feq,
                        rd,
                        fs1: FReg(0),
                        fs2: FReg(1),
                        is32: fc == ValClass::F32,
                    });
                    self.emit(RiscvInst::Alu {
                        op: AluOp::Xor,
                        rs1: rd,
                        rhs: RegOrImm::Imm(1),
                        rd,
                        trapping: false,
                    });
                } else {
                    self.emit(RiscvInst::CvtFI {
                        rd,
                        fs: FReg(0),
                        from32: fc == ValClass::F32,
                        signed: tt.is_signed_integer(to),
                    });
                    self.normalize(rd, to);
                }
                self.finish_dst(rd, spill);
            }
            (fa, fb) => {
                self.freg_of(src, FReg(0));
                if fa != fb {
                    self.emit(RiscvInst::CvtFF {
                        fd: FReg(0),
                        fs: FReg(0),
                        to32: fb == ValClass::F32,
                    });
                }
                self.fstore_result(inst_id, FReg(0));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llva_machine::common::Exit;
    use llva_machine::memory::Memory;
    use llva_machine::riscv::{RiscvMachine, RiscvProgram};

    fn compile_and_run(src: &str, args: &[u64]) -> Exit {
        let mut m = llva_core::parser::parse_module(src).expect("parses");
        m.set_target(llva_core::layout::TargetConfig::riscv64());
        llva_core::verifier::verify_module(&m).expect("verifies");
        let image = crate::common::layout_globals(&m);
        let mut program = RiscvProgram::new(m.num_functions(), image.addrs.clone());
        for (fid, f) in m.functions() {
            if !f.is_declaration() {
                program.install(fid.index() as u32, compile_riscv(&m, fid));
            }
        }
        let mut mem = Memory::new(1 << 22, image.heap_base, m.target().endianness);
        mem.write_bytes(llva_machine::memory::GLOBAL_BASE, &image.image)
            .expect("image fits");
        let mut machine = RiscvMachine::new(mem);
        let main = m.function_by_name("main").expect("main");
        machine
            .call_entry(main.index() as u32, args)
            .expect("entry");
        machine.run(&program, 100_000_000)
    }

    #[test]
    fn arithmetic_pipeline() {
        let exit = compile_and_run(
            r#"
int %main(int %x) {
entry:
    %a = add int %x, 10
    %b = mul int %a, 3
    %c = sub int %b, 6
    %d = div int %c, 2
    ret int %d
}
"#,
            &[4],
        );
        assert_eq!(exit, Exit::Halt(18));
    }

    #[test]
    fn fib_recursive() {
        let exit = compile_and_run(
            r#"
int %fib(int %n) {
entry:
    %c = setlt int %n, 2
    br bool %c, label %base, label %rec
base:
    ret int %n
rec:
    %n1 = sub int %n, 1
    %a = call int %fib(int %n1)
    %n2 = sub int %n, 2
    %b = call int %fib(int %n2)
    %s = add int %a, %b
    ret int %s
}

int %main() {
entry:
    %r = call int %fib(int 10)
    ret int %r
}
"#,
            &[],
        );
        assert_eq!(exit, Exit::Halt(55));
    }

    #[test]
    fn loops_and_phis() {
        let exit = compile_and_run(
            r#"
int %main(int %n) {
entry:
    br label %header
header:
    %i = phi int [ 0, %entry ], [ %i2, %body ]
    %s = phi int [ 0, %entry ], [ %s2, %body ]
    %c = setlt int %i, %n
    br bool %c, label %body, label %exit
body:
    %s2 = add int %s, %i
    %i2 = add int %i, 1
    br label %header
exit:
    ret int %s
}
"#,
            &[10],
        );
        assert_eq!(exit, Exit::Halt(45));
    }

    #[test]
    fn globals_and_memory_little_endian() {
        let exit = compile_and_run(
            r#"
@counter = global int 41

int %main() {
entry:
    %v = load int* @counter
    %v2 = add int %v, 1
    store int %v2, int* @counter
    %r = load int* @counter
    ret int %r
}
"#,
            &[],
        );
        assert_eq!(exit, Exit::Halt(42));
    }

    #[test]
    fn large_constants_need_lui() {
        let exit = compile_and_run(
            r#"
long %main() {
entry:
    %a = add long 0, 305419896
    %b = add long %a, 1
    ret long %b
}
"#,
            &[],
        );
        assert_eq!(exit, Exit::Halt(0x1234_5679));
    }

    #[test]
    fn full_64bit_constants_materialize() {
        // forces the general lui/shift/or path, including the i32-edge
        let exit = compile_and_run(
            r#"
long %main() {
entry:
    %a = add long 0, 81985529216486895
    %b = sub long %a, 81985529216486890
    ret long %b
}
"#,
            &[],
        );
        // 0x0123456789ABCDEF - (0x0123456789ABCDEF - 5) = 5
        assert_eq!(exit, Exit::Halt(5));
    }

    #[test]
    fn many_args_use_a_regs_then_stack() {
        let exit = compile_and_run(
            r#"
int %sum10(int %a, int %b, int %c, int %d, int %e, int %f, int %g, int %h, int %i, int %j) {
entry:
    %s1 = add int %a, %b
    %s2 = add int %s1, %c
    %s3 = add int %s2, %d
    %s4 = add int %s3, %e
    %s5 = add int %s4, %f
    %s6 = add int %s5, %g
    %s7 = add int %s6, %h
    %s8 = add int %s7, %i
    %s9 = add int %s8, %j
    ret int %s9
}

int %main() {
entry:
    %r = call int %sum10(int 1, int 2, int 3, int 4, int 5, int 6, int 7, int 8, int 9, int 10)
    ret int %r
}
"#,
            &[],
        );
        assert_eq!(exit, Exit::Halt(55));
    }

    #[test]
    fn float_math_and_struct_gep() {
        let exit = compile_and_run(
            r#"
%P = type { double, double }

int %main() {
entry:
    %p = alloca %P
    %f0 = getelementptr %P* %p, long 0, ubyte 0
    %f1 = getelementptr %P* %p, long 0, ubyte 1
    %three = cast int 3 to double
    %four = cast int 4 to double
    store double %three, double* %f0
    store double %four, double* %f1
    %a = load double* %f0
    %b = load double* %f1
    %aa = mul double %a, %a
    %bb = mul double %b, %b
    %cc = add double %aa, %bb
    %r = cast double %cc to int
    ret int %r
}
"#,
            &[],
        );
        assert_eq!(exit, Exit::Halt(25));
    }

    #[test]
    fn invoke_unwind_flow() {
        let exit = compile_and_run(
            r#"
void %thrower(int %x) {
entry:
    %c = setgt int %x, 5
    br bool %c, label %throw, label %ok
throw:
    unwind
ok:
    ret void
}

int %main(int %x) {
entry:
    invoke void %thrower(int %x) to label %fine unwind label %caught
fine:
    ret int 0
caught:
    ret int 1
}
"#,
            &[9],
        );
        assert_eq!(exit, Exit::Halt(1));
    }

    #[test]
    fn unsigned_comparisons_use_unsigned_branches() {
        // 0xFFFFFFFFFFFFFFFF as ulong is huge, as long is -1
        let exit = compile_and_run(
            r#"
int %main() {
entry:
    %big = sub ulong 0, 1
    %c = setgt ulong %big, 10
    br bool %c, label %yes, label %no
yes:
    ret int 1
no:
    ret int 0
}
"#,
            &[],
        );
        assert_eq!(exit, Exit::Halt(1));
    }

    #[test]
    fn mbr_dispatch() {
        for (x, expect) in [(0u64, 10u64), (1, 11), (7, 12)] {
            let exit = compile_and_run(
                r#"
int %main(int %x) {
entry:
    mbr int %x, label %other, [ int 0, label %zero ], [ int 1, label %one ]
zero:
    ret int 10
one:
    ret int 11
other:
    ret int 12
}
"#,
                &[x],
            );
            assert_eq!(exit, Exit::Halt(expect));
        }
    }

    #[test]
    fn indirect_call_through_table() {
        let exit = compile_and_run(
            r#"
int %double(int %x) {
entry:
    %r = add int %x, %x
    ret int %r
}

@table = global int (int)* %double

int %main() {
entry:
    %f = load int (int)** @table
    %r = call int %f(int 21)
    ret int %r
}
"#,
            &[],
        );
        assert_eq!(exit, Exit::Halt(42));
    }

    #[test]
    fn setcc_materializes_without_flags() {
        // each comparison consumed as a value, not a branch
        let exit = compile_and_run(
            r#"
int %main(int %x) {
entry:
    %eq = seteq int %x, 7
    %ne = setne int %x, 9
    %lt = setlt int %x, 100
    %ge = setge int %x, 7
    %a = cast bool %eq to int
    %b = cast bool %ne to int
    %c = cast bool %lt to int
    %d = cast bool %ge to int
    %s1 = add int %a, %b
    %s2 = add int %s1, %c
    %s3 = add int %s2, %d
    ret int %s3
}
"#,
            &[7],
        );
        assert_eq!(exit, Exit::Halt(4));
    }
}
