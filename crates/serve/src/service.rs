//! The multi-tenant execution service.
//!
//! # Architecture
//!
//! One [`ExecService`] owns a sharded translation cache
//! ([`ShardedStorage`]) and a set of tenants. Each tenant gets its own
//! **executor thread**: the thread creates and owns one
//! [`Supervisor`] per loaded module, so all non-[`Send`] execution
//! state (supervisors hold `Box<dyn Storage>`) lives on exactly one
//! thread, and only plain data — module source text, argument vectors,
//! result enums — ever crosses a thread boundary.
//!
//! The caller-facing half is pure admission control: quota checks and
//! an in-flight CAS happen on the *caller's* thread before anything is
//! queued, so an over-quota tenant is rejected in nanoseconds without
//! waking its executor. Admitted commands travel over a bounded
//! [`mpsc::sync_channel`] sized to the in-flight quota — the queue
//! physically cannot grow beyond what admission already allowed.
//!
//! Fault isolation falls out of the ownership structure: a poisoned
//! function quarantines `(function, tier)` pairs inside one tenant's
//! supervisor; other tenants never see that supervisor. The only
//! shared mutable state is the sharded cache, which tolerates
//! poisoned-lock recovery per shard (see `llva_engine::storage`).
//!
//! # Supervision (see DESIGN.md §16)
//!
//! Above the per-call tier ladder sits a service-level supervision
//! layer. A monitor thread sweeps every tenant: a **dead** executor
//! (its thread finished — an escaped panic) or a **wedged** one (its
//! busy heartbeat is older than `call_deadline × wedge_multiple`) is
//! **respawned** from the tenant's state journal — module sources,
//! stamps, and quarantines recorded by the executor itself — with
//! modules re-attached warm from the shared image cache.
//!
//! Respawn is **epoch-fenced**: the tenant's epoch counter is bumped
//! before the new executor exists, every executor knows the epoch it
//! was born into, and all shared-state writes (snapshot, journal,
//! breakers) are discarded when they come from a superseded epoch. A
//! call accepted before the crash resolves to a structured
//! [`ServeError::ExecutorLost`] — never a hang — because dropping its
//! queued command drops both its reply sender (the caller's `recv`
//! errors out) and its admission `Ticket` (the in-flight slot is
//! released exactly once, by a `swap`-guarded drop).
//!
//! A per-`(module, function)` **circuit breaker** sits above the
//! supervisor's quarantine probes: repeated
//! [`ServeError::TiersExhausted`] answers open it, admission then
//! rejects with [`ServeError::BreakerOpen`] until an exponential
//! backoff elapses, and a single half-open probe call decides between
//! closing and re-opening deeper. Whole-service **graceful drain**
//! ([`ExecService::drain`]) closes admission, waits for in-flight work
//! with a deadline, snapshots final metrics, and shuts down.

use std::collections::{BTreeMap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, RwLock, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use llva_engine::llee::{self, ExecutionManager};
use llva_engine::storage::{MemStorage, ShardedStorage, Storage};
use llva_engine::supervisor::{
    Supervisor, SupervisorError, Tier, TierCounters, TierKill, TierOutcome,
};
use llva_engine::image::{ImageBuilder, LlvaImage, IMAGE_ENTRY};
use llva_engine::{PreModule, TargetIsa, TranslationStats};

use crate::quota::{CounterValues, QuotaKind, ServeError, TenantCounters, TenantQuota};

/// The boxed storage backend the service shards over. `Send` because
/// shards hop between tenant executor threads.
pub type BoxedStorage = Box<dyn Storage + Send>;

/// Service-wide configuration (per-tenant limits live in
/// [`TenantQuota`]).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Target ISA for the translated tier.
    pub isa: TargetIsa,
    /// Translation-cache shards (keyed by entry-name hash).
    pub shards: usize,
    /// How long a caller waits for a call answer before giving up
    /// ([`ServeError::DeadlineExpired`]; the call still completes and
    /// is accounted in the background).
    pub call_deadline: Duration,
    /// How long a caller waits for a module load (loads include the
    /// translation warmup, so the default is more generous).
    pub load_deadline: Duration,
    /// Serve-level bounded retry budget for a call whose tier ladder
    /// ran dry: each retry lifts the function's quarantines (transient
    /// storage faults heal; a genuinely poisoned function exhausts the
    /// budget and fails).
    pub max_retries: u32,
    /// Base backoff between those retries (attempt `n` sleeps
    /// `base * 2^(n-1)`).
    pub retry_backoff: Duration,
    /// Faults a `(function, tier)` pair tolerates before quarantine.
    pub max_faults: u32,
    /// Quarantine recovery probes: after this many successful
    /// lower-tier calls, a quarantined pair earns one supervised
    /// retry. `None` disables probing.
    pub probe_after: Option<u32>,
    /// Per-module incident-log ring-buffer capacity.
    pub incident_capacity: usize,
    /// Worker threads for the translation warmup at module load
    /// (0 = [`ExecutionManager::default_workers`]).
    pub translate_workers: usize,
    /// Step watchdog for fast tiers (see `Supervisor::set_watchdog`).
    pub watchdog: Option<u64>,
    /// Cross-check every answer against the structural interpreter
    /// (expensive; catches silent wrong values).
    pub cross_check: bool,
    /// How often the supervision monitor sweeps tenants for dead or
    /// wedged executors. `Duration::ZERO` disables supervision (no
    /// monitor thread is spawned; executors are never respawned).
    pub monitor_interval: Duration,
    /// A busy executor whose current command has run longer than
    /// `call_deadline × wedge_multiple` is declared wedged and
    /// replaced. `0` disables wedge detection (dead-thread detection
    /// stays on).
    pub wedge_multiple: u32,
    /// Consecutive [`ServeError::TiersExhausted`] answers for one
    /// `(module, function)` before its circuit breaker opens. `0`
    /// disables breakers.
    pub breaker_threshold: u32,
    /// Base backoff of an opened breaker (the `n`-th consecutive open
    /// waits `base * 2^(n-1)`).
    pub breaker_backoff: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            isa: TargetIsa::X86,
            shards: 4,
            call_deadline: Duration::from_secs(30),
            load_deadline: Duration::from_secs(120),
            max_retries: 2,
            retry_backoff: Duration::from_millis(1),
            max_faults: 1,
            probe_after: None,
            incident_capacity: llva_engine::supervisor::DEFAULT_INCIDENT_CAPACITY,
            translate_workers: 0,
            watchdog: None,
            cross_check: false,
            monitor_interval: Duration::from_millis(25),
            wedge_multiple: 4,
            breaker_threshold: 3,
            breaker_backoff: Duration::from_millis(100),
        }
    }
}

/// What a successful module load reports back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadReply {
    /// The tenant-chosen module name.
    pub module: String,
    /// The content-addressed cache this module translates into
    /// (identical module text ⇒ identical cache, shared across
    /// tenants; different text ⇒ disjoint cache, zero collision).
    pub cache: String,
    /// Defined (body-carrying) functions in the module.
    pub functions: usize,
    /// Translation/cache statistics from the load-time warmup.
    pub warmup: TranslationStats,
    /// True when the warm image attach mapped the cache file zero-copy
    /// (`mmap`) instead of reading it into memory.
    pub image_mapped: bool,
}

/// What a successful call reports back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallResult {
    /// The semantic outcome (value, precise trap, or out-of-fuel).
    pub outcome: TierOutcome,
    /// The tier that answered.
    pub tier: Tier,
    /// True when a faster tier faulted or was skipped on the way.
    pub degraded: bool,
    /// Steps the answering tier executed.
    pub steps: u64,
    /// Serve-level retries this call consumed.
    pub retries: u32,
}

impl CallResult {
    /// The returned raw bits, if the call completed normally.
    #[must_use]
    pub fn value(&self) -> Option<u64> {
        match self.outcome {
            TierOutcome::Value(v) => Some(v),
            _ => None,
        }
    }
}

/// Executor-published health snapshot for one loaded module. Counter
/// fields are **lifetime** totals: they carry across executor respawns
/// (the journal re-seeds the baseline), so metrics stay monotonic.
#[derive(Debug, Clone)]
pub struct ModuleSnapshot {
    /// Tenant-chosen module name.
    pub name: String,
    /// Content-addressed cache name.
    pub cache: String,
    /// Defined functions.
    pub functions: usize,
    /// Incidents currently held in the ring buffer (this epoch).
    pub incidents_len: usize,
    /// Older incidents dropped by the ring-buffer cap (lifetime).
    pub incidents_dropped: u64,
    /// Lifetime incident count.
    pub incidents_total: u64,
    /// Display lines for the most recent incidents (newest last).
    pub recent_incidents: Vec<String>,
    /// Quarantined `(function, tier)` pairs right now.
    pub quarantined: Vec<(String, Tier)>,
    /// Per-tier counters, indexed by [`Tier::index`] (lifetime).
    pub tier_counters: [TierCounters; 4],
    /// Aggregated translation/cache statistics (lifetime: every
    /// warmup, including respawn rebuilds, plus every call).
    pub translation: TranslationStats,
}

/// Executor-published health snapshot for one tenant.
#[derive(Debug, Clone, Default)]
pub struct TenantSnapshot {
    /// Executor epoch that published this snapshot (0 = never
    /// published; bumps by one per respawn).
    pub epoch: u64,
    /// One entry per loaded module, in load order.
    pub modules: Vec<ModuleSnapshot>,
}

/// How many incident display lines a snapshot carries per module.
const SNAPSHOT_RECENT_INCIDENTS: usize = 8;

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

/// State of one `(module, function)` circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal admission; consecutive failures are being counted.
    Closed,
    /// Backoff in force: calls are rejected with
    /// [`ServeError::BreakerOpen`] until `open_until`.
    Open,
    /// Backoff elapsed; exactly one probe call is in flight. Its
    /// outcome closes the breaker or re-opens it with deeper backoff.
    HalfOpen,
}

impl BreakerState {
    /// Stable numeric encoding for metrics (0 closed, 1 half-open,
    /// 2 open).
    #[must_use]
    pub fn as_metric(self) -> u64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        }
    }
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

#[derive(Debug, Clone)]
struct Breaker {
    state: BreakerState,
    /// Consecutive `TiersExhausted` answers while closed.
    failures: u32,
    /// Consecutive opens without an intervening success (the backoff
    /// exponent). Reset by a successful call.
    opens: u32,
    /// Lifetime opens (monotonic; survives respawns because breakers
    /// live in the caller-side shared state, not the executor).
    opened_total: u64,
    /// When an open breaker transitions to half-open.
    open_until: Instant,
    /// When the current half-open probe was claimed (a probe caller
    /// that died is reclaimed after one backoff period).
    half_open_since: Instant,
}

impl Default for Breaker {
    fn default() -> Breaker {
        Breaker {
            state: BreakerState::Closed,
            failures: 0,
            opens: 0,
            opened_total: 0,
            open_until: Instant::now(),
            half_open_since: Instant::now(),
        }
    }
}

/// A caller-visible copy of one breaker's state (metrics, tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerSnapshot {
    /// Module the breaker guards.
    pub module: String,
    /// Function the breaker guards.
    pub function: String,
    /// Current state.
    pub state: BreakerState,
    /// Lifetime opens.
    pub opened_total: u64,
    /// Consecutive failures counted so far (while closed).
    pub failures: u32,
}

fn breaker_backoff(config: &ServeConfig, opens: u32) -> Duration {
    config.breaker_backoff * (1u32 << opens.saturating_sub(1).min(16))
}

/// Trips (or re-trips) a breaker open with exponentially deeper
/// backoff.
fn trip_breaker(b: &mut Breaker, config: &ServeConfig) {
    b.failures = 0;
    b.opens = b.opens.saturating_add(1);
    b.opened_total += 1;
    b.open_until = Instant::now() + breaker_backoff(config, b.opens);
    b.state = BreakerState::Open;
}

// ---------------------------------------------------------------------------
// Executor fault injection
// ---------------------------------------------------------------------------

/// Where in the executor loop an injected kill fires (see
/// [`ExecService::arm_executor_kills`]). The points bracket the
/// slot-accounting protocol: `Recv` kills before any processing,
/// `PreReply` after the work is done and published but *before* the
/// admission slot is released (the drop path must release it),
/// `PostReply` after the caller was answered, and `Rebuild` during the
/// journal rebuild of a respawned executor (a crash loop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorKillPoint {
    /// After a command is dequeued, before it is processed.
    Recv,
    /// After processing and snapshot publication, before the slot
    /// release and reply.
    PreReply,
    /// After the reply was sent.
    PostReply,
    /// During the journal rebuild at executor (re)spawn.
    Rebuild,
}

impl ExecutorKillPoint {
    fn parse(s: &str) -> Option<ExecutorKillPoint> {
        match s {
            "recv" => Some(ExecutorKillPoint::Recv),
            "pre-reply" => Some(ExecutorKillPoint::PreReply),
            "post-reply" => Some(ExecutorKillPoint::PostReply),
            "rebuild" => Some(ExecutorKillPoint::Rebuild),
            _ => None,
        }
    }
}

impl std::fmt::Display for ExecutorKillPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ExecutorKillPoint::Recv => "recv",
            ExecutorKillPoint::PreReply => "pre-reply",
            ExecutorKillPoint::PostReply => "post-reply",
            ExecutorKillPoint::Rebuild => "rebuild",
        })
    }
}

/// One entry of an executor kill plan: panic the executor the
/// `after`-th time it passes `point` (1 = the very next pass).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorKill {
    /// Injection point.
    pub point: ExecutorKillPoint,
    /// Fire on this arrival count (≥ 1).
    pub after: u32,
}

/// Parses `LLVA_KILL_EXECUTOR` (`<point>:<after>[,<point>:<after>...]`,
/// points `recv` / `pre-reply` / `post-reply` / `rebuild`) into a kill
/// plan; empty when unset. Unparseable items are skipped, so a CI
/// matrix axis can never turn into a silent no-test panic.
#[must_use]
pub fn executor_kill_from_env() -> Vec<ExecutorKill> {
    let Ok(spec) = std::env::var("LLVA_KILL_EXECUTOR") else {
        return Vec::new();
    };
    spec.split(',')
        .filter_map(|item| {
            let (point, after) = item.trim().split_once(':')?;
            Some(ExecutorKill {
                point: ExecutorKillPoint::parse(point.trim())?,
                after: after.trim().parse().ok().filter(|&n| n >= 1)?,
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Journal + shared tenant state
// ---------------------------------------------------------------------------

/// Lifetime counter baselines carried across executor respawns: a
/// respawned executor seeds its published totals from these so
/// metrics stay monotonic through a crash.
#[derive(Debug, Clone, Copy, Default)]
struct CarriedStats {
    incidents_total: u64,
    incidents_dropped: u64,
    tiers: [TierCounters; 4],
    translation: TranslationStats,
}

/// Everything needed to rebuild one loaded module in a fresh executor.
#[derive(Debug, Clone)]
struct JournalEntry {
    source: String,
    stamp: u64,
    cache: String,
    functions: usize,
    carried: CarriedStats,
    quarantined: Vec<(String, Tier)>,
    /// Set when the last rebuild attempt failed (the module then
    /// answers [`ServeError::NoSuchModule`] until re-loaded or a later
    /// rebuild succeeds); cleared on success.
    failed: bool,
}

/// The per-tenant recovery journal: written by the live executor
/// (epoch-guarded), read by the next one at respawn.
#[derive(Debug, Default)]
struct Journal {
    /// Epoch of the newest executor that wrote. Writes from older
    /// epochs (a wedged, superseded executor finishing its last
    /// command) are discarded.
    epoch: u64,
    modules: BTreeMap<String, JournalEntry>,
}

/// Caller-visible shared state for one tenant (atomics + mailboxes;
/// everything here is readable without blocking on the executor and
/// survives executor respawns).
struct TenantShared {
    counters: TenantCounters,
    in_flight: AtomicU32,
    fuel_remaining: AtomicU64,
    snapshot: Mutex<TenantSnapshot>,
    /// Executor generation: starts at 1, +1 per respawn. Shared-state
    /// writes from an executor whose epoch is older are fenced off.
    epoch: AtomicU64,
    /// Lifetime executor respawns.
    restarts: AtomicU64,
    /// Wedge heartbeat: ms since service start when the executor began
    /// its current command (`.max(1)`), 0 when idle.
    busy_since_ms: AtomicU64,
    /// Commands completed (all epochs).
    heartbeat: AtomicU64,
    /// Set by `stop_tenant` before teardown: the monitor must not
    /// respawn, and a disconnected channel means shutdown, not loss.
    retired: AtomicBool,
    /// Panic message of the most recent executor crash.
    last_crash: Mutex<Option<String>>,
    journal: Mutex<Journal>,
    breakers: Mutex<BTreeMap<(String, String), Breaker>>,
    /// Fast-path flag for [`TenantShared::kill_plan`] (the injection
    /// points sit on the executor hot loop).
    kills_armed: AtomicBool,
    kill_plan: Mutex<VecDeque<ExecutorKill>>,
}

struct TenantHandle {
    quota: TenantQuota,
    shared: Arc<TenantShared>,
    /// Swapped at respawn (write) and cloned per send (read).
    sender: RwLock<SyncSender<Command>>,
    /// The current executor thread. Lock order: `thread` before
    /// `sender` (respawn and stop both follow it).
    thread: Mutex<Option<JoinHandle<()>>>,
    /// Wedged executors that were replaced but are still running their
    /// last (fuel-bounded) command; joined at tenant stop.
    abandoned: Mutex<Vec<JoinHandle<()>>>,
}

/// An admitted call's in-flight slot, released **exactly once**: by
/// the executor after the work is published, or by `Drop` on any path
/// that abandons the command (queue teardown at executor death,
/// `try_send` failure, panic unwind). The `swap` makes the explicit
/// release and the drop release mutually exclusive.
struct Ticket {
    shared: Arc<TenantShared>,
    released: AtomicBool,
}

impl Ticket {
    fn new(shared: Arc<TenantShared>) -> Ticket {
        Ticket { shared, released: AtomicBool::new(false) }
    }

    fn release(&self) {
        if !self.released.swap(true, Ordering::AcqRel) {
            self.shared.in_flight.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        self.release();
    }
}

/// Commands crossing into an executor thread — plain `Send` data only.
/// Every admitted command carries its [`Ticket`]; dropping a command
/// unanswered releases the slot and disconnects the caller's reply
/// channel in one move.
enum Command {
    Load {
        module: String,
        source: String,
        ticket: Ticket,
        reply: mpsc::Sender<Result<LoadReply, ServeError>>,
    },
    Unload {
        module: String,
        ticket: Ticket,
        reply: mpsc::Sender<Result<(), ServeError>>,
    },
    Call {
        module: String,
        entry: String,
        args: Vec<u64>,
        fuel: u64,
        ticket: Ticket,
        reply: mpsc::Sender<Result<CallResult, ServeError>>,
    },
    /// Fault-injection hook (tests, soaks, CI): arm kills on one
    /// module's supervisor for the next `calls` calls (0 = until
    /// re-armed or the module is unloaded).
    ArmKills {
        module: String,
        kills: Vec<TierKill>,
        calls: u32,
        ticket: Ticket,
        reply: mpsc::Sender<Result<(), ServeError>>,
    },
    Shutdown,
}

struct Inner {
    config: ServeConfig,
    storage: ShardedStorage<BoxedStorage>,
    tenants: RwLock<BTreeMap<String, Arc<TenantHandle>>>,
    /// Service birth; the wedge heartbeat is ms since this instant.
    started: Instant,
    draining: AtomicBool,
    drain_duration_ms: AtomicU64,
    monitor: Mutex<Option<JoinHandle<()>>>,
    monitor_stop: Arc<(Mutex<bool>, Condvar)>,
}

/// What [`ExecService::drain`] reports after the service is down.
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// True when every in-flight call resolved before the deadline.
    pub drained: bool,
    /// How long the drain waited.
    pub waited: Duration,
    /// Calls still in flight when the deadline expired (0 when
    /// `drained`). Their callers get structured errors at shutdown.
    pub abandoned_in_flight: u32,
    /// The final metrics exposition, rendered after the drain wait and
    /// before teardown (the flush a scraper can no longer perform).
    pub final_metrics: String,
}

/// The fault-isolated multi-tenant execution service. Cheap to clone
/// (a handle); see the module docs for the architecture.
#[derive(Clone)]
pub struct ExecService {
    inner: Arc<Inner>,
}

/// Locks a mutex, recovering from a poisoned lock (the storage/serve
/// contract: shared state must stay usable after a panicking holder).
fn lock_plain<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn now_ms(started: Instant) -> u64 {
    started.elapsed().as_millis() as u64
}

impl ExecService {
    /// A service over in-memory cache shards.
    #[must_use]
    pub fn new(config: ServeConfig) -> ExecService {
        ExecService::with_storage(config, |_| Box::new(MemStorage::new()) as BoxedStorage)
    }

    /// A service whose cache shards come from `mk` (tests inject
    /// `FaultyStorage` here).
    #[must_use]
    pub fn with_storage(
        config: ServeConfig,
        mk: impl FnMut(usize) -> BoxedStorage,
    ) -> ExecService {
        let storage = ShardedStorage::new(config.shards, mk);
        let monitor_interval = config.monitor_interval;
        let inner = Arc::new(Inner {
            config,
            storage,
            tenants: RwLock::new(BTreeMap::new()),
            started: Instant::now(),
            draining: AtomicBool::new(false),
            drain_duration_ms: AtomicU64::new(0),
            monitor: Mutex::new(None),
            monitor_stop: Arc::new((Mutex::new(false), Condvar::new())),
        });
        if monitor_interval > Duration::ZERO {
            // Weak: the monitor must not keep the service alive — the
            // last user handle dropping tears everything down.
            let weak = Arc::downgrade(&inner);
            let stop = Arc::clone(&inner.monitor_stop);
            let handle = std::thread::Builder::new()
                .name("llva-serve:monitor".to_string())
                .spawn(move || monitor_loop(&weak, &stop, monitor_interval))
                .expect("spawn supervision monitor");
            *lock_plain(&inner.monitor) = Some(handle);
        }
        ExecService { inner }
    }

    /// The service configuration.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.inner.config
    }

    /// A handle to the sharded translation cache (tests reach through
    /// this to disarm fault plans or inspect shards).
    #[must_use]
    pub fn storage(&self) -> &ShardedStorage<BoxedStorage> {
        &self.inner.storage
    }

    fn tenants(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<String, Arc<TenantHandle>>> {
        self.inner
            .tenants
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn handle(&self, tenant: &str) -> Result<Arc<TenantHandle>, ServeError> {
        self.tenants()
            .get(tenant)
            .cloned()
            .ok_or_else(|| ServeError::UnknownTenant(tenant.to_string()))
    }

    fn check_draining(&self, handle: &TenantHandle) -> Result<(), ServeError> {
        if self.inner.draining.load(Ordering::Acquire) {
            handle
                .shared
                .counters
                .rejected_draining
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Draining);
        }
        Ok(())
    }

    /// Registers a tenant and spawns its executor thread.
    ///
    /// # Errors
    ///
    /// [`ServeError::TenantExists`] on a duplicate name;
    /// [`ServeError::Draining`] once a drain started.
    pub fn add_tenant(&self, name: &str, quota: TenantQuota) -> Result<(), ServeError> {
        if self.inner.draining.load(Ordering::Acquire) {
            return Err(ServeError::Draining);
        }
        let mut tenants = self
            .inner
            .tenants
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if tenants.contains_key(name) {
            return Err(ServeError::TenantExists(name.to_string()));
        }
        let shared = Arc::new(TenantShared {
            counters: TenantCounters::default(),
            in_flight: AtomicU32::new(0),
            fuel_remaining: AtomicU64::new(quota.fuel_budget),
            snapshot: Mutex::new(TenantSnapshot::default()),
            epoch: AtomicU64::new(1),
            restarts: AtomicU64::new(0),
            busy_since_ms: AtomicU64::new(0),
            heartbeat: AtomicU64::new(0),
            retired: AtomicBool::new(false),
            last_crash: Mutex::new(None),
            journal: Mutex::new(Journal::default()),
            breakers: Mutex::new(BTreeMap::new()),
            kills_armed: AtomicBool::new(false),
            kill_plan: Mutex::new(VecDeque::new()),
        });
        // Queue depth = in-flight quota: admission's CAS already gates
        // every send, so the channel can never reject an admitted
        // command, and memory stays bounded by construction.
        let (sender, receiver) = mpsc::sync_channel(quota.max_in_flight.max(1) as usize);
        let thread = spawn_executor(
            ExecutorSpec {
                name: name.to_string(),
                epoch: 1,
                shared: Arc::clone(&shared),
                config: self.inner.config.clone(),
                storage: self.inner.storage.clone(),
                quota,
                started: self.inner.started,
            },
            receiver,
        );
        tenants.insert(
            name.to_string(),
            Arc::new(TenantHandle {
                quota,
                shared,
                sender: RwLock::new(sender),
                thread: Mutex::new(Some(thread)),
                abandoned: Mutex::new(Vec::new()),
            }),
        );
        Ok(())
    }

    /// Unregisters a tenant: shuts its executor down (draining queued
    /// commands first) and joins the thread(s).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`].
    pub fn remove_tenant(&self, name: &str) -> Result<(), ServeError> {
        let handle = {
            let mut tenants = self
                .inner
                .tenants
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            tenants
                .remove(name)
                .ok_or_else(|| ServeError::UnknownTenant(name.to_string()))?
        };
        stop_tenant(&handle);
        Ok(())
    }

    /// Registered tenant names, sorted.
    #[must_use]
    pub fn tenant_names(&self) -> Vec<String> {
        self.tenants().keys().cloned().collect()
    }

    /// The tenant's quota, if it exists.
    #[must_use]
    pub fn tenant_quota(&self, tenant: &str) -> Option<TenantQuota> {
        self.tenants().get(tenant).map(|h| h.quota)
    }

    /// Calls currently admitted but unanswered for a tenant.
    #[must_use]
    pub fn tenant_in_flight(&self, tenant: &str) -> Option<u32> {
        self.tenants()
            .get(tenant)
            .map(|h| h.shared.in_flight.load(Ordering::Acquire))
    }

    /// A tenant's admission/outcome counters.
    #[must_use]
    pub fn tenant_counters(&self, tenant: &str) -> Option<CounterValues> {
        self.tenants()
            .get(tenant)
            .map(|h| h.shared.counters.values())
    }

    /// Fuel remaining in a tenant's budget.
    #[must_use]
    pub fn tenant_fuel_remaining(&self, tenant: &str) -> Option<u64> {
        self.tenants()
            .get(tenant)
            .map(|h| h.shared.fuel_remaining.load(Ordering::Acquire))
    }

    /// The tenant's latest executor-published health snapshot.
    #[must_use]
    pub fn tenant_snapshot(&self, tenant: &str) -> Option<TenantSnapshot> {
        self.tenants()
            .get(tenant)
            .map(|h| lock_plain(&h.shared.snapshot).clone())
    }

    /// Lifetime executor respawns for a tenant.
    #[must_use]
    pub fn tenant_restarts(&self, tenant: &str) -> Option<u64> {
        self.tenants()
            .get(tenant)
            .map(|h| h.shared.restarts.load(Ordering::Acquire))
    }

    /// The tenant's current executor epoch (1 at creation, +1 per
    /// respawn).
    #[must_use]
    pub fn tenant_epoch(&self, tenant: &str) -> Option<u64> {
        self.tenants()
            .get(tenant)
            .map(|h| h.shared.epoch.load(Ordering::Acquire))
    }

    /// Panic message of the tenant's most recent executor crash, if
    /// any executor has crashed.
    #[must_use]
    pub fn tenant_last_crash(&self, tenant: &str) -> Option<Option<String>> {
        self.tenants()
            .get(tenant)
            .map(|h| lock_plain(&h.shared.last_crash).clone())
    }

    /// Current circuit-breaker states for a tenant (one per
    /// `(module, function)` pair that has ever recorded an outcome
    /// while breakers were enabled).
    #[must_use]
    pub fn tenant_breakers(&self, tenant: &str) -> Option<Vec<BreakerSnapshot>> {
        self.tenants().get(tenant).map(|h| {
            lock_plain(&h.shared.breakers)
                .iter()
                .map(|((module, function), b)| BreakerSnapshot {
                    module: module.clone(),
                    function: function.clone(),
                    state: b.state,
                    opened_total: b.opened_total,
                    failures: b.failures,
                })
                .collect()
        })
    }

    /// Recovery-journal size for a tenant: `(modules, approximate
    /// bytes)` — what a respawn would rebuild from.
    #[must_use]
    pub fn tenant_journal(&self, tenant: &str) -> Option<(usize, u64)> {
        self.tenants().get(tenant).map(|h| {
            let journal = lock_plain(&h.shared.journal);
            let bytes: u64 = journal
                .modules
                .values()
                .map(|e| {
                    (e.source.len() + e.cache.len()) as u64
                        + 64 * e.quarantined.len() as u64
                        + 128
                })
                .sum();
            (journal.modules.len(), bytes)
        })
    }

    /// True once a [`ExecService::drain`] has started.
    #[must_use]
    pub fn draining(&self) -> bool {
        self.inner.draining.load(Ordering::Acquire)
    }

    /// How long the drain waited for in-flight work, in ms (0 until a
    /// drain ran).
    #[must_use]
    pub fn drain_duration_ms(&self) -> u64 {
        self.inner.drain_duration_ms.load(Ordering::Acquire)
    }

    /// Adds `fuel` back to a tenant's budget (operator hook; saturates
    /// at `u64::MAX`).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`].
    pub fn refill_fuel(&self, tenant: &str, fuel: u64) -> Result<(), ServeError> {
        let handle = self.handle(tenant)?;
        let _ = handle
            .shared
            .fuel_remaining
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                Some(cur.saturating_add(fuel))
            });
        Ok(())
    }

    /// Arms an executor kill plan on a tenant (see
    /// [`ExecutorKillPoint`]; an empty plan disarms). Unlike
    /// [`ExecService::arm_kills`] this never queues behind the
    /// executor — the plan must be armable even when the executor is
    /// about to die, and it survives respawns (a `Rebuild` entry fires
    /// *inside* the respawn).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`].
    pub fn arm_executor_kills(
        &self,
        tenant: &str,
        plan: &[ExecutorKill],
    ) -> Result<(), ServeError> {
        let handle = self.handle(tenant)?;
        let mut guard = lock_plain(&handle.shared.kill_plan);
        *guard = plan.iter().copied().collect();
        handle
            .shared
            .kills_armed
            .store(!guard.is_empty(), Ordering::Release);
        Ok(())
    }

    /// Takes one in-flight slot or rejects with [`ServeError::Busy`].
    /// The returned [`Ticket`] releases the slot exactly once — on
    /// drop, wherever the command ends up.
    fn admit_slot(handle: &TenantHandle) -> Result<Ticket, ServeError> {
        let shared = &handle.shared;
        let mut cur = shared.in_flight.load(Ordering::Acquire);
        loop {
            if cur >= handle.quota.max_in_flight {
                shared.counters.rejected_busy.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Busy { in_flight: cur });
            }
            match shared.in_flight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Ok(Ticket::new(Arc::clone(shared))),
                Err(now) => cur = now,
            }
        }
    }

    /// The structured error for a disconnected executor channel:
    /// [`ServeError::Shutdown`] when the tenant is being torn down,
    /// [`ServeError::ExecutorLost`] when the executor died under the
    /// caller (a respawn is coming).
    fn lost_error(handle: &TenantHandle) -> ServeError {
        if handle.shared.retired.load(Ordering::Acquire) {
            ServeError::Shutdown
        } else {
            handle
                .shared
                .counters
                .executor_lost
                .fetch_add(1, Ordering::Relaxed);
            ServeError::ExecutorLost {
                epoch: handle.shared.epoch.load(Ordering::Acquire),
            }
        }
    }

    /// Sends an admitted command (its ticket holds the slot). `Full`
    /// can only happen in the narrow race where a slot was released
    /// before its command left the queue; treat it as busy rather than
    /// blocking the caller. Dropping the rejected command releases the
    /// slot through its ticket.
    fn send_admitted(handle: &TenantHandle, command: Command) -> Result<(), ServeError> {
        let sender = handle
            .sender
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        match sender.try_send(command) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(rejected)) => {
                drop(rejected);
                handle
                    .shared
                    .counters
                    .rejected_busy
                    .fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Busy {
                    in_flight: handle.shared.in_flight.load(Ordering::Acquire),
                })
            }
            Err(TrySendError::Disconnected(rejected)) => {
                drop(rejected);
                Err(Self::lost_error(handle))
            }
        }
    }

    fn await_reply<T>(
        handle: &TenantHandle,
        reply: &mpsc::Receiver<Result<T, ServeError>>,
        deadline: Duration,
    ) -> Result<T, ServeError> {
        match reply.recv_timeout(deadline) {
            Ok(result) => result,
            Err(RecvTimeoutError::Timeout) => {
                // The executor still finishes the command (and its
                // ticket releases the slot); only this caller stops
                // waiting.
                handle
                    .shared
                    .counters
                    .deadline_expired
                    .fetch_add(1, Ordering::Relaxed);
                Err(ServeError::DeadlineExpired)
            }
            // The reply sender dropped unanswered: the command went
            // down with the executor (or its queue). The slot is
            // already released by the ticket's drop.
            Err(RecvTimeoutError::Disconnected) => Err(Self::lost_error(handle)),
        }
    }

    /// Loads a module for a tenant: parse, create/attach the
    /// content-addressed cache, run the parallel translation warmup,
    /// and stand up the module's supervisor.
    ///
    /// # Errors
    ///
    /// Admission rejections ([`ServeError::Busy`],
    /// [`ServeError::QuotaExceeded`]), [`ServeError::BadModule`], and
    /// the deadline/loss/shutdown errors.
    pub fn load_module(
        &self,
        tenant: &str,
        module: &str,
        source: &str,
    ) -> Result<LoadReply, ServeError> {
        let handle = self.handle(tenant)?;
        self.check_draining(&handle)?;
        if source.len() > handle.quota.max_module_bytes {
            handle
                .shared
                .counters
                .rejected_module
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::QuotaExceeded {
                kind: QuotaKind::Module,
                detail: format!(
                    "module source is {} bytes, quota allows {}",
                    source.len(),
                    handle.quota.max_module_bytes
                ),
            });
        }
        // The module *count* check happens executor-side only: the
        // executor's module map is authoritative and knows whether this
        // load is a fresh module or a same-name update.
        let ticket = Self::admit_slot(&handle)?;
        handle.shared.counters.admitted.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        Self::send_admitted(
            &handle,
            Command::Load {
                module: module.to_string(),
                source: source.to_string(),
                ticket,
                reply: tx,
            },
        )?;
        Self::await_reply(&handle, &rx, self.inner.config.load_deadline)
    }

    /// Unloads a module (its supervisor, incidents, and quarantines go
    /// with it; the shared cache keeps its entries for future loads).
    ///
    /// # Errors
    ///
    /// [`ServeError::NoSuchModule`] and the admission/deadline errors.
    pub fn unload_module(&self, tenant: &str, module: &str) -> Result<(), ServeError> {
        let handle = self.handle(tenant)?;
        self.check_draining(&handle)?;
        let ticket = Self::admit_slot(&handle)?;
        let (tx, rx) = mpsc::channel();
        Self::send_admitted(
            &handle,
            Command::Unload {
                module: module.to_string(),
                ticket,
                reply: tx,
            },
        )?;
        Self::await_reply(&handle, &rx, self.inner.config.call_deadline)
    }

    /// Calls `module`'s `entry` with the quota's default per-call fuel.
    ///
    /// # Errors
    ///
    /// See [`ExecService::call_with_fuel`].
    pub fn call(
        &self,
        tenant: &str,
        module: &str,
        entry: &str,
        args: &[u64],
    ) -> Result<CallResult, ServeError> {
        self.call_with_fuel(tenant, module, entry, args, 0)
    }

    /// Calls `module`'s `entry` with an explicit fuel request (`0` =
    /// the quota's per-call ceiling; always clamped to both the
    /// ceiling and the remaining budget).
    ///
    /// # Errors
    ///
    /// Admission rejections ([`ServeError::Busy`],
    /// [`ServeError::QuotaExceeded`] with [`QuotaKind::Fuel`],
    /// [`ServeError::BreakerOpen`], [`ServeError::Draining`]),
    /// [`ServeError::NoSuchModule`] / [`ServeError::NoSuchFunction`],
    /// [`ServeError::TiersExhausted`] after the bounded retry budget,
    /// [`ServeError::ExecutorLost`] when the executor dies under the
    /// call, and the deadline/shutdown errors.
    pub fn call_with_fuel(
        &self,
        tenant: &str,
        module: &str,
        entry: &str,
        args: &[u64],
        fuel: u64,
    ) -> Result<CallResult, ServeError> {
        let handle = self.handle(tenant)?;
        self.check_draining(&handle)?;
        if handle.shared.fuel_remaining.load(Ordering::Acquire) == 0 {
            handle
                .shared
                .counters
                .rejected_fuel
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::QuotaExceeded {
                kind: QuotaKind::Fuel,
                detail: format!("fuel budget of {} exhausted", handle.quota.fuel_budget),
            });
        }
        self.check_breaker(&handle, module, entry)?;
        let ticket = Self::admit_slot(&handle)?;
        handle.shared.counters.admitted.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        Self::send_admitted(
            &handle,
            Command::Call {
                module: module.to_string(),
                entry: entry.to_string(),
                args: args.to_vec(),
                fuel,
                ticket,
                reply: tx,
            },
        )?;
        Self::await_reply(&handle, &rx, self.inner.config.call_deadline)
    }

    /// The admission side of the circuit breaker: rejects while open,
    /// elects exactly one probe caller once the backoff elapsed, and
    /// reclaims a probe whose caller vanished (one further backoff
    /// period without a recorded outcome).
    fn check_breaker(
        &self,
        handle: &TenantHandle,
        module: &str,
        entry: &str,
    ) -> Result<(), ServeError> {
        let config = &self.inner.config;
        if config.breaker_threshold == 0 {
            return Ok(());
        }
        let retry_in_ms = {
            let mut breakers = lock_plain(&handle.shared.breakers);
            let Some(b) = breakers.get_mut(&(module.to_string(), entry.to_string())) else {
                return Ok(());
            };
            let now = Instant::now();
            match b.state {
                BreakerState::Closed => return Ok(()),
                BreakerState::Open => {
                    if now >= b.open_until {
                        // backoff elapsed: this caller is the probe
                        b.state = BreakerState::HalfOpen;
                        b.half_open_since = now;
                        return Ok(());
                    }
                    (b.open_until - now).as_millis() as u64
                }
                BreakerState::HalfOpen => {
                    let probe_age = now.duration_since(b.half_open_since);
                    let stale_after = breaker_backoff(config, b.opens);
                    if probe_age > stale_after {
                        // the elected probe never recorded an outcome
                        // (deadline-expired caller, lost executor):
                        // hand the probe to this caller
                        b.half_open_since = now;
                        return Ok(());
                    }
                    stale_after.saturating_sub(probe_age).as_millis() as u64
                }
            }
        };
        handle
            .shared
            .counters
            .rejected_breaker
            .fetch_add(1, Ordering::Relaxed);
        Err(ServeError::BreakerOpen { retry_in_ms })
    }

    /// Arms fault-injection kills on one tenant's module for the next
    /// `calls` calls (`0` = until re-armed; an empty `kills` disarms).
    /// Test/ops hook — this is how soaks sabotage a victim tenant
    /// without touching its neighbours.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoSuchModule`] and the admission/deadline errors.
    pub fn arm_kills(
        &self,
        tenant: &str,
        module: &str,
        kills: Vec<TierKill>,
        calls: u32,
    ) -> Result<(), ServeError> {
        let handle = self.handle(tenant)?;
        self.check_draining(&handle)?;
        let ticket = Self::admit_slot(&handle)?;
        let (tx, rx) = mpsc::channel();
        Self::send_admitted(
            &handle,
            Command::ArmKills {
                module: module.to_string(),
                kills,
                calls,
                ticket,
                reply: tx,
            },
        )?;
        Self::await_reply(&handle, &rx, self.inner.config.call_deadline)
    }

    /// Gracefully drains the whole service: admission closes
    /// immediately (new work gets [`ServeError::Draining`]), in-flight
    /// work is awaited up to `deadline`, the final metrics are
    /// rendered, and the service shuts down. Idempotent-ish: a second
    /// drain finds no tenants and returns immediately.
    pub fn drain(&self, deadline: Duration) -> DrainReport {
        self.inner.draining.store(true, Ordering::Release);
        let start = Instant::now();
        let (drained, abandoned_in_flight) = loop {
            let total: u32 = self
                .tenants()
                .values()
                .map(|h| h.shared.in_flight.load(Ordering::Acquire))
                .sum();
            if total == 0 {
                break (true, 0);
            }
            if start.elapsed() >= deadline {
                break (false, total);
            }
            // in-flight work resolves through executor replies or
            // monitor respawns; 5ms keeps the poll off any hot path
            std::thread::sleep(Duration::from_millis(5));
        };
        let waited = start.elapsed();
        self.inner
            .drain_duration_ms
            .store(waited.as_millis() as u64, Ordering::Release);
        let final_metrics = self.metrics_text();
        self.shutdown();
        DrainReport {
            drained,
            waited,
            abandoned_in_flight,
            final_metrics,
        }
    }

    /// Shuts every tenant executor down, joins the threads, and stops
    /// the supervision monitor. Called automatically when the last
    /// service handle drops.
    pub fn shutdown(&self) {
        let handles: Vec<Arc<TenantHandle>> = {
            let mut tenants = self
                .inner
                .tenants
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            std::mem::take(&mut *tenants).into_values().collect()
        };
        for handle in handles {
            stop_tenant(&handle);
        }
        stop_monitor(&self.inner);
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        let tenants = std::mem::take(
            &mut *self
                .tenants
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for handle in tenants.into_values() {
            stop_tenant(&handle);
        }
        stop_monitor(self);
    }
}

fn stop_monitor(inner: &Inner) {
    {
        let (lock, cvar) = &*inner.monitor_stop;
        *lock_plain(lock) = true;
        cvar.notify_all();
    }
    let handle = lock_plain(&inner.monitor).take();
    if let Some(handle) = handle {
        // The last service Arc can drop *on* the monitor thread (it
        // upgrades its Weak during sweeps): never self-join.
        if handle.thread().id() != std::thread::current().id() {
            let _ = handle.join();
        }
    }
}

fn stop_tenant(handle: &TenantHandle) {
    // Retire first: the monitor must not respawn into the teardown,
    // and callers racing us get Shutdown, not ExecutorLost.
    handle.shared.retired.store(true, Ordering::Release);
    let sender = {
        // The thread lock serializes against an in-progress respawn
        // (which swaps the sender under the same lock).
        let _guard = lock_plain(&handle.thread);
        handle
            .sender
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    };
    // `send` (not `try_send`): queued commands drain first, then the
    // executor sees Shutdown. The queue is bounded, so this blocks at
    // most `max_in_flight` commands long; a dead executor's dropped
    // receiver makes it return an error immediately.
    let _ = sender.send(Command::Shutdown);
    let thread = lock_plain(&handle.thread).take();
    if let Some(thread) = thread {
        let _ = thread.join();
    }
    // Wedged-then-replaced executors: their last command is
    // fuel-bounded, so these joins terminate.
    for abandoned in std::mem::take(&mut *lock_plain(&handle.abandoned)) {
        let _ = abandoned.join();
    }
}

// ---------------------------------------------------------------------------
// Supervision monitor
// ---------------------------------------------------------------------------

fn monitor_loop(
    service: &Weak<Inner>,
    stop: &Arc<(Mutex<bool>, Condvar)>,
    interval: Duration,
) {
    loop {
        {
            let (lock, cvar) = &**stop;
            let guard = lock_plain(lock);
            if *guard {
                return;
            }
            let (guard, _) = cvar
                .wait_timeout(guard, interval)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if *guard {
                return;
            }
        }
        let Some(inner) = service.upgrade() else {
            return;
        };
        let tenants: Vec<(String, Arc<TenantHandle>)> = inner
            .tenants
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(name, handle)| (name.clone(), Arc::clone(handle)))
            .collect();
        for (name, handle) in tenants {
            respawn_if_unhealthy(&inner, &name, &handle);
        }
    }
}

/// Checks one tenant's executor and respawns it when dead (thread
/// finished — an escaped panic) or wedged (busy past the deadline
/// multiple). No-op for healthy or retired tenants.
fn respawn_if_unhealthy(inner: &Arc<Inner>, name: &str, handle: &Arc<TenantHandle>) {
    let shared = &handle.shared;
    if shared.retired.load(Ordering::Acquire) {
        return;
    }
    let mut thread_guard = lock_plain(&handle.thread);
    // re-check under the lock: a concurrent stop_tenant may have
    // retired the tenant between the fast check and here
    if shared.retired.load(Ordering::Acquire) {
        return;
    }
    let dead = thread_guard.as_ref().is_none_or(JoinHandle::is_finished);
    let wedged = !dead && inner.config.wedge_multiple > 0 && {
        let busy = shared.busy_since_ms.load(Ordering::Acquire);
        let wedge_ms = (inner.config.call_deadline.as_millis() as u64)
            .saturating_mul(u64::from(inner.config.wedge_multiple))
            .max(1);
        busy != 0 && now_ms(inner.started).saturating_sub(busy) > wedge_ms
    };
    if !dead && !wedged {
        return;
    }
    // Epoch fence FIRST: once bumped, every write from the old
    // executor (snapshot, journal, breakers) is discarded, and the old
    // executor exits at its next loop turn.
    let epoch = shared.epoch.fetch_add(1, Ordering::AcqRel) + 1;
    shared.restarts.fetch_add(1, Ordering::Relaxed);
    shared.busy_since_ms.store(0, Ordering::Release);
    let (sender, receiver) = mpsc::sync_channel(handle.quota.max_in_flight.max(1) as usize);
    {
        // Swapping drops the old channel's only root sender: a dead
        // executor's queued commands are already dropped (tickets
        // released, callers answered ExecutorLost); an idle superseded
        // executor's recv disconnects and it exits.
        let mut guard = handle
            .sender
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *guard = sender;
    }
    let new_thread = spawn_executor(
        ExecutorSpec {
            name: name.to_string(),
            epoch,
            shared: Arc::clone(shared),
            config: inner.config.clone(),
            storage: inner.storage.clone(),
            quota: handle.quota,
            started: inner.started,
        },
        receiver,
    );
    let old = thread_guard.replace(new_thread);
    drop(thread_guard);
    if let Some(old) = old {
        if old.is_finished() {
            // dead: reaping a finished thread cannot block the monitor
            let _ = old.join();
        } else {
            // wedged: never block the monitor on it — its current
            // command is fuel-bounded and it parks itself out at the
            // epoch fence; the join happens at tenant stop
            lock_plain(&handle.abandoned).push(old);
        }
    }
}

// ---------------------------------------------------------------------------
// Executor side (one thread per tenant; owns all non-Send state)
// ---------------------------------------------------------------------------

/// Everything an executor thread is born with.
struct ExecutorSpec {
    name: String,
    /// The epoch this executor belongs to; all its shared-state writes
    /// are fenced against `shared.epoch`.
    epoch: u64,
    shared: Arc<TenantShared>,
    config: ServeConfig,
    storage: ShardedStorage<BoxedStorage>,
    quota: TenantQuota,
    started: Instant,
}

struct ModuleRuntime {
    supervisor: Supervisor,
    cache: String,
    functions: usize,
    warmup: TranslationStats,
    /// Counter baselines inherited from the previous executor epoch
    /// (zero for a freshly loaded module).
    carried: CarriedStats,
    /// Armed-kill countdown: `Some(n)` clears the kills after `n` more
    /// calls; `None` leaves them armed.
    kill_calls_left: Option<u32>,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Spawns an executor thread. The whole loop runs under
/// `catch_unwind`, so an escaped panic — injected or real — records a
/// crash message and lets the thread finish cleanly; the monitor's
/// `is_finished` check treats both identically.
fn spawn_executor(spec: ExecutorSpec, receiver: Receiver<Command>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("llva-serve:{}#e{}", spec.name, spec.epoch))
        .spawn(move || {
            let shared = Arc::clone(&spec.shared);
            if let Err(payload) =
                panic::catch_unwind(AssertUnwindSafe(|| executor_loop(&spec, &receiver)))
            {
                *lock_plain(&shared.last_crash) = Some(panic_message(payload));
            }
        })
        .expect("spawn tenant executor")
}

/// Fires an armed executor kill if the plan's front entry matches this
/// injection point (see [`ExecService::arm_executor_kills`] and
/// [`executor_kill_from_env`]). Firing is a plain panic: it unwinds
/// through the loop (dropping the in-hand command, whose ticket and
/// reply sender resolve the caller) into the spawn wrapper.
fn maybe_kill(shared: &TenantShared, point: ExecutorKillPoint) {
    if !shared.kills_armed.load(Ordering::Relaxed) {
        return;
    }
    let mut plan = lock_plain(&shared.kill_plan);
    let Some(front) = plan.front_mut() else {
        shared.kills_armed.store(false, Ordering::Relaxed);
        return;
    };
    if front.point != point {
        return;
    }
    if front.after > 1 {
        front.after -= 1;
        return;
    }
    plan.pop_front();
    if plan.is_empty() {
        shared.kills_armed.store(false, Ordering::Relaxed);
    }
    drop(plan);
    panic::panic_any(format!("injected executor kill at {point}"));
}

/// Runs `f` against the journal iff this executor's epoch is still
/// current, stamping the journal with it. Returns `None` (without
/// running `f`) for a superseded executor.
fn with_journal<R>(
    shared: &TenantShared,
    my_epoch: u64,
    f: impl FnOnce(&mut Journal) -> R,
) -> Option<R> {
    let mut journal = lock_plain(&shared.journal);
    if my_epoch < journal.epoch {
        return None;
    }
    journal.epoch = my_epoch;
    Some(f(&mut journal))
}

fn executor_loop(spec: &ExecutorSpec, receiver: &Receiver<Command>) {
    let shared = &spec.shared;
    let mut modules = rebuild_from_journal(spec);
    publish_snapshot(spec.epoch, shared, &modules);
    loop {
        let Ok(command) = receiver.recv() else {
            // every root sender dropped: respawn swapped us out while
            // idle, or the tenant handle is gone
            return;
        };
        if shared.epoch.load(Ordering::Acquire) != spec.epoch {
            // superseded (we were declared wedged): drop the command —
            // its ticket and reply sender answer the caller — and get
            // out of the new executor's way
            return;
        }
        maybe_kill(shared, ExecutorKillPoint::Recv);
        shared
            .busy_since_ms
            .store(now_ms(spec.started).max(1), Ordering::Release);
        match command {
            Command::Shutdown => return,
            Command::Load { module, source, ticket, reply } => {
                let result = panic::catch_unwind(AssertUnwindSafe(|| {
                    handle_load(&mut modules, spec, &module, &source)
                }))
                .unwrap_or_else(|p| Err(ServeError::Internal(panic_message(p))));
                // Publish + release before replying: a caller that acts
                // on the reply (metrics scrape, next call) must see this
                // command's snapshot and its freed slot.
                publish_snapshot(spec.epoch, shared, &modules);
                maybe_kill(shared, ExecutorKillPoint::PreReply);
                ticket.release();
                let _ = reply.send(result);
            }
            Command::Unload { module, ticket, reply } => {
                let result = if modules.remove(&module).is_some() {
                    with_journal(shared, spec.epoch, |journal| {
                        journal.modules.remove(&module);
                    });
                    Ok(())
                } else {
                    Err(ServeError::NoSuchModule(module))
                };
                publish_snapshot(spec.epoch, shared, &modules);
                maybe_kill(shared, ExecutorKillPoint::PreReply);
                ticket.release();
                let _ = reply.send(result);
            }
            Command::Call { module, entry, args, fuel, ticket, reply } => {
                let result = panic::catch_unwind(AssertUnwindSafe(|| {
                    handle_call(&mut modules, spec, &module, &entry, &args, fuel)
                }))
                .unwrap_or_else(|p| Err(ServeError::Internal(panic_message(p))));
                match &result {
                    Ok(run) => {
                        let counter = match run.outcome {
                            TierOutcome::Value(_) => &shared.counters.calls_ok,
                            TierOutcome::Trap(_) => &shared.counters.calls_trapped,
                            TierOutcome::OutOfFuel => &shared.counters.calls_out_of_fuel,
                        };
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(ServeError::TiersExhausted { .. }) => {
                        shared.counters.calls_exhausted.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {}
                }
                record_breaker(spec, &module, &entry, &result);
                publish_snapshot(spec.epoch, shared, &modules);
                maybe_kill(shared, ExecutorKillPoint::PreReply);
                ticket.release();
                let _ = reply.send(result);
            }
            Command::ArmKills { module, kills, calls, ticket, reply } => {
                let result = match modules.get_mut(&module) {
                    None => Err(ServeError::NoSuchModule(module)),
                    Some(rt) => {
                        rt.supervisor.clear_kills();
                        for kill in kills {
                            rt.supervisor.arm_kill(kill);
                        }
                        rt.kill_calls_left = (calls > 0).then_some(calls);
                        Ok(())
                    }
                };
                ticket.release();
                let _ = reply.send(result);
            }
        }
        if shared.epoch.load(Ordering::Acquire) != spec.epoch {
            // a respawn happened while we were busy (wedge verdict):
            // don't touch the heartbeat the new executor now owns
            return;
        }
        shared.busy_since_ms.store(0, Ordering::Release);
        shared.heartbeat.fetch_add(1, Ordering::Relaxed);
        maybe_kill(shared, ExecutorKillPoint::PostReply);
    }
}

/// Rebuilds the module table of a (re)spawned executor from the
/// tenant's journal: every journaled module is re-loaded through the
/// shared cache (warm image attach — the image was published at first
/// load), its lifetime counters are seeded from the carried baselines,
/// and its quarantines are re-imposed so a faulty tier is not retried
/// just because the process state was rebuilt. A module whose rebuild
/// fails (hostile storage) is marked failed and skipped — it answers
/// `NoSuchModule` until a later rebuild or an explicit re-load heals
/// it; the executor itself always comes up.
fn rebuild_from_journal(spec: &ExecutorSpec) -> BTreeMap<String, ModuleRuntime> {
    let shared = &spec.shared;
    maybe_kill(shared, ExecutorKillPoint::Rebuild);
    let entries: Vec<(String, JournalEntry)> = lock_plain(&shared.journal)
        .modules
        .iter()
        .map(|(name, entry)| (name.clone(), entry.clone()))
        .collect();
    let mut modules = BTreeMap::new();
    for (name, entry) in entries {
        let rebuilt = panic::catch_unwind(AssertUnwindSafe(|| {
            build_runtime(spec, &entry.source)
        }))
        .unwrap_or_else(|p| Err(ServeError::Internal(panic_message(p))));
        match rebuilt {
            // Journal integrity: the rebuilt module must address the
            // same cache (same stamp) and define the same functions as
            // what was journaled — anything else means the journal and
            // the source text disagree, and warm-attached native code
            // would be for the wrong module.
            Ok((_, reply))
                if reply.cache != format!("m{:016x}", entry.stamp)
                    || reply.functions != entry.functions =>
            {
                with_journal(shared, spec.epoch, |journal| {
                    if let Some(e) = journal.modules.get_mut(&name) {
                        e.failed = true;
                    }
                });
            }
            Ok((mut rt, _)) => {
                rt.carried = entry.carried;
                for (function, tier) in &entry.quarantined {
                    rt.supervisor.impose_quarantine(function, *tier);
                }
                with_journal(shared, spec.epoch, |journal| {
                    if let Some(e) = journal.modules.get_mut(&name) {
                        e.failed = false;
                    }
                });
                modules.insert(name, rt);
            }
            Err(_) => {
                with_journal(shared, spec.epoch, |journal| {
                    if let Some(e) = journal.modules.get_mut(&name) {
                        e.failed = true;
                    }
                });
            }
        }
    }
    modules
}

/// Records a call outcome against the module/function breaker: a value
/// (or trap/out-of-fuel — the tiers answered) closes it, a
/// `TiersExhausted` counts toward or deepens the open state. Other
/// errors (no such module, internal) are neutral. Epoch-fenced like
/// every shared write.
fn record_breaker(
    spec: &ExecutorSpec,
    module: &str,
    entry: &str,
    result: &Result<CallResult, ServeError>,
) {
    if spec.config.breaker_threshold == 0 {
        return;
    }
    let failure = matches!(result, Err(ServeError::TiersExhausted { .. }));
    if !failure && result.is_err() {
        return;
    }
    let shared = &spec.shared;
    if shared.epoch.load(Ordering::Acquire) != spec.epoch {
        return;
    }
    let mut breakers = lock_plain(&shared.breakers);
    if !failure && !breakers.contains_key(&(module.to_string(), entry.to_string())) {
        // success with no breaker history: don't allocate an entry
        return;
    }
    let breaker = breakers
        .entry((module.to_string(), entry.to_string()))
        .or_default();
    if !failure {
        breaker.failures = 0;
        breaker.opens = 0;
        breaker.state = BreakerState::Closed;
        return;
    }
    match breaker.state {
        BreakerState::Closed => {
            breaker.failures += 1;
            if breaker.failures >= spec.config.breaker_threshold {
                trip_breaker(breaker, &spec.config);
            }
        }
        // a failed half-open probe (or a failure racing the open
        // window) re-opens with deeper backoff
        BreakerState::HalfOpen | BreakerState::Open => trip_breaker(breaker, &spec.config),
    }
}

/// Builds a module runtime over the shared cache: parse, warm image
/// attach (zero-copy `mmap` when the storage exposes a file, falling
/// back to a read, falling back to a cold build-and-publish), parallel
/// translation warmup, and the supervisor. Used by both first loads
/// and journal rebuilds.
fn build_runtime(
    spec: &ExecutorSpec,
    source: &str,
) -> Result<(ModuleRuntime, LoadReply), ServeError> {
    let config = &spec.config;
    let storage = &spec.storage;
    let parsed = llva_core::parser::parse_module(source)
        .map_err(|e| ServeError::BadModule(e.to_string()))?;
    let functions = parsed
        .functions()
        .filter(|(_, f)| !f.is_declaration())
        .count();
    // Content-addressed cache: identical module text shares translations
    // across tenants; different text gets a disjoint cache, so tenants
    // can never thrash each other's entries.
    let module_stamp = llee::stamp(&parsed);
    let cache = format!("m{module_stamp:016x}");
    {
        let mut handle = storage.clone();
        handle.create_cache(&cache);
    }
    // Warm-load probe: an earlier process (or another tenant of this
    // shared cache) may have published a persistent module image under
    // IMAGE_ENTRY. Fast path: when the storage exposes the entry as a
    // file (DirStorage), mmap it zero-copy — the blob leads with an
    // 8-byte LE timestamp (== the module stamp), the image follows.
    // Validate the stamp from the prefix AND the image's own stamp
    // against this module before trusting it; any mismatch or error
    // degrades to the owned-read path, then to the cold path, never to
    // an error.
    let mut image: Option<Arc<LlvaImage>> = None;
    let mut image_mapped = false;
    #[cfg(unix)]
    if let Some(path) = storage.file_path(&cache, IMAGE_ENTRY) {
        if blob_timestamp(&path) == Some(module_stamp) {
            if let Ok(img) = llva_engine::image::map_image_file(&path, 8) {
                if img.stamp() == module_stamp {
                    image = Some(Arc::new(img));
                    image_mapped = true;
                }
            }
        }
    }
    if image.is_none() {
        image = storage
            .read(&cache, IMAGE_ENTRY)
            .filter(|&(_, ts)| ts == module_stamp)
            .and_then(|(bytes, _)| LlvaImage::parse(bytes).ok())
            .filter(|img| img.stamp() == module_stamp)
            .map(Arc::new);
    }
    // Translation warmup through the worker pool: the module's supervisor
    // then starts with a hot cache (its per-call managers hit, not miss).
    // With an image, installed native code makes the warmup a no-op.
    let workers = if config.translate_workers == 0 {
        ExecutionManager::default_workers()
    } else {
        config.translate_workers
    };
    let mut warm =
        ExecutionManager::with_memory_size(parsed.clone(), config.isa, spec.quota.memory_bytes);
    warm.set_storage(Box::new(storage.clone()), &cache);
    if let Some(img) = &image {
        warm.set_image(img.clone());
    }
    warm.translate_all_parallel(workers)
        .map_err(|e| ServeError::BadModule(format!("translation failed: {e}")))?;
    let warmup = warm.stats();
    // Cold start: publish an image so every later load of this module —
    // any tenant, any process, any respawn — skips translation AND SSA
    // re-lowering. Built over the *parsed* module (its stamp is the
    // cache address); the native section carries the warm manager's
    // target-configured per-function stamps.
    if image.is_none() {
        let pre = PreModule::new(&parsed);
        pre.decode_all();
        let mut builder = ImageBuilder::new(&parsed);
        builder.add_predecode(&pre);
        builder.add_native(config.isa, &warm.native_image_entries());
        let bytes = builder.finish();
        let mut handle = storage.clone();
        handle.write(&cache, IMAGE_ENTRY, &bytes, module_stamp);
        image = LlvaImage::parse(bytes).ok().map(Arc::new);
    }
    drop(warm);

    let mut supervisor =
        Supervisor::with_memory_size(parsed, config.isa, spec.quota.memory_bytes);
    supervisor.set_storage(Box::new(storage.clone()), &cache);
    if let Some(img) = image {
        supervisor.set_image(img);
    }
    supervisor.set_max_faults(config.max_faults);
    supervisor.set_incident_capacity(config.incident_capacity);
    supervisor.set_cross_check(config.cross_check);
    if let Some(calls) = config.probe_after {
        supervisor.set_probe_after(calls);
    }
    if let Some(budget) = config.watchdog {
        supervisor.set_watchdog(budget);
    }
    let runtime = ModuleRuntime {
        supervisor,
        cache: cache.clone(),
        functions,
        warmup,
        carried: CarriedStats::default(),
        kill_calls_left: None,
    };
    let reply = LoadReply {
        module: String::new(),
        cache,
        functions,
        warmup,
        image_mapped,
    };
    Ok((runtime, reply))
}

/// Reads the 8-byte little-endian timestamp prefix of a `DirStorage`
/// blob without reading the payload (the whole point of the mmap fast
/// path is not to copy it).
#[cfg(unix)]
fn blob_timestamp(path: &std::path::Path) -> Option<u64> {
    use std::io::Read;
    let mut file = std::fs::File::open(path).ok()?;
    let mut prefix = [0u8; 8];
    file.read_exact(&mut prefix).ok()?;
    Some(u64::from_le_bytes(prefix))
}

fn handle_load(
    modules: &mut BTreeMap<String, ModuleRuntime>,
    spec: &ExecutorSpec,
    module_name: &str,
    source: &str,
) -> Result<LoadReply, ServeError> {
    let shared = &spec.shared;
    if modules.len() >= spec.quota.max_modules && !modules.contains_key(module_name) {
        shared.counters.rejected_module.fetch_add(1, Ordering::Relaxed);
        return Err(ServeError::QuotaExceeded {
            kind: QuotaKind::Module,
            detail: format!("{} module(s) already loaded", spec.quota.max_modules),
        });
    }
    let (runtime, mut reply) = build_runtime(spec, source)?;
    reply.module = module_name.to_string();
    // Journal the load for crash recovery: source (the rebuild input),
    // stamp/cache (the warm re-attach address), and fresh baselines —
    // a re-load of the same name is a new module, counters restart.
    let stamp = u64::from_str_radix(reply.cache.trim_start_matches('m'), 16).unwrap_or(0);
    with_journal(shared, spec.epoch, |journal| {
        journal.modules.insert(
            module_name.to_string(),
            JournalEntry {
                source: source.to_string(),
                stamp,
                cache: reply.cache.clone(),
                functions: reply.functions,
                carried: CarriedStats::default(),
                quarantined: Vec::new(),
                failed: false,
            },
        );
    });
    modules.insert(module_name.to_string(), runtime);
    Ok(reply)
}

fn handle_call(
    modules: &mut BTreeMap<String, ModuleRuntime>,
    spec: &ExecutorSpec,
    module: &str,
    entry: &str,
    args: &[u64],
    fuel: u64,
) -> Result<CallResult, ServeError> {
    let shared = &spec.shared;
    let config = &spec.config;
    let rt = modules
        .get_mut(module)
        .ok_or_else(|| ServeError::NoSuchModule(module.to_string()))?;
    // Clamp to the per-call ceiling AND the remaining budget: a tenant
    // on its last fuel can never overshoot the budget by more than the
    // final clamped call actually burns.
    let remaining = shared.fuel_remaining.load(Ordering::Acquire);
    let requested = if fuel == 0 { spec.quota.max_call_fuel } else { fuel };
    let call_fuel = requested.min(spec.quota.max_call_fuel).min(remaining.max(1));
    rt.supervisor.set_fuel(call_fuel);

    let mut retries_used = 0u32;
    let mut incidents_total = 0u32;
    let result = loop {
        let attempt = rt.supervisor.run(entry, args);
        // The armed-kill countdown ticks per supervisor attempt, not per
        // command: kills armed for N calls model a transient fault that
        // clears while the serve-level retry loop is still working the
        // same call, so a retry after the countdown runs against healthy
        // tiers — the deterministic stand-in for a fault that healed.
        if let Some(left) = rt.kill_calls_left {
            if left <= 1 {
                rt.supervisor.clear_kills();
                rt.kill_calls_left = None;
            } else {
                rt.kill_calls_left = Some(left - 1);
            }
        }
        match attempt {
            Ok(run) => {
                break Ok(CallResult {
                    outcome: run.outcome,
                    tier: run.tier,
                    degraded: run.degraded,
                    steps: run.steps,
                    retries: retries_used,
                });
            }
            Err(SupervisorError::NoSuchFunction(n)) => {
                break Err(ServeError::NoSuchFunction(n));
            }
            Err(SupervisorError::TiersExhausted { function, incidents }) => {
                incidents_total += incidents;
                if retries_used >= config.max_retries {
                    break Err(ServeError::TiersExhausted {
                        incidents: incidents_total,
                        retries: retries_used,
                    });
                }
                retries_used += 1;
                shared.counters.retries.fetch_add(1, Ordering::Relaxed);
                // Exponential backoff, then a clean ladder: a transient
                // storage fault heals across the retry; a genuinely
                // poisoned function just re-quarantines and exhausts
                // the bounded budget.
                std::thread::sleep(config.retry_backoff * (1u32 << (retries_used - 1).min(16)));
                rt.supervisor.lift_all_quarantines(&function);
            }
        }
    };
    if let Ok(run) = &result {
        shared.counters.fuel_used.fetch_add(run.steps, Ordering::Relaxed);
        let _ = shared
            .fuel_remaining
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                Some(cur.saturating_sub(run.steps))
            });
    }
    result
}

/// Publishes the tenant snapshot and refreshes the journal's carried
/// baselines — both epoch-fenced, so a superseded executor can never
/// overwrite the state of its replacement. Published counters are the
/// carried baselines plus this epoch's live counters: lifetime totals
/// that stay monotonic across respawns.
fn publish_snapshot(
    my_epoch: u64,
    shared: &TenantShared,
    modules: &BTreeMap<String, ModuleRuntime>,
) {
    let snapshot = TenantSnapshot {
        epoch: my_epoch,
        modules: modules
            .iter()
            .map(|(name, rt)| {
                let log = rt.supervisor.incident_log();
                let recent = log
                    .incidents()
                    .iter()
                    .rev()
                    .take(SNAPSHOT_RECENT_INCIDENTS)
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .into_iter()
                    .rev()
                    .collect();
                let mut tier_counters = rt.carried.tiers;
                for (acc, live) in tier_counters.iter_mut().zip(rt.supervisor.tier_counters()) {
                    acc.merge(live);
                }
                let mut translation = rt.carried.translation;
                translation.merge(&rt.warmup);
                translation.merge(&rt.supervisor.translation_stats());
                ModuleSnapshot {
                    name: name.clone(),
                    cache: rt.cache.clone(),
                    functions: rt.functions,
                    incidents_len: log.len(),
                    incidents_dropped: rt.carried.incidents_dropped + log.dropped(),
                    incidents_total: rt.carried.incidents_total + log.total_recorded(),
                    recent_incidents: recent,
                    quarantined: rt.supervisor.quarantined(),
                    tier_counters,
                    translation,
                }
            })
            .collect(),
    };
    // Refresh the journal with the published (lifetime) totals: if
    // this executor dies, its successor carries on from exactly what
    // the world last saw.
    with_journal(shared, my_epoch, |journal| {
        for m in &snapshot.modules {
            if let Some(e) = journal.modules.get_mut(&m.name) {
                e.carried = CarriedStats {
                    incidents_total: m.incidents_total,
                    incidents_dropped: m.incidents_dropped,
                    tiers: m.tier_counters,
                    translation: m.translation,
                };
                e.quarantined = m.quarantined.clone();
            }
        }
    });
    let mut guard = lock_plain(&shared.snapshot);
    if guard.epoch <= my_epoch {
        *guard = snapshot;
    }
}
