//! The full VISC pipeline on a real workload: compile one of the Table 2
//! benchmarks, run the link-time interprocedural optimizer on the
//! virtual object code (§4.2), and compare the simulated execution on
//! both implementation ISAs, optimized vs. unoptimized.
//!
//! Run with: `cargo run --example compile_and_run [workload-name]`

use llva::core::layout::TargetConfig;
use llva::engine::llee::{ExecutionManager, TargetIsa};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "181.mcf".to_string());
    let Some(w) = llva::workloads::by_name(&name) else {
        eprintln!("unknown workload '{name}'. Available:");
        for w in llva::workloads::all() {
            eprintln!("  {:<18} {}", w.name, w.description);
        }
        std::process::exit(1);
    };
    println!("=== {} — {} ===\n", w.name, w.description);

    // compile to virtual object code
    let module = w.compile(TargetConfig::default());
    println!(
        "minic source: {} lines  ->  {} LLVA instructions, {} functions",
        w.loc(),
        module.total_insts(),
        module.num_functions()
    );

    // link-time interprocedural optimization on the V-ISA (§4.2 item 1)
    let mut optimized = w.compile(TargetConfig::default());
    let mut pm = llva::opt::link_time_pipeline(&["main"]);
    let stats = pm.run(&mut optimized);
    println!("\nlink-time pipeline:");
    for s in &stats {
        println!(
            "  {:<12} {}  ({:?})",
            s.name,
            if s.changed { "changed" } else { "-" },
            s.duration
        );
    }
    println!(
        "optimized: {} LLVA instructions ({}% of original)\n",
        optimized.total_insts(),
        100 * optimized.total_insts() / module.total_insts().max(1)
    );

    // translate + execute on all three processors, optimized and not
    for isa in TargetIsa::ALL {
        for (label, m) in [("unoptimized", module.clone()), ("optimized", optimized.clone())] {
            let mut mgr = ExecutionManager::new(m, isa);
            let out = mgr.run("main", &[]).expect("runs");
            println!(
                "{isa:<5} {label:<12} result={:<8} native insts={:<6} dynamic insts={:<10} cycles={}",
                out.value,
                mgr.installed_insts(),
                out.stats.instructions,
                out.stats.cycles
            );
        }
    }
}
