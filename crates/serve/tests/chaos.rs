//! Self-healing soak and supervision tests — the acceptance proof for
//! executor lifecycle supervision (ISSUE 10).
//!
//! The headline soak kills a victim tenant's executor at every
//! injection point (`recv`, `pre-reply`, `post-reply`, and a chained
//! `recv`+`rebuild` crash loop) across several storage-chaos seeds,
//! while two healthy tenants hammer the same service. The claims under
//! test:
//!
//! * **healthy tenants never notice** — every bystander call is
//!   oracle-identical with zero incidents, while the victim's executor
//!   is being murdered on the thread next door;
//! * **no call hangs** — every call accepted before a crash resolves
//!   to a result or a structured error (`ExecutorLost`), and its
//!   in-flight slot is released exactly once;
//! * **recovery is fast and warm** — the victim serves oracle-correct
//!   answers within three calls of the respawn, with its modules
//!   rebuilt from the journal and re-attached from the shared image
//!   cache;
//! * **everything is observable** — restarts, lost calls, breaker
//!   transitions, and drain state all appear in the metrics text.
//!
//! CI crosses `LLVA_KILL_EXECUTOR` injection plans with
//! `LLVA_FAULT_SEED` storage chaos and `LLVA_KILL_TIER` tier kills;
//! all three env knobs are honored here.

use std::time::{Duration, Instant};

use llva_core::layout::TargetConfig;
use llva_core::printer::print_module;
use llva_engine::storage::{FaultPlan, FaultyStorage, MemStorage};
use llva_engine::supervisor::{kills_from_env, Tier, TierKill, TierOutcome};
use llva_serve::{
    executor_kill_from_env, BoxedStorage, BreakerState, ExecService, ExecutorKill,
    ExecutorKillPoint, ServeConfig, ServeError, TenantQuota,
};

/// Test module: a cheap oracle function and a fuel burner (the wedge
/// and deadline tests need a call that outlives its deadline).
const MINIC_SRC: &str = r"
int cheap() {
    int acc = 0;
    for (int i = 0; i < 7; i++) acc = acc + 6;
    return acc;
}

int spin() {
    int acc = 0;
    for (int i = 0; i < 1000000000; i++) acc = acc + i;
    return acc;
}
";

const ORACLE: u64 = 42;

fn module_text() -> String {
    let module = llva_minic::compile(MINIC_SRC, "chaostest", TargetConfig::default())
        .expect("test module compiles");
    print_module(&module)
}

/// A supervision-tuned config: fast monitor sweeps so respawn latency
/// doesn't dominate the soak, everything else default.
fn config() -> ServeConfig {
    ServeConfig {
        monitor_interval: Duration::from_millis(2),
        ..ServeConfig::default()
    }
}

fn seeds() -> Vec<u64> {
    match std::env::var("LLVA_FAULT_SEED") {
        Ok(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => vec![11, 23, 47],
    }
}

fn chaos(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        read_fail: 5,
        read_truncate: 6,
        read_bit_flip: 7,
        torn_write: 9,
        stale_timestamp: 8,
    }
}

/// The executor kill plans to sweep: one per injection point, plus a
/// chained plan whose second kill fires *inside the respawn's journal
/// rebuild* (a crash-during-recovery loop). `LLVA_KILL_EXECUTOR`
/// overrides with a single plan (the CI matrix axis).
fn kill_plans() -> Vec<Vec<ExecutorKill>> {
    let from_env = executor_kill_from_env();
    if !from_env.is_empty() {
        return vec![from_env];
    }
    vec![
        vec![ExecutorKill { point: ExecutorKillPoint::Recv, after: 1 }],
        vec![ExecutorKill { point: ExecutorKillPoint::PreReply, after: 1 }],
        vec![ExecutorKill { point: ExecutorKillPoint::PostReply, after: 1 }],
        vec![
            ExecutorKill { point: ExecutorKillPoint::Recv, after: 1 },
            ExecutorKill { point: ExecutorKillPoint::Rebuild, after: 1 },
        ],
    ]
}

/// Extracts `name{labels} value` from the metrics text.
fn metric_value(metrics: &str, sample: &str) -> u64 {
    metrics
        .lines()
        .find_map(|line| line.strip_prefix(sample)?.trim().parse().ok())
        .unwrap_or_else(|| panic!("metrics sample '{sample}' missing:\n{metrics}"))
}

fn wait_until(what: &str, deadline: Duration, mut done: impl FnMut() -> bool) {
    let limit = Instant::now() + deadline;
    while !done() {
        assert!(Instant::now() < limit, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

// ---------------------------------------------------------------------------
// The headline soak
// ---------------------------------------------------------------------------

#[test]
fn executor_murder_soak_heals_without_touching_neighbours() {
    let text = module_text();
    let tier_kills = kills_from_env();
    let mut healthy_calls = 0u64;

    for seed in seeds() {
        let svc = ExecService::with_storage(config(), |i| {
            Box::new(FaultyStorage::new(
                MemStorage::new(),
                chaos(seed.wrapping_mul(0x9e37_79b9).wrapping_add(i as u64)),
            )) as BoxedStorage
        });
        svc.add_tenant("victim", TenantQuota::default()).unwrap();
        svc.add_tenant("healthy-1", TenantQuota::default()).unwrap();
        svc.add_tenant("healthy-2", TenantQuota::default()).unwrap();
        for tenant in ["victim", "healthy-1", "healthy-2"] {
            svc.load_module(tenant, "w", &text)
                .unwrap_or_else(|e| panic!("seed {seed}: load for {tenant}: {e}"));
        }
        if !tier_kills.is_empty() {
            // the CI matrix crosses tier kills in: the victim's calls
            // then also degrade down the ladder while its executor is
            // being killed around them
            svc.arm_kills("victim", "w", tier_kills.clone(), 0).unwrap();
        }

        let mut expected_restarts = 0u64;
        for plan in kill_plans() {
            let before = svc.tenant_restarts("victim").unwrap();
            svc.arm_executor_kills("victim", &plan).unwrap();
            expected_restarts += plan.len() as u64;

            std::thread::scope(|scope| {
                // a burst of concurrent victim calls: at least one dies
                // with the executor; every single one must RESOLVE —
                // Ok(oracle) or a structured error, never a hang
                let victims: Vec<_> = (0..4)
                    .map(|i| {
                        let svc = svc.clone();
                        scope.spawn(move || {
                            match svc.call("victim", "w", "cheap", &[]) {
                                Ok(run) => {
                                    assert_eq!(
                                        run.value(),
                                        Some(ORACLE),
                                        "seed {seed} caller {i}: victim answered WRONG"
                                    );
                                }
                                Err(
                                    ServeError::ExecutorLost { .. }
                                    | ServeError::Busy { .. }
                                    | ServeError::TiersExhausted { .. }
                                    | ServeError::NoSuchModule(_),
                                ) => {}
                                Err(e) =>

                                    panic!("seed {seed} caller {i}: unstructured failure: {e}"),
                            }
                        })
                    })
                    .collect();
                // bystanders hammer concurrently with the murders
                let healthy: Vec<_> = ["healthy-1", "healthy-2"]
                    .into_iter()
                    .map(|tenant| {
                        let svc = svc.clone();
                        scope.spawn(move || {
                            for round in 0..3 {
                                let run =
                                    svc.call(tenant, "w", "cheap", &[]).unwrap_or_else(|e| {
                                        panic!("seed {seed} round {round}: {tenant}: {e}")
                                    });
                                assert_eq!(
                                    run.value(),
                                    Some(ORACLE),
                                    "seed {seed} round {round}: {tenant} diverged"
                                );
                            }
                        })
                    })
                    .collect();
                for v in victims {
                    v.join().expect("victim caller hung or panicked");
                }
                for h in healthy {
                    h.join().expect("healthy caller hung or panicked");
                }
                healthy_calls += 6;
            });

            // the monitor must notice every kill in the plan (a Rebuild
            // kill crashes the respawned executor and forces another)
            wait_until("executor respawn", Duration::from_secs(20), || {
                svc.tenant_restarts("victim").unwrap() >= before + plan.len() as u64
            });
            // exactly-once slot release: a leak would pin this above
            // zero forever, a double release would wrap the u32
            wait_until("victim in-flight drain", Duration::from_secs(20), || {
                svc.tenant_in_flight("victim") == Some(0)
            });

            // warm recovery: oracle-correct within three calls of the
            // respawn, through the journal-rebuilt executor
            let mut recovered = false;
            for _ in 0..3 {
                match svc.call("victim", "w", "cheap", &[]) {
                    Ok(run) if run.value() == Some(ORACLE) => {
                        recovered = true;
                        break;
                    }
                    Ok(run) => panic!("seed {seed}: recovered victim answered {run:?}"),
                    Err(ServeError::ExecutorLost { .. } | ServeError::NoSuchModule(_)) => {
                        // a racing respawn (or a rebuild the chaos seed
                        // made fail on first try) — the next call counts
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(ServeError::TiersExhausted { .. }) if !tier_kills.is_empty() => {
                        // all-tier kills from the CI matrix: no rung can
                        // answer by design; recovery is proven by the
                        // structured error itself coming from a live,
                        // rebuilt executor
                        recovered = true;
                        break;
                    }
                    Err(e) => panic!("seed {seed}: recovery call failed: {e}"),
                }
            }
            assert!(
                recovered,
                "seed {seed}: victim not oracle-correct within 3 calls of respawn (plan {plan:?})"
            );
        }

        assert_eq!(
            svc.tenant_restarts("victim").unwrap(),
            expected_restarts,
            "seed {seed}: every injected kill produced exactly one respawn"
        );
        assert!(
            svc.tenant_last_crash("victim")
                .unwrap()
                .expect("crash message recorded")
                .contains("injected executor kill"),
            "seed {seed}: the injected panic is attributed"
        );
        // the victim's epoch advanced in lockstep with the restarts
        assert_eq!(
            svc.tenant_epoch("victim").unwrap(),
            1 + expected_restarts,
            "seed {seed}"
        );

        // --- bystanders: zero divergences, zero collateral ---
        for tenant in ["healthy-1", "healthy-2"] {
            let counters = svc.tenant_counters(tenant).unwrap();
            assert_eq!(counters.rejected_total(), 0, "seed {seed}: {tenant}");
            assert_eq!(counters.executor_lost, 0, "seed {seed}: {tenant}");
            let snapshot = svc.tenant_snapshot(tenant).unwrap();
            assert_eq!(snapshot.epoch, 1, "seed {seed}: {tenant} never respawned");
            assert_eq!(
                snapshot.modules[0].incidents_total, 0,
                "seed {seed}: {tenant} must see no incidents during the murders"
            );
        }

        // --- observability: restarts and losses in the metrics text ---
        let metrics = svc.metrics_text();
        assert_eq!(
            metric_value(
                &metrics,
                r#"llva_serve_executor_restarts_total{tenant="victim"}"#
            ),
            expected_restarts,
            "seed {seed}: restarts visible in metrics"
        );
        assert_eq!(
            metric_value(
                &metrics,
                r#"llva_serve_calls_total{tenant="victim",result="executor_lost"}"#
            ),
            svc.tenant_counters("victim").unwrap().executor_lost,
            "seed {seed}: lost calls visible in metrics"
        );
        assert_eq!(
            metric_value(&metrics, r#"llva_serve_journal_modules{tenant="victim"}"#),
            1,
            "seed {seed}: the journal holds the loaded module"
        );
    }
    assert!(healthy_calls > 0, "the soak exercised bystanders");
}

// ---------------------------------------------------------------------------
// Slot accounting (satellite: exactly-once release)
// ---------------------------------------------------------------------------

/// A `pre-reply` kill fires *after* the work is done but *before* the
/// executor's explicit slot release — the release must happen on the
/// unwind path (ticket drop), exactly once, and the caller must get a
/// structured `ExecutorLost`, not a hang.
#[test]
fn pre_reply_crash_releases_the_slot_exactly_once() {
    let svc = ExecService::new(config());
    svc.add_tenant("acme", TenantQuota::default()).unwrap();
    svc.load_module("acme", "m", &module_text()).unwrap();

    svc.arm_executor_kills(
        "acme",
        &[ExecutorKill { point: ExecutorKillPoint::PreReply, after: 1 }],
    )
    .unwrap();
    match svc.call("acme", "m", "cheap", &[]) {
        Err(ServeError::ExecutorLost { epoch }) => assert!(epoch >= 1),
        other => panic!("expected ExecutorLost, got {other:?}"),
    }
    wait_until("slot release", Duration::from_secs(10), || {
        svc.tenant_in_flight("acme") == Some(0)
    });
    wait_until("respawn", Duration::from_secs(10), || {
        svc.tenant_restarts("acme") == Some(1)
    });
    // the respawned executor serves, and admission still has all its
    // slots (a leak would eventually reject with Busy)
    for _ in 0..TenantQuota::default().max_in_flight + 2 {
        let run = svc.call("acme", "m", "cheap", &[]).unwrap();
        assert_eq!(run.value(), Some(ORACLE));
    }
    assert_eq!(svc.tenant_counters("acme").unwrap().executor_lost, 1);
}

/// A deadline-expired call keeps running in the background; its slot
/// must be released exactly once by the background completion — and a
/// racing executor death must not double-release it.
#[test]
fn deadline_expired_slot_releases_once_in_the_background() {
    let svc = ExecService::new(ServeConfig {
        call_deadline: Duration::from_millis(60),
        wedge_multiple: 0, // never declare the burner wedged: this test
        // is about the *background completion* path
        ..config()
    });
    svc.add_tenant("acme", TenantQuota { max_call_fuel: 30_000_000, ..TenantQuota::default() })
        .unwrap();
    svc.load_module("acme", "m", &module_text()).unwrap();

    match svc.call("acme", "m", "spin", &[]) {
        Err(ServeError::DeadlineExpired) => {}
        other => panic!("expected DeadlineExpired, got {other:?}"),
    }
    assert_eq!(svc.tenant_counters("acme").unwrap().deadline_expired, 1);
    // the burner finishes in the background and releases the slot once
    wait_until("background completion", Duration::from_secs(30), || {
        svc.tenant_in_flight("acme") == Some(0)
    });
    // slot pool intact: a full window of cheap calls still admits
    for _ in 0..TenantQuota::default().max_in_flight {
        let run = svc.call("acme", "m", "cheap", &[]).unwrap();
        assert_eq!(run.value(), Some(ORACLE));
    }
    assert_eq!(svc.tenant_in_flight("acme"), Some(0));

    // now race a deadline-expired call against an executor murder: the
    // queued command is dropped with the dead executor — drop-path
    // release — while the caller already went home with its error
    svc.arm_executor_kills(
        "acme",
        &[ExecutorKill { point: ExecutorKillPoint::PostReply, after: 1 }],
    )
    .unwrap();
    let _ = svc.call("acme", "m", "cheap", &[]); // trips the post-reply kill
    match svc.call("acme", "m", "spin", &[]) {
        // either the death or the deadline wins the race; both are
        // structured, and both release the slot exactly once
        Err(ServeError::DeadlineExpired | ServeError::ExecutorLost { .. }) | Ok(_) => {}
        Err(e) => panic!("unstructured failure: {e}"),
    }
    wait_until("slot drain after race", Duration::from_secs(30), || {
        svc.tenant_in_flight("acme") == Some(0)
    });
}

// ---------------------------------------------------------------------------
// Shutdown / unregister racing live calls (satellite)
// ---------------------------------------------------------------------------

#[test]
fn shutdown_drains_queued_commands_and_never_deadlocks() {
    let svc = ExecService::new(config());
    svc.add_tenant("acme", TenantQuota { max_in_flight: 4, ..TenantQuota::default() })
        .unwrap();
    svc.load_module("acme", "m", &module_text()).unwrap();

    let done = std::thread::scope(|scope| {
        // fill the window with short calls racing the shutdown
        let callers: Vec<_> = (0..4)
            .map(|_| {
                let svc = svc.clone();
                scope.spawn(move || svc.call("acme", "m", "cheap", &[]))
            })
            .collect();
        let shutter = {
            let svc = svc.clone();
            scope.spawn(move || svc.shutdown())
        };
        let results: Vec<_> = callers
            .into_iter()
            .map(|c| c.join().expect("caller hung"))
            .collect();
        shutter.join().expect("shutdown hung");
        results
    });
    // every racing call resolved: a real answer (it drained before the
    // Shutdown command) or a structured teardown error — never a hang
    for result in done {
        match result {
            Ok(run) => assert_eq!(run.value(), Some(ORACLE)),
            Err(ServeError::Shutdown | ServeError::UnknownTenant(_)) => {}
            Err(e) => panic!("unstructured failure during shutdown: {e}"),
        }
    }
    // late senders: structured error, no deadlock
    match svc.call("acme", "m", "cheap", &[]) {
        Err(ServeError::UnknownTenant(_)) => {}
        other => panic!("expected UnknownTenant after shutdown, got {other:?}"),
    }
}

#[test]
fn remove_tenant_races_live_calls_without_hanging() {
    let svc = ExecService::new(config());
    svc.add_tenant("acme", TenantQuota { max_in_flight: 4, ..TenantQuota::default() })
        .unwrap();
    svc.load_module("acme", "m", &module_text()).unwrap();

    std::thread::scope(|scope| {
        let callers: Vec<_> = (0..4)
            .map(|_| {
                let svc = svc.clone();
                scope.spawn(move || svc.call("acme", "m", "cheap", &[]))
            })
            .collect();
        let remover = {
            let svc = svc.clone();
            scope.spawn(move || svc.remove_tenant("acme"))
        };
        for caller in callers {
            match caller.join().expect("caller hung") {
                Ok(run) => assert_eq!(run.value(), Some(ORACLE)),
                Err(
                    ServeError::Shutdown | ServeError::UnknownTenant(_) | ServeError::Busy { .. },
                ) => {}
                Err(e) => panic!("unstructured failure during remove: {e}"),
            }
        }
        remover.join().expect("remove hung").expect("tenant existed");
    });
    assert!(svc.tenant_names().is_empty());
    // the service survives: a fresh tenant works
    svc.add_tenant("next", TenantQuota::default()).unwrap();
    svc.load_module("next", "m", &module_text()).unwrap();
    assert_eq!(
        svc.call("next", "m", "cheap", &[]).unwrap().value(),
        Some(ORACLE)
    );
}

// ---------------------------------------------------------------------------
// Circuit breaker lifecycle
// ---------------------------------------------------------------------------

#[test]
fn breaker_opens_backs_off_probes_and_closes() {
    let svc = ExecService::new(ServeConfig {
        breaker_threshold: 2,
        breaker_backoff: Duration::from_millis(50),
        // one serve-level retry: while the kills are armed both
        // attempts fail (the breaker counts one failure per call); once
        // healed, the retry's quarantine lift lets the probe succeed
        max_retries: 1,
        ..config()
    });
    svc.add_tenant("acme", TenantQuota::default()).unwrap();
    svc.load_module("acme", "m", &module_text()).unwrap();

    // poison every rung: calls exhaust the ladder deterministically
    let all_tiers: Vec<TierKill> = Tier::LADDER.into_iter().map(TierKill::panic).collect();
    svc.arm_kills("acme", "m", all_tiers, 0).unwrap();
    for _ in 0..2 {
        match svc.call("acme", "m", "cheap", &[]) {
            Err(ServeError::TiersExhausted { .. }) => {}
            other => panic!("expected TiersExhausted, got {other:?}"),
        }
    }
    // threshold reached: the breaker is open, admission sheds load
    // without waking the executor
    match svc.call("acme", "m", "cheap", &[]) {
        Err(ServeError::BreakerOpen { retry_in_ms }) => assert!(retry_in_ms <= 50),
        other => panic!("expected BreakerOpen, got {other:?}"),
    }
    let breakers = svc.tenant_breakers("acme").unwrap();
    assert_eq!(breakers.len(), 1);
    assert_eq!(breakers[0].state, BreakerState::Open);
    assert_eq!(breakers[0].opened_total, 1);
    let metrics = svc.metrics_text();
    assert_eq!(
        metric_value(
            &metrics,
            r#"llva_serve_breaker_state{tenant="acme",module="m",function="cheap"}"#
        ),
        2,
        "open state visible in metrics"
    );
    assert_eq!(
        metric_value(
            &metrics,
            r#"llva_serve_calls_total{tenant="acme",result="rejected_breaker"}"#
        ),
        1
    );

    // heal the tiers, wait out the backoff: the next call is the
    // half-open probe, succeeds, and closes the breaker
    svc.arm_kills("acme", "m", Vec::new(), 0).unwrap();
    std::thread::sleep(Duration::from_millis(60));
    let run = svc.call("acme", "m", "cheap", &[]).unwrap();
    assert_eq!(run.value(), Some(ORACLE));
    let breakers = svc.tenant_breakers("acme").unwrap();
    assert_eq!(breakers[0].state, BreakerState::Closed);

    // a failed probe re-opens with DEEPER backoff
    let all_tiers: Vec<TierKill> = Tier::LADDER.into_iter().map(TierKill::panic).collect();
    svc.arm_kills("acme", "m", all_tiers, 0).unwrap();
    for _ in 0..2 {
        let _ = svc.call("acme", "m", "cheap", &[]);
    }
    std::thread::sleep(Duration::from_millis(60));
    let _ = svc.call("acme", "m", "cheap", &[]); // the probe, fails
    let breakers = svc.tenant_breakers("acme").unwrap();
    assert_eq!(breakers[0].state, BreakerState::Open);
    assert_eq!(breakers[0].opened_total, 3, "initial + re-trip + failed probe");
}

// ---------------------------------------------------------------------------
// Wedge detection
// ---------------------------------------------------------------------------

/// An executor stuck in a long command past `call_deadline ×
/// wedge_multiple` is declared wedged and replaced; the stuck thread
/// finishes its (fuel-bounded) command in the background and parks
/// itself at the epoch fence.
#[test]
fn wedged_executor_is_replaced_and_tenant_recovers() {
    let svc = ExecService::new(ServeConfig {
        call_deadline: Duration::from_millis(50),
        wedge_multiple: 2,
        monitor_interval: Duration::from_millis(2),
        ..ServeConfig::default()
    });
    svc.add_tenant("acme", TenantQuota { max_call_fuel: 50_000_000, ..TenantQuota::default() })
        .unwrap();
    svc.load_module("acme", "m", &module_text()).unwrap();

    // the burner blows through deadline × multiple: the caller leaves
    // at 50ms, the monitor declares the executor wedged at ~100ms
    match svc.call("acme", "m", "spin", &[]) {
        Err(ServeError::DeadlineExpired) => {}
        other => panic!("expected DeadlineExpired, got {other:?}"),
    }
    wait_until("wedge respawn", Duration::from_secs(30), || {
        svc.tenant_restarts("acme") == Some(1)
    });
    // the replacement serves immediately, warm from the journal
    let run = svc.call("acme", "m", "cheap", &[]).unwrap();
    assert_eq!(run.value(), Some(ORACLE), "respawned executor serves the oracle");
    assert_eq!(svc.tenant_epoch("acme"), Some(2));
    // the abandoned burner eventually finishes and its slot releases
    wait_until("abandoned burner drain", Duration::from_secs(60), || {
        svc.tenant_in_flight("acme") == Some(0)
    });
    // shutdown joins the abandoned thread without deadlocking
    svc.shutdown();
}

// ---------------------------------------------------------------------------
// Graceful drain
// ---------------------------------------------------------------------------

#[test]
fn drain_stops_admission_waits_and_flushes_metrics() {
    let svc = ExecService::new(ServeConfig {
        call_deadline: Duration::from_secs(30),
        ..config()
    });
    svc.add_tenant("acme", TenantQuota { max_call_fuel: 30_000_000, ..TenantQuota::default() })
        .unwrap();
    svc.load_module("acme", "m", &module_text()).unwrap();

    let report = std::thread::scope(|scope| {
        // in-flight work the drain must wait for
        let burner = {
            let svc = svc.clone();
            scope.spawn(move || svc.call("acme", "m", "spin", &[]))
        };
        wait_until("burner admitted", Duration::from_secs(10), || {
            svc.tenant_in_flight("acme") == Some(1)
        });
        let drainer = {
            let svc = svc.clone();
            scope.spawn(move || svc.drain(Duration::from_secs(60)))
        };
        // admission is closed the moment the drain starts
        wait_until("draining flag", Duration::from_secs(10), || svc.draining());
        match svc.call("acme", "m", "cheap", &[]) {
            Err(ServeError::Draining) => {}
            other => panic!("expected Draining during drain, got {other:?}"),
        }
        let run = burner.join().expect("burner hung").expect("burner completes");
        assert_eq!(run.outcome, TierOutcome::OutOfFuel);
        drainer.join().expect("drain hung")
    });

    assert!(report.drained, "all in-flight work resolved before the deadline");
    assert_eq!(report.abandoned_in_flight, 0);
    // the final metrics flush captured the drained state and the
    // rejected-during-drain call
    assert_eq!(metric_value(&report.final_metrics, "llva_serve_draining"), 1);
    assert_eq!(
        metric_value(
            &report.final_metrics,
            r#"llva_serve_calls_total{tenant="acme",result="rejected_draining"}"#
        ),
        1
    );
    assert_eq!(svc.drain_duration_ms(), report.waited.as_millis() as u64);
    // the service is down: everything after is a structured error
    match svc.call("acme", "m", "cheap", &[]) {
        Err(ServeError::UnknownTenant(_)) => {}
        other => panic!("expected UnknownTenant after drain, got {other:?}"),
    }
    assert!(svc.add_tenant("late", TenantQuota::default()).is_err());
}
