//! Length-framed wire protocol for `llva-serve`.
//!
//! Every message is one frame: a little-endian `u32` payload length
//! followed by that many payload bytes. The first payload byte is the
//! message tag; the rest is tag-specific, built from three primitives:
//! `u32`/`u64` little-endian integers and strings (`u32` length +
//! UTF-8 bytes). No self-describing envelope, no external codec crate
//! — the framing is small enough to audit by eye, and a hostile peer
//! is bounded by [`MAX_FRAME`] before a single byte is buffered.

use std::io::{self, Read, Write};

/// Hard ceiling on one frame's payload (guards the server against a
/// hostile length prefix before any allocation happens).
pub const MAX_FRAME: usize = 16 << 20;

/// Client → server messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Selects (and auto-registers) the connection's tenant. Must be
    /// the first request on a connection.
    Hello {
        /// Tenant name.
        tenant: String,
    },
    /// Loads a module from LLVA assembly text.
    Load {
        /// Tenant-chosen module name.
        module: String,
        /// Module source text.
        source: String,
    },
    /// Calls a function in a loaded module.
    Call {
        /// Module name from a prior [`Request::Load`].
        module: String,
        /// Entry function name.
        entry: String,
        /// Argument raw bits.
        args: Vec<u64>,
        /// Fuel request (`0` = the tenant quota's per-call ceiling).
        fuel: u64,
    },
    /// Asks for the metrics text.
    Metrics,
    /// Gracefully drains the whole service: admission closes, in-flight
    /// work is awaited up to the deadline, and the final metrics come
    /// back as the response body. The server exits afterwards.
    Drain {
        /// How long to wait for in-flight work, in milliseconds.
        deadline_ms: u64,
    },
}

const REQ_HELLO: u8 = 0x01;
const REQ_LOAD: u8 = 0x02;
const REQ_CALL: u8 = 0x03;
const REQ_METRICS: u8 = 0x04;
const REQ_DRAIN: u8 = 0x05;

/// Server → client messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// A call completed normally.
    Value {
        /// Returned raw bits.
        value: u64,
        /// Name of the tier that answered.
        tier: String,
        /// True when a faster tier faulted or was skipped.
        degraded: bool,
        /// Serve-level retries the call consumed.
        retries: u32,
    },
    /// A call hit a precise trap.
    Trap {
        /// Trap kind display string.
        kind: String,
        /// Name of the tier that answered.
        tier: String,
    },
    /// A call genuinely exhausted its fuel.
    OutOfFuel {
        /// Name of the tier that answered.
        tier: String,
    },
    /// The request failed ([`crate::ServeError`] display string —
    /// includes admission rejections, which are expected backpressure).
    Error {
        /// Error message.
        message: String,
    },
    /// Free-form text (metrics, hello banner).
    Text {
        /// The text body.
        body: String,
    },
    /// A module loaded.
    Loaded {
        /// Content-addressed cache name.
        cache: String,
        /// Defined functions in the module.
        functions: u64,
    },
}

const RESP_VALUE: u8 = 0x00;
const RESP_TRAP: u8 = 0x01;
const RESP_OUT_OF_FUEL: u8 = 0x02;
const RESP_ERROR: u8 = 0x03;
const RESP_TEXT: u8 = 0x04;
const RESP_LOADED: u8 = 0x05;

/// Why a payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The payload ended before the field did.
    Truncated,
    /// Unknown message tag.
    BadTag(u8),
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A length prefix exceeded [`MAX_FRAME`].
    Oversize(usize),
    /// Bytes remained after the last field.
    TrailingBytes(usize),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => f.write_str("truncated payload"),
            ProtoError::BadTag(t) => write!(f, "unknown message tag {t:#04x}"),
            ProtoError::BadUtf8 => f.write_str("invalid UTF-8 in string field"),
            ProtoError::Oversize(n) => write!(f, "length {n} exceeds frame limit"),
            ProtoError::TrailingBytes(n) => write!(f, "{n} trailing byte(s) after message"),
        }
    }
}

impl std::error::Error for ProtoError {}

// -- primitive encoding ------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).ok_or(ProtoError::Truncated)?;
        if end > self.buf.len() {
            return Err(ProtoError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, ProtoError> {
        let len = self.u32()? as usize;
        if len > MAX_FRAME {
            return Err(ProtoError::Oversize(len));
        }
        String::from_utf8(self.bytes(len)?.to_vec()).map_err(|_| ProtoError::BadUtf8)
    }

    fn finish(self) -> Result<(), ProtoError> {
        let rest = self.buf.len() - self.pos;
        if rest == 0 {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes(rest))
        }
    }
}

// -- message codecs ----------------------------------------------------------

impl Request {
    /// Encodes this request as a frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Request::Hello { tenant } => {
                buf.push(REQ_HELLO);
                put_str(&mut buf, tenant);
            }
            Request::Load { module, source } => {
                buf.push(REQ_LOAD);
                put_str(&mut buf, module);
                put_str(&mut buf, source);
            }
            Request::Call { module, entry, args, fuel } => {
                buf.push(REQ_CALL);
                put_str(&mut buf, module);
                put_str(&mut buf, entry);
                put_u32(&mut buf, args.len() as u32);
                for &a in args {
                    put_u64(&mut buf, a);
                }
                put_u64(&mut buf, *fuel);
            }
            Request::Metrics => buf.push(REQ_METRICS),
            Request::Drain { deadline_ms } => {
                buf.push(REQ_DRAIN);
                put_u64(&mut buf, *deadline_ms);
            }
        }
        buf
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] for truncated, oversized, or malformed payloads.
    pub fn decode(payload: &[u8]) -> Result<Request, ProtoError> {
        let mut r = Reader::new(payload);
        let req = match r.u8()? {
            REQ_HELLO => Request::Hello { tenant: r.str()? },
            REQ_LOAD => Request::Load {
                module: r.str()?,
                source: r.str()?,
            },
            REQ_CALL => {
                let module = r.str()?;
                let entry = r.str()?;
                let n = r.u32()? as usize;
                if n > MAX_FRAME / 8 {
                    return Err(ProtoError::Oversize(n));
                }
                let mut args = Vec::with_capacity(n);
                for _ in 0..n {
                    args.push(r.u64()?);
                }
                Request::Call {
                    module,
                    entry,
                    args,
                    fuel: r.u64()?,
                }
            }
            REQ_METRICS => Request::Metrics,
            REQ_DRAIN => Request::Drain {
                deadline_ms: r.u64()?,
            },
            tag => return Err(ProtoError::BadTag(tag)),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encodes this response as a frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Response::Value { value, tier, degraded, retries } => {
                buf.push(RESP_VALUE);
                put_u64(&mut buf, *value);
                put_str(&mut buf, tier);
                buf.push(u8::from(*degraded));
                put_u32(&mut buf, *retries);
            }
            Response::Trap { kind, tier } => {
                buf.push(RESP_TRAP);
                put_str(&mut buf, kind);
                put_str(&mut buf, tier);
            }
            Response::OutOfFuel { tier } => {
                buf.push(RESP_OUT_OF_FUEL);
                put_str(&mut buf, tier);
            }
            Response::Error { message } => {
                buf.push(RESP_ERROR);
                put_str(&mut buf, message);
            }
            Response::Text { body } => {
                buf.push(RESP_TEXT);
                put_str(&mut buf, body);
            }
            Response::Loaded { cache, functions } => {
                buf.push(RESP_LOADED);
                put_str(&mut buf, cache);
                put_u64(&mut buf, *functions);
            }
        }
        buf
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] for truncated, oversized, or malformed payloads.
    pub fn decode(payload: &[u8]) -> Result<Response, ProtoError> {
        let mut r = Reader::new(payload);
        let resp = match r.u8()? {
            RESP_VALUE => Response::Value {
                value: r.u64()?,
                tier: r.str()?,
                degraded: r.u8()? != 0,
                retries: r.u32()?,
            },
            RESP_TRAP => Response::Trap {
                kind: r.str()?,
                tier: r.str()?,
            },
            RESP_OUT_OF_FUEL => Response::OutOfFuel { tier: r.str()? },
            RESP_ERROR => Response::Error { message: r.str()? },
            RESP_TEXT => Response::Text { body: r.str()? },
            RESP_LOADED => Response::Loaded {
                cache: r.str()?,
                functions: r.u64()?,
            },
            tag => return Err(ProtoError::BadTag(tag)),
        };
        r.finish()?;
        Ok(resp)
    }
}

// -- frame IO ----------------------------------------------------------------

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// IO errors; `InvalidInput` when `payload` exceeds [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds limit", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame; `None` on clean EOF before the
/// length prefix (the peer hung up between messages).
///
/// # Errors
///
/// IO errors; `InvalidData` for an oversize length prefix;
/// `UnexpectedEof` for a connection cut mid-frame.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection cut inside frame length",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Hello { tenant: "acme".into() },
            Request::Load {
                module: "m".into(),
                source: "module demo\n".into(),
            },
            Request::Call {
                module: "m".into(),
                entry: "main".into(),
                args: vec![1, u64::MAX, 0],
                fuel: 42,
            },
            Request::Metrics,
            Request::Drain { deadline_ms: 1_500 },
        ];
        for req in reqs {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Value {
                value: 0xdead_beef,
                tier: "translated".into(),
                degraded: true,
                retries: 2,
            },
            Response::Trap {
                kind: "load out of bounds".into(),
                tier: "interp".into(),
            },
            Response::OutOfFuel { tier: "interp".into() },
            Response::Error { message: "busy".into() },
            Response::Text { body: "# HELP x\n".into() },
            Response::Loaded {
                cache: "mdeadbeef".into(),
                functions: 7,
            },
        ];
        for resp in resps {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn malformed_payloads_are_rejected_not_panicked() {
        assert_eq!(Request::decode(&[]), Err(ProtoError::Truncated));
        assert_eq!(Request::decode(&[0xff]), Err(ProtoError::BadTag(0xff)));
        // truncated string length
        assert_eq!(
            Request::decode(&[REQ_HELLO, 5, 0, 0, 0, b'a']),
            Err(ProtoError::Truncated)
        );
        // oversize arg count
        let mut evil = vec![REQ_CALL];
        put_str(&mut evil, "m");
        put_str(&mut evil, "f");
        put_u32(&mut evil, u32::MAX);
        assert!(matches!(
            Request::decode(&evil),
            Err(ProtoError::Oversize(_))
        ));
        // trailing garbage
        let mut trailing = Request::Metrics.encode();
        trailing.push(0);
        assert_eq!(
            Request::decode(&trailing),
            Err(ProtoError::TrailingBytes(1))
        );
    }

    #[test]
    fn frames_round_trip_and_eof_is_clean() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(b"hello".to_vec()));
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(Vec::new()));
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
        // a hostile length prefix is rejected before allocation
        let mut evil = std::io::Cursor::new(u32::MAX.to_le_bytes().to_vec());
        assert!(read_frame(&mut evil).is_err());
    }
}
