//! Regenerates the paper's Table 2. Run with:
//! `cargo run --release -p llva-bench --bin table2`

fn main() {
    println!("Table 2: Metrics demonstrating code size and low-level nature of the V-ISA");
    println!("(reproduction; see EXPERIMENTS.md for the paper-vs-measured discussion)\n");
    let rows = llva_bench::table2::compute_all();
    print!("{}", llva_bench::table2::format_table(&rows));
    // summary lines mirroring the paper's §5.2 claims
    let avg_x86: f64 = rows.iter().map(llva_bench::table2::Row::x86_ratio).sum::<f64>() / rows.len() as f64;
    let avg_sparc: f64 =
        rows.iter().map(llva_bench::table2::Row::sparc_ratio).sum::<f64>() / rows.len() as f64;
    let avg_size: f64 =
        rows.iter().map(llva_bench::table2::Row::size_ratio).sum::<f64>() / rows.len() as f64;
    println!();
    println!("mean x86 expansion   : {avg_x86:.2} LLVA->x86   (paper: 2.2-3.3)");
    println!("mean SPARC expansion : {avg_sparc:.2} LLVA->SPARC (paper: 2.3-4.2)");
    println!("mean native/LLVA size: {avg_size:.2}x            (paper: 1.3-2x for large programs)");
}
