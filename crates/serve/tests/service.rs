//! Integration tests for the multi-tenant execution service: quota
//! admission (busy / fuel / memory / module), fault isolation between
//! tenants, bounded retry recovery, quarantine probes, the incident
//! ring buffer, storage-fault tolerance, and the metrics surface.

use std::time::{Duration, Instant};

use llva_core::layout::TargetConfig;
use llva_core::printer::print_module;
use llva_engine::storage::{FaultPlan, FaultyStorage, MemStorage};
use llva_engine::supervisor::{Tier, TierKill, TierOutcome};
use llva_serve::{
    BoxedStorage, ExecService, QuotaKind, ServeConfig, ServeError, TenantQuota,
};

/// Test module: a cheap function, a fuel burner, and a far-offset
/// memory poke (in-bounds with the default 16 MiB, out-of-bounds for a
/// 1 MiB tenant). `cheap` deliberately executes more than a handful of
/// instructions: injected interpreter-tier kills fire only after one
/// *executed* instruction, so a single-instruction body would finish
/// before its kill can trigger.
const MINIC_SRC: &str = r"
int cheap() {
    int acc = 0;
    for (int i = 0; i < 7; i++) acc = acc + 6;
    return acc;
}

int spin() {
    int acc = 0;
    for (int i = 0; i < 1000000000; i++) acc = acc + i;
    return acc;
}

int poke() {
    int* p = (int*)malloc(4);
    return p[400000];
}
";

fn module_text() -> String {
    let module = llva_minic::compile(MINIC_SRC, "servetest", TargetConfig::default())
        .expect("test module compiles");
    print_module(&module)
}

fn service(config: ServeConfig) -> ExecService {
    ExecService::new(config)
}

#[test]
fn busy_rejection_is_bounded_backpressure() {
    let svc = service(ServeConfig::default());
    let quota = TenantQuota {
        max_in_flight: 2,
        max_call_fuel: 40_000_000,
        ..TenantQuota::default()
    };
    svc.add_tenant("acme", quota).unwrap();
    svc.load_module("acme", "m", &module_text()).unwrap();

    std::thread::scope(|scope| {
        // two long calls fill the in-flight window (one executes, one
        // queues); both eventually answer OutOfFuel
        let holders: Vec<_> = (0..2)
            .map(|_| {
                let svc = svc.clone();
                scope.spawn(move || svc.call("acme", "m", "spin", &[]))
            })
            .collect();
        let deadline = Instant::now() + Duration::from_secs(10);
        while svc.tenant_in_flight("acme") != Some(2) {
            assert!(Instant::now() < deadline, "holders never filled the window");
            std::thread::yield_now();
        }
        // the window is full: the next call must be rejected, not queued
        match svc.call("acme", "m", "cheap", &[]) {
            Err(ServeError::Busy { in_flight }) => assert_eq!(in_flight, 2),
            other => panic!("expected Busy, got {other:?}"),
        }
        for holder in holders {
            let run = holder.join().unwrap().expect("holder call completes");
            assert_eq!(run.outcome, TierOutcome::OutOfFuel);
        }
    });

    let counters = svc.tenant_counters("acme").unwrap();
    assert_eq!(counters.rejected_busy, 1);
    assert_eq!(counters.calls_out_of_fuel, 2);
    // the window drained: the same call is admitted now
    let run = svc.call("acme", "m", "cheap", &[]).unwrap();
    assert_eq!(run.value(), Some(42));
    assert_eq!(svc.tenant_in_flight("acme"), Some(0));
}

#[test]
fn fuel_budget_exhausts_then_refills() {
    let svc = service(ServeConfig::default());
    let quota = TenantQuota {
        fuel_budget: 200_000,
        max_call_fuel: 1_000_000,
        ..TenantQuota::default()
    };
    svc.add_tenant("acme", quota).unwrap();
    svc.load_module("acme", "m", &module_text()).unwrap();

    // the burner is clamped to the remaining budget and runs dry
    let run = svc.call("acme", "m", "spin", &[]).unwrap();
    assert_eq!(run.outcome, TierOutcome::OutOfFuel);
    // the budget is (near-)exhausted: rejection within a few calls
    let mut rejected = None;
    for _ in 0..5 {
        match svc.call("acme", "m", "spin", &[]) {
            Err(e) => {
                rejected = Some(e);
                break;
            }
            Ok(run) => assert_eq!(run.outcome, TierOutcome::OutOfFuel),
        }
    }
    match rejected {
        Some(ServeError::QuotaExceeded { kind: QuotaKind::Fuel, .. }) => {}
        other => panic!("expected fuel rejection, got {other:?}"),
    }
    let counters = svc.tenant_counters("acme").unwrap();
    assert!(counters.rejected_fuel >= 1);
    assert!(counters.fuel_used >= 200_000 - 64);
    assert_eq!(svc.tenant_fuel_remaining("acme"), Some(0));

    // an operator refill restores service
    svc.refill_fuel("acme", 1_000_000).unwrap();
    let run = svc.call("acme", "m", "cheap", &[]).unwrap();
    assert_eq!(run.value(), Some(42));
}

#[test]
fn memory_quota_isolates_address_space() {
    let svc = service(ServeConfig::default());
    svc.add_tenant("roomy", TenantQuota::default()).unwrap();
    svc.add_tenant(
        "cramped",
        TenantQuota {
            memory_bytes: 1 << 20,
            ..TenantQuota::default()
        },
    )
    .unwrap();
    let text = module_text();
    svc.load_module("roomy", "m", &text).unwrap();
    svc.load_module("cramped", "m", &text).unwrap();

    // same function, same module: the roomy tenant's 16 MiB machine
    // serves the far poke; the cramped tenant's 1 MiB machine traps —
    // the quota is enforced by construction, not by a check
    let roomy = svc.call("roomy", "m", "poke", &[]).unwrap();
    assert!(
        matches!(roomy.outcome, TierOutcome::Value(_)),
        "roomy tenant should complete, got {:?}",
        roomy.outcome
    );
    let cramped = svc.call("cramped", "m", "poke", &[]).unwrap();
    assert!(
        matches!(cramped.outcome, TierOutcome::Trap(_)),
        "cramped tenant should trap, got {:?}",
        cramped.outcome
    );
    // a trap is an answer, not a fault: the tenant is alive and healthy
    let run = svc.call("cramped", "m", "cheap", &[]).unwrap();
    assert_eq!(run.value(), Some(42));
    let snapshot = svc.tenant_snapshot("cramped").unwrap();
    assert_eq!(snapshot.modules[0].incidents_total, 0);

    let counters = svc.tenant_counters("cramped").unwrap();
    assert_eq!(counters.calls_trapped, 1);
    assert_eq!(counters.calls_ok, 1);
}

#[test]
fn module_quota_limits_count_and_size() {
    let svc = service(ServeConfig::default());
    let quota = TenantQuota {
        max_modules: 1,
        max_module_bytes: 1 << 20,
        ..TenantQuota::default()
    };
    svc.add_tenant("acme", quota).unwrap();
    let text = module_text();
    svc.load_module("acme", "m1", &text).unwrap();
    match svc.load_module("acme", "m2", &text) {
        Err(ServeError::QuotaExceeded { kind: QuotaKind::Module, .. }) => {}
        other => panic!("expected module-count rejection, got {other:?}"),
    }
    // reloading the *same* name is an update, not a new module
    svc.load_module("acme", "m1", &text).unwrap();

    svc.add_tenant(
        "tiny",
        TenantQuota {
            max_module_bytes: 16,
            ..TenantQuota::default()
        },
    )
    .unwrap();
    match svc.load_module("tiny", "m", &text) {
        Err(ServeError::QuotaExceeded { kind: QuotaKind::Module, .. }) => {}
        other => panic!("expected module-size rejection, got {other:?}"),
    }
    assert_eq!(svc.tenant_counters("tiny").unwrap().rejected_module, 1);
}

#[test]
fn poisoned_tenant_does_not_contaminate_neighbours() {
    let svc = service(ServeConfig::default());
    svc.add_tenant("victim", TenantQuota::default()).unwrap();
    svc.add_tenant("healthy", TenantQuota::default()).unwrap();
    let text = module_text();
    svc.load_module("victim", "m", &text).unwrap();
    svc.load_module("healthy", "m", &text).unwrap();

    // kill every fast tier for the victim, permanently
    let kills = vec![
        TierKill::panic(Tier::Translated),
        TierKill::panic(Tier::Traced),
        TierKill::panic(Tier::FastInterp),
    ];
    svc.arm_kills("victim", "m", kills, 0).unwrap();

    let victim = svc.call("victim", "m", "cheap", &[]).unwrap();
    assert_eq!(victim.value(), Some(42), "degradation preserves semantics");
    assert_eq!(victim.tier, Tier::Interp);
    assert!(victim.degraded);

    let healthy = svc.call("healthy", "m", "cheap", &[]).unwrap();
    assert_eq!(healthy.value(), Some(42));
    assert_eq!(healthy.tier, Tier::Translated, "healthy tenant undisturbed");
    assert!(!healthy.degraded);

    // quarantine state is per-tenant even though the module (and its
    // shared translation cache) is identical
    let victim_snap = svc.tenant_snapshot("victim").unwrap();
    assert_eq!(victim_snap.modules[0].quarantined.len(), 3);
    assert_eq!(victim_snap.modules[0].incidents_total, 3);
    let healthy_snap = svc.tenant_snapshot("healthy").unwrap();
    assert!(healthy_snap.modules[0].quarantined.is_empty());
    assert_eq!(healthy_snap.modules[0].incidents_total, 0);
    // both tenants resolved the same content-addressed cache
    assert_eq!(
        victim_snap.modules[0].cache, healthy_snap.modules[0].cache,
        "identical module text shares one cache"
    );

    let metrics = svc.metrics_text();
    assert!(metrics.contains(r#"llva_serve_quarantined{tenant="victim",module="m"} 3"#));
    assert!(metrics.contains(r#"llva_serve_quarantined{tenant="healthy",module="m"} 0"#));
}

#[test]
fn transient_fault_heals_within_bounded_retries() {
    let svc = service(ServeConfig::default());
    svc.add_tenant("acme", TenantQuota::default()).unwrap();
    svc.load_module("acme", "m", &module_text()).unwrap();

    // transient: every tier dies for exactly one attempt, then heals —
    // the serve-level retry lifts the quarantines and succeeds
    let all_kills: Vec<TierKill> = Tier::LADDER.into_iter().map(TierKill::panic).collect();
    svc.arm_kills("acme", "m", all_kills.clone(), 1).unwrap();
    let run = svc.call("acme", "m", "cheap", &[]).unwrap();
    assert_eq!(run.value(), Some(42));
    assert_eq!(run.retries, 1, "healed on the first retry");
    assert_eq!(run.tier, Tier::Translated);
    assert_eq!(svc.tenant_counters("acme").unwrap().retries, 1);

    // persistent: kills armed forever exhaust the bounded budget
    svc.arm_kills("acme", "m", all_kills, 0).unwrap();
    match svc.call("acme", "m", "cheap", &[]) {
        Err(ServeError::TiersExhausted { retries, incidents }) => {
            assert_eq!(retries, svc.config().max_retries);
            assert!(incidents >= 4, "every rung faulted every attempt");
        }
        other => panic!("expected TiersExhausted, got {other:?}"),
    }
    assert_eq!(svc.tenant_counters("acme").unwrap().calls_exhausted, 1);

    // operator disarms the fault: the next call self-heals through the
    // same retry path (first attempt hits stale quarantines, the retry
    // lifts them)
    svc.arm_kills("acme", "m", Vec::new(), 0).unwrap();
    let run = svc.call("acme", "m", "cheap", &[]).unwrap();
    assert_eq!(run.value(), Some(42));
    assert!(run.retries >= 1);
}

#[test]
fn quarantine_probe_restores_tier_through_service() {
    let config = ServeConfig {
        probe_after: Some(2),
        ..ServeConfig::default()
    };
    let svc = service(config);
    svc.add_tenant("acme", TenantQuota::default()).unwrap();
    svc.load_module("acme", "m", &module_text()).unwrap();

    // one transient translated-tier fault: quarantined after call 1
    svc.arm_kills("acme", "m", vec![TierKill::panic(Tier::Translated)], 1)
        .unwrap();
    let first = svc.call("acme", "m", "cheap", &[]).unwrap();
    assert_eq!(first.tier, Tier::Traced);
    assert!(first.degraded);

    // the degraded call banked success #1; this banks #2
    let second = svc.call("acme", "m", "cheap", &[]).unwrap();
    assert_eq!(second.tier, Tier::Traced);

    // threshold reached: this call probes the quarantined pair, the
    // probe passes (the kill was transient), and the tier serves again
    let third = svc.call("acme", "m", "cheap", &[]).unwrap();
    assert_eq!(third.tier, Tier::Translated, "probe restored the tier");
    assert_eq!(third.value(), Some(42));

    let snapshot = svc.tenant_snapshot("acme").unwrap();
    assert!(snapshot.modules[0].quarantined.is_empty());
    assert!(
        snapshot.modules[0]
            .recent_incidents
            .iter()
            .any(|line| line.contains("probe recovered")),
        "probe outcome is logged as an incident: {:?}",
        snapshot.modules[0].recent_incidents
    );
    let metrics = svc.metrics_text();
    assert!(metrics.contains(
        r#"llva_serve_tier_probes_total{tenant="acme",module="m",tier="translated"} 1"#
    ));
}

#[test]
fn incident_ring_buffer_is_bounded_with_drop_counter() {
    let config = ServeConfig {
        incident_capacity: 2,
        ..ServeConfig::default()
    };
    let svc = service(config);
    svc.add_tenant("acme", TenantQuota::default()).unwrap();
    svc.load_module("acme", "m", &module_text()).unwrap();
    let kills = vec![
        TierKill::panic(Tier::Translated),
        TierKill::panic(Tier::Traced),
        TierKill::panic(Tier::FastInterp),
    ];
    svc.arm_kills("acme", "m", kills, 0).unwrap();
    svc.call("acme", "m", "cheap", &[]).unwrap();

    // three incidents hit a capacity-2 ring: one dropped, none lost
    // from the ledger
    let snapshot = svc.tenant_snapshot("acme").unwrap();
    assert_eq!(snapshot.modules[0].incidents_len, 2);
    assert_eq!(snapshot.modules[0].incidents_dropped, 1);
    assert_eq!(snapshot.modules[0].incidents_total, 3);
    let metrics = svc.metrics_text();
    assert!(metrics
        .contains(r#"llva_serve_incidents_dropped_total{tenant="acme",module="m"} 1"#));
    assert!(metrics.contains(r#"llva_serve_incidents_total{tenant="acme",module="m"} 3"#));
}

#[test]
fn storage_fault_injection_does_not_corrupt_answers() {
    // read-side chaos on every cache shard: reads fail, truncate, and
    // bit-flip periodically; LLEE's validation + bounded retries and
    // the serve-level retry keep every answer correct
    let config = ServeConfig {
        shards: 3,
        ..ServeConfig::default()
    };
    let svc = ExecService::with_storage(config, |i| {
        Box::new(FaultyStorage::new(
            MemStorage::new(),
            FaultPlan {
                seed: 0xc0ffee + i as u64,
                read_fail: 3,
                read_truncate: 4,
                read_bit_flip: 5,
                torn_write: 7,
                stale_timestamp: 0,
            },
        )) as BoxedStorage
    });
    svc.add_tenant("acme", TenantQuota::default()).unwrap();
    svc.load_module("acme", "m", &module_text()).unwrap();
    for _ in 0..6 {
        let run = svc.call("acme", "m", "cheap", &[]).unwrap();
        assert_eq!(run.value(), Some(42), "storage faults never change answers");
    }
    // corrupt/failed reads surface in the translation stats, not as
    // wrong values; incidents may exist only if a tier faulted and
    // recovered — the tenant's answers above prove service stayed up
    let counters = svc.tenant_counters("acme").unwrap();
    assert_eq!(counters.calls_ok, 6);
}

#[test]
fn unknown_tenant_and_module_are_structured_errors() {
    let svc = service(ServeConfig::default());
    assert!(matches!(
        svc.call("ghost", "m", "cheap", &[]),
        Err(ServeError::UnknownTenant(_))
    ));
    svc.add_tenant("acme", TenantQuota::default()).unwrap();
    assert!(matches!(
        svc.call("acme", "ghost", "cheap", &[]),
        Err(ServeError::NoSuchModule(_))
    ));
    assert!(matches!(
        svc.add_tenant("acme", TenantQuota::default()),
        Err(ServeError::TenantExists(_))
    ));
    svc.load_module("acme", "m", &module_text()).unwrap();
    assert!(matches!(
        svc.call("acme", "m", "ghost", &[]),
        Err(ServeError::NoSuchFunction(_))
    ));
    assert!(matches!(
        svc.load_module("acme", "bad", "this is not llva"),
        Err(ServeError::BadModule(_))
    ));
    svc.unload_module("acme", "m").unwrap();
    assert!(matches!(
        svc.call("acme", "m", "cheap", &[]),
        Err(ServeError::NoSuchModule(_))
    ));
    svc.remove_tenant("acme").unwrap();
    assert!(matches!(
        svc.call("acme", "m", "cheap", &[]),
        Err(ServeError::UnknownTenant(_))
    ));
}

#[test]
fn per_call_deadline_expires_without_losing_the_tenant() {
    let config = ServeConfig {
        call_deadline: Duration::from_millis(10),
        ..ServeConfig::default()
    };
    let svc = service(config);
    let quota = TenantQuota {
        max_call_fuel: 200_000_000,
        ..TenantQuota::default()
    };
    svc.add_tenant("acme", quota).unwrap();
    svc.load_module("acme", "m", &module_text()).unwrap();

    // the burner outlives a 10ms deadline by orders of magnitude
    match svc.call("acme", "m", "spin", &[]) {
        Err(ServeError::DeadlineExpired) => {}
        other => panic!("expected DeadlineExpired, got {other:?}"),
    }
    assert_eq!(svc.tenant_counters("acme").unwrap().deadline_expired, 1);

    // the call still completes in the background and the tenant keeps
    // serving: wait for the slot to drain, then call something cheap
    let deadline = Instant::now() + Duration::from_secs(60);
    while svc.tenant_in_flight("acme") != Some(0) {
        assert!(Instant::now() < deadline, "background call never finished");
        std::thread::sleep(Duration::from_millis(20));
    }
    let run = svc.call("acme", "m", "cheap", &[]).unwrap();
    assert_eq!(run.value(), Some(42));
    // the abandoned call was fully accounted
    let counters = svc.tenant_counters("acme").unwrap();
    assert_eq!(counters.calls_out_of_fuel, 1);
    assert!(counters.fuel_used > 0);
}

/// Warm loads over directory-backed shards take the zero-copy `mmap`
/// fast path: the first service publishes the module image, a second
/// service over the same directory re-attaches it mapped, and the
/// mapped answer is oracle-identical.
#[cfg(unix)]
#[test]
fn warm_image_load_is_mmapped_from_dir_storage() {
    use llva_engine::storage::DirStorage;

    let dir = std::env::temp_dir().join(format!("llva-serve-mmap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let text = module_text();

    // cold process: translates, publishes the image, answers owned
    {
        let svc = ExecService::with_storage(ServeConfig::default(), |i| {
            Box::new(DirStorage::new(dir.join(format!("shard-{i}")))) as BoxedStorage
        });
        svc.add_tenant("acme", TenantQuota::default()).unwrap();
        let reply = svc.load_module("acme", "m", &text).unwrap();
        assert!(
            !reply.image_mapped,
            "first-ever load has no image to map (cold start)"
        );
        assert_eq!(svc.call("acme", "m", "cheap", &[]).unwrap().value(), Some(42));
        svc.shutdown();
    }

    // warm process: same directory, the image is re-attached zero-copy
    let svc = ExecService::with_storage(ServeConfig::default(), |i| {
        Box::new(DirStorage::new(dir.join(format!("shard-{i}")))) as BoxedStorage
    });
    svc.add_tenant("acme", TenantQuota::default()).unwrap();
    let reply = svc.load_module("acme", "m", &text).unwrap();
    assert!(reply.image_mapped, "warm load must mmap the published image");
    // the warmup ran entirely against the image: zero fresh translations
    assert_eq!(reply.warmup.functions_translated, 0);
    assert_eq!(svc.call("acme", "m", "cheap", &[]).unwrap().value(), Some(42));
    // memory-backed shards can never map (no file to point at)
    let mem = ExecService::new(ServeConfig::default());
    mem.add_tenant("acme", TenantQuota::default()).unwrap();
    assert!(!mem.load_module("acme", "m", &text).unwrap().image_mapped);
    let _ = std::fs::remove_dir_all(&dir);
}
