//! # llva-minic — a small C-like front end for LLVA
//!
//! The reproduction's substitute for the paper's GCC-based C front end
//! (see DESIGN.md, substitution #2). minic supports functions, structs,
//! pointers, arrays, the usual statements and operators, short-circuit
//! logic, function pointers, and a libc-flavored set of builtins
//! (`putchar`, `getchar`, `malloc`, `free`, `clock`) that lower to the
//! `llva.*` intrinsics of §3.5.
//!
//! # Quick start
//!
//! ```
//! let module = llva_minic::compile(
//!     "int main() { int s = 0; for (int i = 1; i <= 10; i++) s += i; return s; }",
//!     "sum",
//!     llva_core::layout::TargetConfig::default(),
//! ).expect("compiles");
//! llva_core::verifier::verify_module(&module).expect("verifies");
//! ```

pub mod ast;
pub mod codegen;
pub mod parser;

pub use ast::{CType, Expr, Item, Program, Stmt};
pub use codegen::{compile_program, CompileError};
pub use parser::{parse, ParseError};

use llva_core::layout::TargetConfig;
use llva_core::module::Module;

/// Errors from either phase of compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Syntax error.
    Parse(ParseError),
    /// Semantic/lowering error.
    Compile(CompileError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Parse(e) => e.fmt(f),
            Error::Compile(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for Error {}

/// Compiles minic source to an LLVA module.
///
/// # Errors
///
/// Returns [`Error::Parse`] for syntax errors and [`Error::Compile`]
/// for semantic errors.
pub fn compile(src: &str, name: &str, target: TargetConfig) -> Result<Module, Error> {
    let program = parse(src).map_err(Error::Parse)?;
    compile_program(&program, name, target).map_err(Error::Compile)
}
