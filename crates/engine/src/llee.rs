//! LLEE: the execution manager (paper §4.1).
//!
//! "Offline translation when possible, online translation whenever
//! necessary": when control reaches an untranslated function, LLEE
//! first consults the OS-provided storage API for a cached translation
//! and validates its timestamp against the module; on a miss (or with
//! no storage at all) it invokes the JIT, installs the code, and writes
//! it back to the cache. `translate_all` is the offline-translation
//! mode (the OS "initiating 'execution' … but flagging it for
//! translation and not actual execution").

use crate::codec;
use crate::env::{Env, StackView};
use crate::interp::trap_number;
use crate::storage::Storage;
use llva_backend::common::layout_globals;
use llva_backend::{compile_sparc, compile_x86};
use llva_core::module::{FuncId, Module};
use llva_machine::common::{ExecStats, Exit, Trap};
use llva_machine::memory::{Memory, GLOBAL_BASE};
use llva_machine::sparc::{SparcMachine, SparcProgram};
use llva_machine::x86::{X86Machine, X86Program};
use std::fmt;
use std::time::{Duration, Instant};

/// Which implementation ISA to translate to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TargetIsa {
    /// The IA-32-like CISC target.
    X86,
    /// The SPARC-V9-like RISC target.
    Sparc,
}

impl fmt::Display for TargetIsa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TargetIsa::X86 => "x86",
            TargetIsa::Sparc => "sparc",
        })
    }
}

/// Why execution failed.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A hardware trap was delivered (after running any registered
    /// trap handler).
    Trapped(Trap),
    /// The fuel limit was exhausted.
    OutOfFuel,
    /// The entry function does not exist or has no body.
    NoSuchFunction(String),
    /// Control reached a declaration with no body to translate.
    MissingBody(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Trapped(t) => write!(f, "trapped: {t}"),
            EngineError::OutOfFuel => f.write_str("out of fuel"),
            EngineError::NoSuchFunction(n) => write!(f, "no such function %{n}"),
            EngineError::MissingBody(n) => write!(f, "function %{n} has no body to translate"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Translation / cache statistics for one manager.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TranslationStats {
    /// Functions translated by the JIT this session.
    pub functions_translated: usize,
    /// Total wall-clock time spent translating.
    pub translate_time: Duration,
    /// Translations loaded from the offline cache.
    pub cache_hits: usize,
    /// Cache lookups that missed (or were stale).
    pub cache_misses: usize,
    /// Translations discarded by SMC invalidation.
    pub invalidations: usize,
}

/// The result of a successful run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// The entry function's return value (raw bits).
    pub value: u64,
    /// Machine execution statistics for the whole session so far.
    pub stats: ExecStats,
}

enum Engine {
    X86 {
        program: X86Program,
        machine: X86Machine,
    },
    Sparc {
        program: SparcProgram,
        machine: SparcMachine,
    },
}

/// The LLVA execution environment: owns the module, the simulated
/// processor, and the translation state.
pub struct ExecutionManager {
    module: Module,
    isa: TargetIsa,
    engine: Engine,
    /// Intrinsic state (I/O, privileged bit, trap handlers).
    pub env: Env,
    storage: Option<Box<dyn Storage>>,
    cache_name: String,
    module_stamp: u64,
    stats: TranslationStats,
    func_names: Vec<String>,
    fuel: u64,
}

impl fmt::Debug for ExecutionManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecutionManager")
            .field("module", &self.module.name())
            .field("isa", &self.isa)
            .field("stats", &self.stats)
            .finish()
    }
}

impl ExecutionManager {
    /// Creates a manager with a 16 MiB simulated memory.
    pub fn new(module: Module, isa: TargetIsa) -> ExecutionManager {
        ExecutionManager::with_memory_size(module, isa, 1 << 24)
    }

    /// Creates a manager with a custom memory size.
    pub fn with_memory_size(mut module: Module, isa: TargetIsa, mem_size: u64) -> ExecutionManager {
        // the module's target flags must match the processor (§3.2)
        let target = match isa {
            TargetIsa::X86 => llva_core::layout::TargetConfig::ia32(),
            TargetIsa::Sparc => llva_core::layout::TargetConfig::sparc_v9(),
        };
        module.set_target(target);
        let image = layout_globals(&module);
        let mut mem = Memory::new(mem_size, image.heap_base, target.endianness);
        mem.write_bytes(GLOBAL_BASE, &image.image)
            .expect("global image fits");
        let engine = match isa {
            TargetIsa::X86 => Engine::X86 {
                program: X86Program::new(module.num_functions(), image.addrs.clone()),
                machine: X86Machine::new(mem),
            },
            TargetIsa::Sparc => Engine::Sparc {
                program: SparcProgram::new(module.num_functions(), image.addrs.clone()),
                machine: SparcMachine::new(mem),
            },
        };
        let func_names = module
            .functions()
            .map(|(_, f)| f.name().to_string())
            .collect();
        let module_stamp = stamp(&module);
        ExecutionManager {
            module,
            isa,
            engine,
            env: Env::new(),
            storage: None,
            cache_name: String::new(),
            module_stamp,
            stats: TranslationStats::default(),
            func_names,
            fuel: 10_000_000_000,
        }
    }

    /// Attaches an OS storage implementation for offline caching
    /// (§4.1); `cache` names this program's cache.
    pub fn set_storage(&mut self, mut storage: Box<dyn Storage>, cache: &str) {
        storage.create_cache(cache);
        self.storage = Some(storage);
        self.cache_name = cache.to_string();
    }

    /// Detaches and returns the storage (to inspect or reuse).
    pub fn take_storage(&mut self) -> Option<Box<dyn Storage>> {
        self.storage.take()
    }

    /// Limits executed native instructions.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// The module being executed.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The target ISA.
    pub fn isa(&self) -> TargetIsa {
        self.isa
    }

    /// Translation statistics.
    pub fn stats(&self) -> TranslationStats {
        self.stats
    }

    /// Machine execution statistics.
    pub fn exec_stats(&self) -> ExecStats {
        match &self.engine {
            Engine::X86 { machine, .. } => machine.stats(),
            Engine::Sparc { machine, .. } => machine.stats(),
        }
    }

    /// Total native instructions across installed translations.
    pub fn installed_insts(&self) -> usize {
        match &self.engine {
            Engine::X86 { program, .. } => program.total_insts(),
            Engine::Sparc { program, .. } => program.total_insts(),
        }
    }

    /// Total native code bytes across installed translations.
    pub fn installed_bytes(&self) -> usize {
        match &self.engine {
            Engine::X86 { program, .. } => program.total_bytes(),
            Engine::Sparc { program, .. } => program.total_bytes(),
        }
    }

    /// Reads `len` bytes of simulated memory (tests, profiling).
    pub fn read_memory(&self, addr: u64, len: u64) -> Option<Vec<u8>> {
        let mem = match &self.engine {
            Engine::X86 { machine, .. } => &machine.mem,
            Engine::Sparc { machine, .. } => &machine.mem,
        };
        mem.read_bytes(addr, len).ok().map(<[u8]>::to_vec)
    }

    /// The relocated address of a global (profiling support).
    pub fn global_addr(&self, g: llva_core::module::GlobalId) -> u64 {
        match &self.engine {
            Engine::X86 { program, .. } => program.global_addr(g.index() as u32),
            Engine::Sparc { program, .. } => program.global_addr(g.index() as u32),
        }
    }

    fn cache_key(&self, f: u32) -> String {
        format!("{}.{}.fn{}", self.module.name(), self.isa, f)
    }

    /// Translates one function, consulting the cache first. Returns
    /// whether it was a cache hit.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::MissingBody`] for declarations.
    pub fn translate(&mut self, f: u32) -> Result<bool, EngineError> {
        let fid = FuncId::from_index(f as usize);
        if self.module.function(fid).is_declaration() {
            return Err(EngineError::MissingBody(
                self.module.function(fid).name().to_string(),
            ));
        }
        // cache lookup with timestamp validation (§4.1)
        if let Some(storage) = &self.storage {
            let key = self.cache_key(f);
            if let Some((bytes, ts)) = storage.read(&self.cache_name, &key) {
                if ts == self.module_stamp {
                    let ok = match &mut self.engine {
                        Engine::X86 { program, .. } => codec::decode_x86(&bytes)
                            .map(|code| program.install(f, code))
                            .is_ok(),
                        Engine::Sparc { program, .. } => codec::decode_sparc(&bytes)
                            .map(|code| program.install(f, code))
                            .is_ok(),
                    };
                    if ok {
                        self.stats.cache_hits += 1;
                        return Ok(true);
                    }
                }
            }
            self.stats.cache_misses += 1;
        }
        // JIT translation
        let start = Instant::now();
        let blob = match &mut self.engine {
            Engine::X86 { program, .. } => {
                let code = compile_x86(&self.module, fid);
                let blob = codec::encode_x86(&code);
                program.install(f, code);
                blob
            }
            Engine::Sparc { program, .. } => {
                let code = compile_sparc(&self.module, fid);
                let blob = codec::encode_sparc(&code);
                program.install(f, code);
                blob
            }
        };
        self.stats.translate_time += start.elapsed();
        self.stats.functions_translated += 1;
        // write back to the offline cache
        if let Some(storage) = &mut self.storage {
            let key = format!("{}.{}.fn{}", self.module.name(), self.isa, f);
            storage.write(&self.cache_name, &key, &blob, self.module_stamp);
        }
        Ok(false)
    }

    /// Offline translation of the whole program (§4.1: translation
    /// without execution, e.g. during OS idle time).
    ///
    /// # Errors
    ///
    /// Never fails for defined functions; declarations are skipped.
    pub fn translate_all(&mut self) -> Result<(), EngineError> {
        for (fid, func) in self.module.functions().map(|(a, b)| (a, b.is_declaration())).collect::<Vec<_>>() {
            if !func {
                self.translate(fid.index() as u32)?;
            }
        }
        Ok(())
    }

    /// Invalidates a function's translation (SMC, §3.4): the current
    /// activation keeps running old code; the *next* call retranslates.
    pub fn invalidate_function(&mut self, name: &str) {
        if let Some(fid) = self.module.function_by_name(name) {
            match &mut self.engine {
                Engine::X86 { program, .. } => program.invalidate(fid.index() as u32),
                Engine::Sparc { program, .. } => program.invalidate(fid.index() as u32),
            }
            self.stats.invalidations += 1;
        }
    }

    /// Mutates the module (e.g. rewrites a function body through the
    /// constrained SMC model) and invalidates the affected translation.
    pub fn modify_function(&mut self, name: &str, edit: impl FnOnce(&mut Module, FuncId)) {
        let Some(fid) = self.module.function_by_name(name) else {
            return;
        };
        edit(&mut self.module, fid);
        self.module_stamp = stamp(&self.module);
        // self-extending code may have added functions (§3.4)
        match &mut self.engine {
            Engine::X86 { program, .. } => program.ensure_slots(self.module.num_functions()),
            Engine::Sparc { program, .. } => program.ensure_slots(self.module.num_functions()),
        }
        self.func_names = self
            .module
            .functions()
            .map(|(_, f)| f.name().to_string())
            .collect();
        self.invalidate_function(name);
    }

    /// Runs function `name` with the given raw argument values.
    ///
    /// # Errors
    ///
    /// See [`EngineError`].
    pub fn run(&mut self, name: &str, args: &[u64]) -> Result<RunOutcome, EngineError> {
        let fid = self
            .module
            .function_by_name(name)
            .filter(|&f| !self.module.function(f).is_declaration())
            .ok_or_else(|| EngineError::NoSuchFunction(name.to_string()))?;
        let f = fid.index() as u32;
        match &mut self.engine {
            Engine::X86 { machine, .. } => machine
                .call_entry(f, args)
                .map_err(EngineError::Trapped)?,
            Engine::Sparc { machine, .. } => machine
                .call_entry(f, args)
                .map_err(EngineError::Trapped)?,
        }
        loop {
            let exit = match &mut self.engine {
                Engine::X86 { program, machine } => machine.run(program, self.fuel),
                Engine::Sparc { program, machine } => machine.run(program, self.fuel),
            };
            match exit {
                Exit::Halt(value) => {
                    return Ok(RunOutcome {
                        value,
                        stats: self.exec_stats(),
                    })
                }
                Exit::NeedFunction(f) => {
                    self.translate(f)?;
                }
                Exit::Intrinsic { which, args } => {
                    self.service_intrinsic(which, &args)?;
                }
                Exit::Trapped(trap) => {
                    self.deliver_trap(trap);
                    return Err(EngineError::Trapped(trap));
                }
                Exit::OutOfFuel => return Err(EngineError::OutOfFuel),
            }
        }
    }

    fn service_intrinsic(
        &mut self,
        which: llva_core::intrinsics::Intrinsic,
        args: &[u64],
    ) -> Result<(), EngineError> {
        // advance the virtual clock with execution progress
        self.env.clock = self.exec_stats().cycles;
        let (stack, location) = match &self.engine {
            Engine::X86 { machine, .. } => (
                StackView {
                    functions: (0..machine.call_depth())
                        .filter_map(|d| machine.frame_function(d))
                        .collect(),
                },
                machine.current_location(),
            ),
            Engine::Sparc { machine, .. } => (
                StackView {
                    functions: (0..machine.call_depth())
                        .filter_map(|d| machine.frame_function(d))
                        .collect(),
                },
                machine.current_location(),
            ),
        };
        let result = match &mut self.engine {
            Engine::X86 { machine, .. } => {
                self.env
                    .handle(which, args, &mut machine.mem, &stack, &self.func_names)
            }
            Engine::Sparc { machine, .. } => {
                self.env
                    .handle(which, args, &mut machine.mem, &stack, &self.func_names)
            }
        };
        let ret = match result {
            Ok(v) => v,
            Err(kind) => {
                let trap = Trap {
                    kind,
                    function: location.0,
                    pc: location.1,
                };
                self.deliver_trap(trap);
                return Err(EngineError::Trapped(trap));
            }
        };
        // drain SMC invalidations (§3.4: takes effect on next call)
        let pending = std::mem::take(&mut self.env.smc_invalidations);
        for f in pending {
            match &mut self.engine {
                Engine::X86 { program, .. } => program.invalidate(f),
                Engine::Sparc { program, .. } => program.invalidate(f),
            }
            self.stats.invalidations += 1;
        }
        match &mut self.engine {
            Engine::X86 { machine, .. } => machine.finish_intrinsic(ret),
            Engine::Sparc { machine, .. } => machine.finish_intrinsic(ret),
        }
        Ok(())
    }

    /// Invokes a registered trap handler, if any (§3.5). The handler is
    /// an ordinary LLVA function taking the trap number and an info
    /// pointer.
    fn deliver_trap(&mut self, trap: Trap) {
        let no = trap_number(trap.kind);
        let Some(&handler) = self.env.trap_handlers.get(&no) else {
            return;
        };
        if self
            .module
            .function(FuncId::from_index(handler as usize))
            .is_declaration()
        {
            return;
        }
        // best-effort: run the handler to completion for its effects
        let entry_ok = match &mut self.engine {
            Engine::X86 { machine, .. } => {
                machine.call_entry(handler, &[u64::from(no), 0]).is_ok()
            }
            Engine::Sparc { machine, .. } => {
                machine.call_entry(handler, &[u64::from(no), 0]).is_ok()
            }
        };
        if !entry_ok {
            return;
        }
        for _ in 0..64 {
            let exit = match &mut self.engine {
                Engine::X86 { program, machine } => machine.run(program, 1_000_000),
                Engine::Sparc { program, machine } => machine.run(program, 1_000_000),
            };
            match exit {
                Exit::Halt(_) => break,
                Exit::NeedFunction(f) => {
                    if self.translate(f).is_err() {
                        break;
                    }
                }
                Exit::Intrinsic { which, args } => {
                    if self.service_intrinsic(which, &args).is_err() {
                        break;
                    }
                }
                _ => break,
            }
        }
    }
}

/// A stable fingerprint of a module's virtual object code, used as the
/// cache timestamp ("check a timestamp on an LLVA program", §4.1).
pub fn stamp(module: &Module) -> u64 {
    let bytes = llva_core::bytecode::encode_module(module);
    // FNV-1a
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;
    use llva_machine::common::TrapKind;

    const FIB: &str = r#"
int %fib(int %n) {
entry:
    %c = setlt int %n, 2
    br bool %c, label %base, label %rec
base:
    ret int %n
rec:
    %n1 = sub int %n, 1
    %a = call int %fib(int %n1)
    %n2 = sub int %n, 2
    %b = call int %fib(int %n2)
    %s = add int %a, %b
    ret int %s
}

int %main() {
entry:
    %r = call int %fib(int 15)
    ret int %r
}
"#;

    fn module(src: &str) -> Module {
        llva_core::parser::parse_module(src).expect("parses")
    }

    #[test]
    fn jit_on_demand_both_targets() {
        for isa in [TargetIsa::X86, TargetIsa::Sparc] {
            let mut mgr = ExecutionManager::new(module(FIB), isa);
            let out = mgr.run("main", &[]).expect("runs");
            assert_eq!(out.value, 610, "{isa}");
            // both functions translated lazily
            assert_eq!(mgr.stats().functions_translated, 2);
        }
    }

    #[test]
    fn lazy_translation_skips_unused_functions() {
        let src = r#"
int %unused(int %x) {
entry:
    ret int %x
}

int %main() {
entry:
    ret int 5
}
"#;
        let mut mgr = ExecutionManager::new(module(src), TargetIsa::X86);
        mgr.run("main", &[]).expect("runs");
        // "the JIT translates functions on demand, so that unused code
        // is not translated" (§5.2)
        assert_eq!(mgr.stats().functions_translated, 1);
    }

    #[test]
    fn offline_cache_round_trip() {
        let storage = crate::storage::SharedStorage::new(MemStorage::new());
        // first run: translate + populate the cache
        {
            let mut mgr = ExecutionManager::new(module(FIB), TargetIsa::X86);
            mgr.set_storage(Box::new(storage.clone()), "fib");
            let out = mgr.run("main", &[]).expect("runs");
            assert_eq!(out.value, 610);
            assert_eq!(mgr.stats().functions_translated, 2);
            assert_eq!(mgr.stats().cache_hits, 0);
        }
        // second run: everything loads from the cache
        {
            let mut mgr = ExecutionManager::new(module(FIB), TargetIsa::X86);
            mgr.set_storage(Box::new(storage), "fib");
            let out = mgr.run("main", &[]).expect("runs");
            assert_eq!(out.value, 610);
            assert_eq!(mgr.stats().functions_translated, 0, "all from cache");
            assert_eq!(mgr.stats().cache_hits, 2);
        }
    }

    #[test]
    fn stale_cache_entries_rejected() {
        let storage = crate::storage::SharedStorage::new(MemStorage::new());
        {
            let mut mgr = ExecutionManager::new(module(FIB), TargetIsa::X86);
            mgr.set_storage(Box::new(storage.clone()), "fib");
            mgr.run("main", &[]).expect("runs");
        }
        // a *different* program with the same names must not reuse the
        // cached code (timestamp = module fingerprint)
        let other = r#"
int %fib(int %n) {
entry:
    ret int 0
}

int %main() {
entry:
    %r = call int %fib(int 15)
    ret int %r
}
"#;
        let mut mgr = ExecutionManager::new(module(other), TargetIsa::X86);
        mgr.set_storage(Box::new(storage), "fib");
        let out = mgr.run("main", &[]).expect("runs");
        assert_eq!(out.value, 0, "new semantics, not cached ones");
        assert!(mgr.stats().functions_translated > 0);
        assert_eq!(mgr.stats().cache_hits, 0);
    }

    #[test]
    fn offline_translation_avoids_online_jit() {
        let mut mgr = ExecutionManager::new(module(FIB), TargetIsa::Sparc);
        mgr.translate_all().expect("translates");
        let before = mgr.stats().functions_translated;
        mgr.run("main", &[]).expect("runs");
        assert_eq!(mgr.stats().functions_translated, before, "no online JIT");
    }

    #[test]
    fn intrinsics_via_native_code() {
        let src = r#"
declare int %llva.io.putchar(int)

int %main() {
entry:
    %a = call int %llva.io.putchar(int 111)
    %b = call int %llva.io.putchar(int 107)
    ret int 0
}
"#;
        for isa in [TargetIsa::X86, TargetIsa::Sparc] {
            let mut mgr = ExecutionManager::new(module(src), isa);
            mgr.run("main", &[]).expect("runs");
            assert_eq!(mgr.env.stdout_string(), "ok", "{isa}");
        }
    }

    #[test]
    fn heap_alloc_intrinsic_end_to_end() {
        let src = r#"
declare sbyte* %llva.heap.alloc(ulong)

int %main() {
entry:
    %p = call sbyte* %llva.heap.alloc(ulong 16)
    %ip = cast sbyte* %p to int*
    store int 42, int* %ip
    %v = load int* %ip
    ret int %v
}
"#;
        for isa in [TargetIsa::X86, TargetIsa::Sparc] {
            let mut mgr = ExecutionManager::new(module(src), isa);
            let out = mgr.run("main", &[]).expect("runs");
            assert_eq!(out.value, 42, "{isa}");
        }
    }

    #[test]
    fn smc_invalidation_retranslates_next_call() {
        let mut mgr = ExecutionManager::new(module(FIB), TargetIsa::X86);
        mgr.run("main", &[]).expect("runs");
        let before = mgr.stats().functions_translated;
        // SMC: change fib to return 0 for every input
        mgr.modify_function("fib", |m, fid| {
            m.discard_function_body(fid);
            let int = m.types_mut().int();
            let mut b = llva_core::builder::FunctionBuilder::new(m, fid);
            let e = b.block("entry");
            b.switch_to(e);
            let zero = b.iconst(int, 0);
            b.ret(Some(zero));
        });
        let out = mgr.run("main", &[]).expect("runs");
        assert_eq!(out.value, 0, "future invocations see the new code");
        assert!(mgr.stats().functions_translated > before);
        assert_eq!(mgr.stats().invalidations, 1);
    }

    #[test]
    fn trap_reported_after_handler() {
        let src = r#"
int %main(int %x) {
entry:
    %q = div int 10, %x
    ret int %q
}
"#;
        let mut mgr = ExecutionManager::new(module(src), TargetIsa::X86);
        match mgr.run("main", &[0]) {
            Err(EngineError::Trapped(t)) => assert_eq!(t.kind, TrapKind::DivideByZero),
            other => panic!("expected trap, got {other:?}"),
        }
    }
}
