//! Textual LLVA assembly printer (the syntax of paper Figure 2(b)).
//!
//! The printed form round-trips through [`parser`](crate::parser). Values
//! print with their assigned names when present, otherwise with stable
//! sequential numbers. Non-default `ExceptionsEnabled` attributes print
//! as `[exc]` / `[noexc]` after the mnemonic so the flexible exception
//! model of §3.3 survives the round trip.

use crate::function::{BlockId, Function};
use crate::instruction::{InstId, Opcode};
use crate::module::{Initializer, Module};
use crate::types::TypeKind;
use crate::value::{Constant, ValueData, ValueId};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Prints a whole module as LLVA assembly.
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    let tt = module.types();
    let _ = writeln!(out, "; module '{}'", module.name());
    let _ = writeln!(
        out,
        "target pointersize = {}",
        module.target().pointer_size.bits()
    );
    let _ = writeln!(
        out,
        "target endian = {}",
        match module.target().endianness {
            crate::layout::Endianness::Little => "little",
            crate::layout::Endianness::Big => "big",
        }
    );
    let _ = writeln!(out);

    for (_, def) in tt.struct_defs() {
        match def.body() {
            Some(fields) => {
                let inner: Vec<String> = fields.iter().map(|&f| tt.display(f)).collect();
                let _ = writeln!(out, "%{} = type {{ {} }}", def.name(), inner.join(", "));
            }
            None => {
                let _ = writeln!(out, "%{} = type opaque", def.name());
            }
        }
    }
    if tt.struct_defs().next().is_some() {
        let _ = writeln!(out);
    }

    for (_, g) in module.globals() {
        let kw = if g.is_const() { "constant" } else { "global" };
        let link = match g.linkage() {
            crate::function::Linkage::Internal => "internal ",
            crate::function::Linkage::External => "",
        };
        let _ = writeln!(
            out,
            "@{} = {}{} {} {}",
            g.name(),
            link,
            kw,
            tt.display(g.value_type()),
            print_initializer(module, g.init())
        );
    }
    if module.num_globals() > 0 {
        let _ = writeln!(out);
    }

    for (_, f) in module.functions() {
        if f.is_declaration() {
            let params: Vec<String> = f.param_types().iter().map(|&p| tt.display(p)).collect();
            let _ = writeln!(
                out,
                "declare {} %{}({})",
                tt.display(f.return_type()),
                f.name(),
                params.join(", ")
            );
        } else {
            out.push_str(&print_function(module, f));
        }
        let _ = writeln!(out);
    }
    out
}

/// Prints an initializer expression.
pub fn print_initializer(module: &Module, init: &Initializer) -> String {
    match init {
        Initializer::Zero => "zeroinitializer".into(),
        Initializer::Scalar(c) => print_constant_payload(module, c),
        Initializer::Array(items) => {
            let inner: Vec<String> = items
                .iter()
                .map(|i| print_initializer(module, i))
                .collect();
            format!("[ {} ]", inner.join(", "))
        }
        Initializer::Struct(items) => {
            let inner: Vec<String> = items
                .iter()
                .map(|i| print_initializer(module, i))
                .collect();
            format!("{{ {} }}", inner.join(", "))
        }
        Initializer::Bytes(bytes) => {
            let mut s = String::from("c\"");
            for &b in bytes {
                match b {
                    b'"' => s.push_str("\\22"),
                    b'\\' => s.push_str("\\5C"),
                    0x20..=0x7e => s.push(b as char),
                    _ => {
                        let _ = write!(s, "\\{b:02X}");
                    }
                }
            }
            s.push('"');
            s
        }
    }
}

/// Assigns printable names to every value in `func`: explicit names win,
/// everything else gets a sequential number.
pub fn value_names(func: &Function) -> HashMap<ValueId, String> {
    let mut names = HashMap::new();
    let mut used: HashMap<String, usize> = HashMap::new();
    let mut next = 0usize;
    let mut assign = |v: ValueId, names: &mut HashMap<ValueId, String>| {
        if names.contains_key(&v) {
            return;
        }
        let name = match func.value_name(v) {
            Some(n) => {
                // explicit names may repeat (e.g. shadowed locals);
                // uniquify for the textual form
                let count = used.entry(n.to_string()).or_insert(0);
                let unique = if *count == 0 {
                    n.to_string()
                } else {
                    format!("{n}.{count}")
                };
                *count += 1;
                unique
            }
            None => {
                let n = next.to_string();
                next += 1;
                n
            }
        };
        names.insert(v, name);
    };
    for &a in func.args() {
        assign(a, &mut names);
    }
    for (_, inst) in func.inst_iter() {
        if let Some(r) = func.inst_result(inst) {
            assign(r, &mut names);
        }
    }
    names
}

/// Assigns unique printable labels to every laid-out block (block
/// names are not required to be unique in the IR, but labels are in
/// the textual form).
pub fn block_names(func: &Function) -> HashMap<BlockId, String> {
    let mut used: HashMap<String, usize> = HashMap::new();
    let mut out = HashMap::new();
    for &b in func.block_order() {
        let base = func.block(b).name().to_string();
        let n = used.entry(base.clone()).or_insert(0);
        let name = if *n == 0 { base.clone() } else { format!("{base}.{n}") };
        *n += 1;
        out.insert(b, name);
    }
    out
}

/// Prints a single function definition.
pub fn print_function(module: &Module, func: &Function) -> String {
    let tt = module.types();
    let names = value_names(func);
    let blocks = block_names(func);
    let mut out = String::new();
    let params: Vec<String> = func
        .args()
        .iter()
        .zip(func.param_types())
        .map(|(&a, &t)| format!("{} %{}", tt.display(t), names[&a]))
        .collect();
    let link = match func.linkage() {
        crate::function::Linkage::Internal => "internal ",
        crate::function::Linkage::External => "",
    };
    let _ = writeln!(
        out,
        "{}{} %{}({}) {{",
        link,
        tt.display(func.return_type()),
        func.name(),
        params.join(", ")
    );
    for &b in func.block_order() {
        let _ = writeln!(out, "{}:", blocks[&b]);
        for &i in func.block(b).insts() {
            let _ = writeln!(out, "    {}", print_inst(module, func, &names, &blocks, i));
        }
    }
    out.push_str("}\n");
    out
}

fn operand(module: &Module, func: &Function, names: &HashMap<ValueId, String>, v: ValueId) -> String {
    match func.value(v) {
        ValueData::Const(c) => print_constant_payload(module, c),
        _ => format!("%{}", names[&v]),
    }
}

fn typed_operand(
    module: &Module,
    func: &Function,
    names: &HashMap<ValueId, String>,
    v: ValueId,
) -> String {
    let ty = value_type_str(module, func, v);
    format!("{} {}", ty, operand(module, func, names, v))
}

fn value_type_str(module: &Module, func: &Function, v: ValueId) -> String {
    let tt = module.types();
    match func.value(v) {
        ValueData::Const(Constant::Bool(_)) => "bool".into(),
        ValueData::Const(c) => tt.display(c.type_id().expect("non-bool constant has a type")),
        ValueData::Arg { ty, .. } | ValueData::Inst { ty, .. } => tt.display(*ty),
    }
}

/// Prints the payload of a constant (without its type).
pub fn print_constant_payload(module: &Module, c: &Constant) -> String {
    let tt = module.types();
    match c {
        Constant::Bool(b) => b.to_string(),
        Constant::Int { ty, bits } => {
            if tt.is_signed_integer(*ty) {
                let w = tt.int_bits(*ty).expect("integer");
                let signed = sign_extend(*bits, w);
                signed.to_string()
            } else {
                bits.to_string()
            }
        }
        Constant::Float { ty, bits } => match tt.kind(*ty) {
            TypeKind::Float => format!("0x{:08X}", *bits as u32),
            _ => format!("0x{bits:016X}"),
        },
        Constant::Null(_) => "null".into(),
        Constant::GlobalAddr { global, .. } => format!("@{}", module.global(*global).name()),
        Constant::FunctionAddr { func, .. } => format!("%{}", module.function(*func).name()),
        Constant::Undef(_) => "undef".into(),
    }
}

fn sign_extend(bits: u64, width: u32) -> i64 {
    if width >= 64 {
        return bits as i64;
    }
    let shift = 64 - width;
    ((bits << shift) as i64) >> shift
}

fn exc_attr(func: &Function, id: InstId) -> &'static str {
    let inst = func.inst(id);
    let default = inst.opcode().default_exceptions_enabled();
    match (inst.exceptions_enabled(), default) {
        (true, false) => "[exc] ",
        (false, true) => "[noexc] ",
        _ => "",
    }
}

/// Prints one instruction in assembly syntax.
pub fn print_inst(
    module: &Module,
    func: &Function,
    names: &HashMap<ValueId, String>,
    blocks_map: &HashMap<BlockId, String>,
    id: InstId,
) -> String {
    let tt = module.types();
    let inst = func.inst(id);
    let op = inst.opcode();
    let ops = inst.operands();
    let blocks = inst.block_operands();
    let result_prefix = match func.inst_result(id) {
        Some(r) => format!("%{} = ", names[&r]),
        None => String::new(),
    };
    let exc = exc_attr(func, id);
    let label = |b: BlockId| format!("label %{}", blocks_map[&b]);

    match op {
        _ if op.is_binary() || op.is_comparison() => {
            let ty = value_type_str(module, func, ops[0]);
            format!(
                "{result_prefix}{op} {exc}{ty} {}, {}",
                operand(module, func, names, ops[0]),
                operand(module, func, names, ops[1])
            )
        }
        Opcode::Ret => match ops.first() {
            Some(&v) => format!("ret {exc}{}", typed_operand(module, func, names, v)),
            None => format!("ret {exc}void"),
        },
        Opcode::Br => {
            if ops.is_empty() {
                format!("br {exc}{}", label(blocks[0]))
            } else {
                format!(
                    "br {exc}bool {}, {}, {}",
                    operand(module, func, names, ops[0]),
                    label(blocks[0]),
                    label(blocks[1])
                )
            }
        }
        Opcode::Mbr => {
            let mut s = format!(
                "mbr {exc}{}, {}",
                typed_operand(module, func, names, ops[0]),
                label(blocks[0])
            );
            for (i, &case) in ops[1..].iter().enumerate() {
                let _ = write!(
                    s,
                    ", [ {}, {} ]",
                    typed_operand(module, func, names, case),
                    label(blocks[1 + i])
                );
            }
            s
        }
        Opcode::Invoke => {
            let args: Vec<String> = ops[1..]
                .iter()
                .map(|&a| typed_operand(module, func, names, a))
                .collect();
            format!(
                "{result_prefix}invoke {exc}{} {}({}) to {} unwind {}",
                tt.display(inst.result_type()),
                operand(module, func, names, ops[0]),
                args.join(", "),
                label(blocks[0]),
                label(blocks[1])
            )
        }
        Opcode::Unwind => format!("unwind {exc}").trim_end().to_string(),
        Opcode::Load => {
            format!(
                "{result_prefix}load {exc}{}",
                typed_operand(module, func, names, ops[0])
            )
        }
        Opcode::Store => format!(
            "store {exc}{}, {}",
            typed_operand(module, func, names, ops[0]),
            typed_operand(module, func, names, ops[1])
        ),
        Opcode::GetElementPtr => {
            let indices: Vec<String> = ops[1..]
                .iter()
                .map(|&i| typed_operand(module, func, names, i))
                .collect();
            format!(
                "{result_prefix}getelementptr {exc}{}, {}",
                typed_operand(module, func, names, ops[0]),
                indices.join(", ")
            )
        }
        Opcode::Alloca => {
            let pointee = tt
                .pointee(inst.result_type())
                .expect("alloca produces a pointer");
            match ops.first() {
                Some(&count) => format!(
                    "{result_prefix}alloca {exc}{}, {}",
                    tt.display(pointee),
                    typed_operand(module, func, names, count)
                ),
                None => format!("{result_prefix}alloca {exc}{}", tt.display(pointee)),
            }
        }
        Opcode::Cast => format!(
            "{result_prefix}cast {exc}{} to {}",
            typed_operand(module, func, names, ops[0]),
            tt.display(inst.result_type())
        ),
        Opcode::Call => {
            let args: Vec<String> = ops[1..]
                .iter()
                .map(|&a| typed_operand(module, func, names, a))
                .collect();
            format!(
                "{result_prefix}call {exc}{} {}({})",
                tt.display(inst.result_type()),
                operand(module, func, names, ops[0]),
                args.join(", ")
            )
        }
        Opcode::Phi => {
            let pairs: Vec<String> = ops
                .iter()
                .zip(blocks)
                .map(|(&v, &b)| {
                    format!(
                        "[ {}, %{} ]",
                        operand(module, func, names, v),
                        blocks_map[&b]
                    )
                })
                .collect();
            format!(
                "{result_prefix}phi {exc}{} {}",
                tt.display(inst.result_type()),
                pairs.join(", ")
            )
        }
        _ => unreachable!("all opcodes covered"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::layout::TargetConfig;

    #[test]
    fn prints_add_function() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let f = m.add_function("add", int, vec![int, int]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let (x, y) = (b.func().args()[0], b.func().args()[1]);
        b.name_value(x, "x");
        b.name_value(y, "y");
        let s = b.add(x, y);
        b.name_value(s, "sum");
        b.ret(Some(s));
        let text = print_function(&m, m.function(f));
        assert!(text.contains("int %add(int %x, int %y)"), "{text}");
        assert!(text.contains("%sum = add int %x, %y"), "{text}");
        assert!(text.contains("ret int %sum"), "{text}");
    }

    #[test]
    fn prints_module_header() {
        let m = Module::new("m", TargetConfig::sparc_v9());
        let text = print_module(&m);
        assert!(text.contains("target pointersize = 64"));
        assert!(text.contains("target endian = big"));
    }

    #[test]
    fn prints_signed_and_unsigned_constants() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let uint = m.types_mut().uint();
        let f = m.add_function("f", int, vec![]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let neg = b.iconst(int, -3);
        let big = b.iconst(uint, 0xFFFF_FFFF);
        let x = b.cast(big, int);
        let y = b.add(neg, x);
        b.ret(Some(y));
        let text = print_function(&m, m.function(f));
        assert!(text.contains("int -3"), "{text}");
        assert!(text.contains("uint 4294967295"), "{text}");
    }

    #[test]
    fn prints_noexc_attribute_only_when_nondefault() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let f = m.add_function("f", int, vec![int, int]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let (x, y) = (b.func().args()[0], b.func().args()[1]);
        let d = b.div(x, y);
        b.ret(Some(d));
        // default: div has exceptions enabled -> no attribute shown
        let text = print_function(&m, m.function(f));
        assert!(text.contains("div int"), "{text}");
        assert!(!text.contains("[exc]"), "{text}");
        // flip it off -> [noexc] printed
        let div_inst = m.function(f).block(e).insts()[0];
        m.function_mut(f).inst_mut(div_inst).set_exceptions_enabled(false);
        let text = print_function(&m, m.function(f));
        assert!(text.contains("div [noexc] int"), "{text}");
    }

    #[test]
    fn prints_phi_and_branches() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let f = m.add_function("f", int, vec![int]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.block("entry");
        let t = b.block("t");
        let j = b.block("j");
        b.switch_to(e);
        let x = b.func().args()[0];
        let zero = b.iconst(int, 0);
        let c = b.setgt(x, zero);
        b.cond_br(c, t, j);
        b.switch_to(t);
        b.br(j);
        b.switch_to(j);
        let p = b.phi(int, vec![(x, t), (zero, e)]);
        b.ret(Some(p));
        let text = print_function(&m, m.function(f));
        assert!(text.contains("br bool"), "{text}");
        assert!(text.contains("label %t, label %j"), "{text}");
        assert!(text.contains("phi int [ "), "{text}");
    }

    #[test]
    fn prints_global_with_bytes_init() {
        let mut m = Module::new("m", TargetConfig::default());
        let sb = m.types_mut().sbyte();
        let arr = m.types_mut().array_of(sb, 6);
        m.add_global(
            "msg",
            arr,
            Initializer::Bytes(b"hi\n\0!\\".to_vec()),
            true,
        );
        let text = print_module(&m);
        assert!(text.contains("@msg = constant [6 x sbyte] c\"hi\\0A\\00!\\5C\""), "{text}");
    }
}
