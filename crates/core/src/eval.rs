//! Compile-time evaluation of LLVA scalar operations on constants.
//!
//! Shared by the constant-folding optimizer and the code generators.
//! Semantics match the reference interpreter in `llva-engine`: integer
//! arithmetic wraps at the type width, shifts mask the shift amount,
//! division by zero does *not* fold (it must trap — or not — at run
//! time depending on `ExceptionsEnabled`).

use crate::instruction::Opcode;
use crate::types::{TypeId, TypeKind, TypeTable};
use crate::value::Constant;

/// Truncates `bits` to `width` bits.
pub fn truncate(bits: u64, width: u32) -> u64 {
    if width >= 64 {
        bits
    } else {
        bits & ((1u64 << width) - 1)
    }
}

/// Sign-extends the low `width` bits of `bits` to 64 bits.
pub fn sign_extend(bits: u64, width: u32) -> i64 {
    if width >= 64 {
        return bits as i64;
    }
    let shift = 64 - width;
    ((bits << shift) as i64) >> shift
}

/// Folds a binary arithmetic/bitwise operation over two constants.
///
/// Returns `None` when the operation cannot be folded at compile time
/// (mismatched kinds, division by zero, non-numeric types).
pub fn fold_binary(
    types: &TypeTable,
    op: Opcode,
    lhs: &Constant,
    rhs: &Constant,
) -> Option<Constant> {
    debug_assert!(op.is_binary());
    match (lhs, rhs) {
        (Constant::Int { ty, bits: a }, Constant::Int { ty: ty2, bits: b }) if ty == ty2 => {
            let width = types.int_bits(*ty)?;
            let signed = types.is_signed_integer(*ty);
            let bits = fold_int_binary(op, *a, *b, width, signed)?;
            Some(Constant::Int {
                ty: *ty,
                bits: truncate(bits, width),
            })
        }
        (Constant::Float { ty, bits: a }, Constant::Float { ty: ty2, bits: b }) if ty == ty2 => {
            let is_f32 = matches!(types.kind(*ty), TypeKind::Float);
            let (x, y) = if is_f32 {
                (
                    f32::from_bits(*a as u32) as f64,
                    f32::from_bits(*b as u32) as f64,
                )
            } else {
                (f64::from_bits(*a), f64::from_bits(*b))
            };
            let r = match op {
                Opcode::Add => x + y,
                Opcode::Sub => x - y,
                Opcode::Mul => x * y,
                Opcode::Div => x / y,
                Opcode::Rem => x % y,
                _ => return None, // no bitwise on floats
            };
            let bits = if is_f32 {
                (r as f32).to_bits() as u64
            } else {
                r.to_bits()
            };
            Some(Constant::Float { ty: *ty, bits })
        }
        _ => None,
    }
}

fn fold_int_binary(op: Opcode, a: u64, b: u64, width: u32, signed: bool) -> Option<u64> {
    let sa = sign_extend(a, width);
    let sb = sign_extend(b, width);
    Some(match op {
        Opcode::Add => a.wrapping_add(b),
        Opcode::Sub => a.wrapping_sub(b),
        Opcode::Mul => a.wrapping_mul(b),
        Opcode::Div => {
            if b == 0 {
                return None; // must trap at run time
            }
            if signed {
                sa.checked_div(sb)? as u64
            } else {
                a / b
            }
        }
        Opcode::Rem => {
            if b == 0 {
                return None;
            }
            if signed {
                sa.checked_rem(sb)? as u64
            } else {
                a % b
            }
        }
        Opcode::And => a & b,
        Opcode::Or => a | b,
        Opcode::Xor => a ^ b,
        Opcode::Shl => {
            let sh = (b % u64::from(width.max(1))) as u32;
            a.wrapping_shl(sh)
        }
        Opcode::Shr => {
            let sh = (b % u64::from(width.max(1))) as u32;
            if signed {
                (sign_extend(a, width) >> sh) as u64
            } else {
                truncate(a, width) >> sh
            }
        }
        _ => return None,
    })
}

/// Folds one of the six `set*` comparisons over two constants.
pub fn fold_compare(
    types: &TypeTable,
    op: Opcode,
    lhs: &Constant,
    rhs: &Constant,
) -> Option<Constant> {
    debug_assert!(op.is_comparison());
    use std::cmp::Ordering;
    let ord = match (lhs, rhs) {
        (Constant::Bool(a), Constant::Bool(b)) => a.cmp(b),
        (Constant::Int { ty, bits: a }, Constant::Int { ty: ty2, bits: b }) if ty == ty2 => {
            let width = types.int_bits(*ty)?;
            if types.is_signed_integer(*ty) {
                sign_extend(*a, width).cmp(&sign_extend(*b, width))
            } else {
                truncate(*a, width).cmp(&truncate(*b, width))
            }
        }
        (Constant::Float { ty, bits: a }, Constant::Float { ty: ty2, bits: b }) if ty == ty2 => {
            let is_f32 = matches!(types.kind(*ty), TypeKind::Float);
            let (x, y) = if is_f32 {
                (
                    f32::from_bits(*a as u32) as f64,
                    f32::from_bits(*b as u32) as f64,
                )
            } else {
                (f64::from_bits(*a), f64::from_bits(*b))
            };
            x.partial_cmp(&y)?
        }
        (Constant::Null(t1), Constant::Null(t2)) if t1 == t2 => Ordering::Equal,
        // A global/function address is never null.
        (Constant::GlobalAddr { .. }, Constant::Null(_))
        | (Constant::FunctionAddr { .. }, Constant::Null(_)) => Ordering::Greater,
        (Constant::Null(_), Constant::GlobalAddr { .. })
        | (Constant::Null(_), Constant::FunctionAddr { .. }) => Ordering::Less,
        _ => return None,
    };
    let r = match op {
        Opcode::SetEq => ord == Ordering::Equal,
        Opcode::SetNe => ord != Ordering::Equal,
        Opcode::SetLt => ord == Ordering::Less,
        Opcode::SetGt => ord == Ordering::Greater,
        Opcode::SetLe => ord != Ordering::Greater,
        Opcode::SetGe => ord != Ordering::Less,
        _ => return None,
    };
    Some(Constant::Bool(r))
}

/// Folds a `cast` of a constant to `to`.
pub fn fold_cast(types: &TypeTable, value: &Constant, to: TypeId) -> Option<Constant> {
    let to_kind = types.kind(to).clone();
    // Source as a (value, signedness) pair where applicable.
    match value {
        Constant::Bool(b) => {
            let v = u64::from(*b);
            cast_from_int(types, v, false, to, &to_kind)
        }
        Constant::Int { ty, bits } => {
            let w = types.int_bits(*ty)?;
            let signed = types.is_signed_integer(*ty);
            let v = if signed {
                sign_extend(*bits, w) as u64
            } else {
                truncate(*bits, w)
            };
            cast_from_int(types, v, signed, to, &to_kind)
        }
        Constant::Float { ty, bits } => {
            let is_f32 = matches!(types.kind(*ty), TypeKind::Float);
            let x = if is_f32 {
                f32::from_bits(*bits as u32) as f64
            } else {
                f64::from_bits(*bits)
            };
            match to_kind {
                TypeKind::Float => Some(Constant::Float {
                    ty: to,
                    bits: (x as f32).to_bits() as u64,
                }),
                TypeKind::Double => Some(Constant::Float {
                    ty: to,
                    bits: x.to_bits(),
                }),
                TypeKind::Bool => Some(Constant::Bool(x != 0.0)),
                _ if types.is_integer(to) => {
                    let w = types.int_bits(to)?;
                    let v = if types.is_signed_integer(to) {
                        (x as i64) as u64
                    } else {
                        x as u64
                    };
                    Some(Constant::Int {
                        ty: to,
                        bits: truncate(v, w),
                    })
                }
                _ => None,
            }
        }
        Constant::Null(_) => match to_kind {
            TypeKind::Pointer(_) => Some(Constant::Null(to)),
            TypeKind::Bool => Some(Constant::Bool(false)),
            _ if types.is_integer(to) => Some(Constant::Int { ty: to, bits: 0 }),
            _ => None,
        },
        Constant::GlobalAddr { global, .. } if types.is_pointer(to) => Some(Constant::GlobalAddr {
            global: *global,
            ty: to,
        }),
        Constant::FunctionAddr { func, .. } if types.is_pointer(to) => {
            Some(Constant::FunctionAddr {
                func: *func,
                ty: to,
            })
        }
        Constant::Undef(_) => Some(Constant::Undef(to)),
        _ => None,
    }
}

fn cast_from_int(
    types: &TypeTable,
    v: u64,
    signed: bool,
    to: TypeId,
    to_kind: &TypeKind,
) -> Option<Constant> {
    match to_kind {
        TypeKind::Bool => Some(Constant::Bool(v != 0)),
        TypeKind::Float => {
            let x = if signed { v as i64 as f64 } else { v as f64 };
            Some(Constant::Float {
                ty: to,
                bits: (x as f32).to_bits() as u64,
            })
        }
        TypeKind::Double => {
            let x = if signed { v as i64 as f64 } else { v as f64 };
            Some(Constant::Float {
                ty: to,
                bits: x.to_bits(),
            })
        }
        TypeKind::Pointer(_) => None, // int-to-pointer: not foldable
        _ if types.is_integer(to) => {
            let w = types.int_bits(to)?;
            Some(Constant::Int {
                ty: to,
                bits: truncate(v, w),
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tt() -> TypeTable {
        TypeTable::new()
    }

    fn ci(tt: &mut TypeTable, v: i64) -> Constant {
        let int = tt.int();
        Constant::Int {
            ty: int,
            bits: truncate(v as u64, 32),
        }
    }

    #[test]
    fn int_arithmetic_wraps() {
        let mut t = tt();
        let a = ci(&mut t, i32::MAX as i64);
        let b = ci(&mut t, 1);
        let r = fold_binary(&t, Opcode::Add, &a, &b).expect("folds");
        assert_eq!(r.as_int_bits(), Some(truncate(i32::MIN as u64, 32)));
    }

    #[test]
    fn signed_division() {
        let mut t = tt();
        let a = ci(&mut t, -7);
        let b = ci(&mut t, 2);
        let r = fold_binary(&t, Opcode::Div, &a, &b).expect("folds");
        assert_eq!(sign_extend(r.as_int_bits().unwrap(), 32), -3);
        let r = fold_binary(&t, Opcode::Rem, &a, &b).expect("folds");
        assert_eq!(sign_extend(r.as_int_bits().unwrap(), 32), -1);
    }

    #[test]
    fn division_by_zero_does_not_fold() {
        let mut t = tt();
        let a = ci(&mut t, 1);
        let z = ci(&mut t, 0);
        assert_eq!(fold_binary(&t, Opcode::Div, &a, &z), None);
        assert_eq!(fold_binary(&t, Opcode::Rem, &a, &z), None);
    }

    #[test]
    fn unsigned_vs_signed_shr() {
        let mut t = tt();
        let int = t.int();
        let uint = t.uint();
        let neg = Constant::Int {
            ty: int,
            bits: truncate(-8i64 as u64, 32),
        };
        let one = Constant::Int { ty: int, bits: 1 };
        let r = fold_binary(&t, Opcode::Shr, &neg, &one).expect("folds");
        assert_eq!(sign_extend(r.as_int_bits().unwrap(), 32), -4);
        let uneg = Constant::Int {
            ty: uint,
            bits: truncate(-8i64 as u64, 32),
        };
        let uone = Constant::Int { ty: uint, bits: 1 };
        let r = fold_binary(&t, Opcode::Shr, &uneg, &uone).expect("folds");
        assert_eq!(r.as_int_bits(), Some(truncate(-8i64 as u64, 32) >> 1));
    }

    #[test]
    fn comparisons_respect_signedness() {
        let mut t = tt();
        let int = t.int();
        let uint = t.uint();
        let m1 = Constant::Int {
            ty: int,
            bits: truncate(-1i64 as u64, 32),
        };
        let one = Constant::Int { ty: int, bits: 1 };
        assert_eq!(
            fold_compare(&t, Opcode::SetLt, &m1, &one),
            Some(Constant::Bool(true))
        );
        let um1 = Constant::Int {
            ty: uint,
            bits: truncate(-1i64 as u64, 32),
        };
        let uone = Constant::Int { ty: uint, bits: 1 };
        assert_eq!(
            fold_compare(&t, Opcode::SetLt, &um1, &uone),
            Some(Constant::Bool(false))
        );
    }

    #[test]
    fn float_folding() {
        let mut t = tt();
        let dbl = t.double();
        let a = Constant::Float {
            ty: dbl,
            bits: 1.5f64.to_bits(),
        };
        let b = Constant::Float {
            ty: dbl,
            bits: 2.0f64.to_bits(),
        };
        let r = fold_binary(&t, Opcode::Mul, &a, &b).expect("folds");
        assert_eq!(r.as_f64(false), Some(3.0));
        assert_eq!(
            fold_compare(&t, Opcode::SetGt, &b, &a),
            Some(Constant::Bool(true))
        );
    }

    #[test]
    fn casts() {
        let mut t = tt();
        let int = t.int();
        let ubyte = t.ubyte();
        let dbl = t.double();
        let c = Constant::Int {
            ty: int,
            bits: truncate(300, 32),
        };
        // int 300 -> ubyte 44
        let r = fold_cast(&t, &c, ubyte).expect("folds");
        assert_eq!(r.as_int_bits(), Some(44));
        // int -2 -> double -2.0
        let neg = Constant::Int {
            ty: int,
            bits: truncate(-2i64 as u64, 32),
        };
        let r = fold_cast(&t, &neg, dbl).expect("folds");
        assert_eq!(r.as_f64(false), Some(-2.0));
        // double 3.7 -> int 3
        let f = Constant::Float {
            ty: dbl,
            bits: 3.7f64.to_bits(),
        };
        let r = fold_cast(&t, &f, int).expect("folds");
        assert_eq!(r.as_int_bits(), Some(3));
    }

    #[test]
    fn null_comparisons() {
        let mut t = tt();
        let int = t.int();
        let p = t.pointer_to(int);
        let null = Constant::Null(p);
        assert_eq!(
            fold_compare(&t, Opcode::SetEq, &null, &null),
            Some(Constant::Bool(true))
        );
        let g = Constant::GlobalAddr {
            global: crate::module::GlobalId::from_index(0),
            ty: p,
        };
        assert_eq!(
            fold_compare(&t, Opcode::SetEq, &g, &null),
            Some(Constant::Bool(false))
        );
        assert_eq!(
            fold_compare(&t, Opcode::SetNe, &null, &g),
            Some(Constant::Bool(true))
        );
    }
}
