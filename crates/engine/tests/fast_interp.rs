//! Differential tests: the pre-decoded [`FastInterpreter`] must be
//! value-for-value, trap-for-trap identical to the structural
//! [`Interpreter`] — same results, same precise trap coordinates
//! (function, block, in-block index), same instruction counts — plus
//! frame-slab consistency under recursion, unwinding, and fuel
//! exhaustion.

use llva_core::module::Module;
use llva_engine::{FastInterpreter, InterpError, Interpreter, PreModule};
use llva_machine::common::TrapKind;
use std::rc::Rc;

fn parse(src: &str) -> Module {
    let m = llva_core::parser::parse_module(src).expect("parses");
    llva_core::verifier::verify_module(&m).expect("verifies");
    m
}

/// Runs `entry(args)` under both interpreters and asserts the complete
/// observable outcome matches: the result (including every `LlvaTrap`
/// field), the instruction count, and the intrinsic stdout stream.
/// Returns the (shared) outcome.
fn run_both(src: &str, entry: &str, args: &[u64]) -> Result<u64, InterpError> {
    run_both_fuel(src, entry, args, u64::MAX)
}

fn run_both_fuel(
    src: &str,
    entry: &str,
    args: &[u64],
    fuel: u64,
) -> Result<u64, InterpError> {
    let m = parse(src);
    let mut slow = Interpreter::new(&m);
    slow.set_fuel(fuel);
    let expected = slow.run(entry, args);
    let mut fast = FastInterpreter::new(&m);
    fast.set_fuel(fuel);
    let got = fast.run(entry, args);
    assert_eq!(got, expected, "outcomes diverge on {entry}{args:?}");
    assert_eq!(
        fast.insts_executed(),
        slow.insts_executed(),
        "instruction counts diverge on {entry}{args:?}"
    );
    assert_eq!(
        fast.env.stdout_string(),
        slow.env.stdout_string(),
        "intrinsic output diverges on {entry}{args:?}"
    );
    assert!(fast.slab_consistent(), "slab inconsistent after {entry}{args:?}");
    got
}

// ---------------------------------------------------------------------------
// the structural interpreter's unit-test programs, run differentially
// ---------------------------------------------------------------------------

#[test]
fn fib() {
    let r = run_both(
        r#"
int %fib(int %n) {
entry:
    %c = setlt int %n, 2
    br bool %c, label %base, label %rec
base:
    ret int %n
rec:
    %n1 = sub int %n, 1
    %a = call int %fib(int %n1)
    %n2 = sub int %n, 2
    %b = call int %fib(int %n2)
    %s = add int %a, %b
    ret int %s
}
"#,
        "fib",
        &[12],
    );
    assert_eq!(r, Ok(144));
}

#[test]
fn loop_with_phis() {
    let r = run_both(
        r#"
int %sum(int %n) {
entry:
    br label %header
header:
    %i = phi int [ 0, %entry ], [ %i2, %body ]
    %s = phi int [ 0, %entry ], [ %s2, %body ]
    %c = setlt int %i, %n
    br bool %c, label %body, label %exit
body:
    %s2 = add int %s, %i
    %i2 = add int %i, 1
    br label %header
exit:
    ret int %s
}
"#,
        "sum",
        &[100],
    );
    assert_eq!(r, Ok(4950));
}

#[test]
fn swap_phis_are_parallel() {
    // the classic parallel-assignment swap: the edge move list must
    // read all sources before writing any destination
    let r = run_both(
        r#"
int %swap(int %n) {
entry:
    br label %header
header:
    %i = phi int [ 0, %entry ], [ %i2, %body ]
    %a = phi int [ 1, %entry ], [ %b, %body ]
    %b = phi int [ 2, %entry ], [ %a, %body ]
    %c = setlt int %i, %n
    br bool %c, label %body, label %exit
body:
    %i2 = add int %i, 1
    br label %header
exit:
    ret int %a
}
"#,
        "swap",
        &[3],
    );
    assert_eq!(r, Ok(2));
}

#[test]
fn memory_and_gep() {
    let r = run_both(
        r#"
%Pair = type { int, long }

long %main() {
entry:
    %p = alloca %Pair
    %f0 = getelementptr %Pair* %p, long 0, ubyte 0
    %f1 = getelementptr %Pair* %p, long 0, ubyte 1
    store int 7, int* %f0
    store long 35, long* %f1
    %a = load int* %f0
    %b = load long* %f1
    %aw = cast int %a to long
    %s = add long %aw, %b
    ret long %s
}
"#,
        "main",
        &[],
    );
    assert_eq!(r, Ok(42));
}

#[test]
fn precise_divide_trap() {
    let r = run_both(
        r#"
int %main(int %x) {
entry:
    %q = div int 10, %x
    ret int %q
}
"#,
        "main",
        &[0],
    );
    match r {
        Err(InterpError::Trap(t)) => {
            assert_eq!(t.kind, TrapKind::DivideByZero);
            assert_eq!(t.function, "main");
            assert_eq!(t.block, "entry");
            assert_eq!(t.index, 0);
        }
        other => panic!("expected trap, got {other:?}"),
    }
}

#[test]
fn noexc_div_suppressed() {
    let r = run_both(
        r#"
int %main(int %x) {
entry:
    %q = div [noexc] int 10, %x
    ret int %q
}
"#,
        "main",
        &[0],
    );
    assert_eq!(r, Ok(0));
}

#[test]
fn null_load_traps_precisely() {
    let r = run_both(
        r#"
int %main() {
entry:
    %p = cast long 0 to int*
    %v = load int* %p
    ret int %v
}
"#,
        "main",
        &[],
    );
    match r {
        Err(InterpError::Trap(t)) => {
            assert_eq!(t.kind, TrapKind::MemoryFault);
            assert_eq!(t.block, "entry");
            assert_eq!(t.index, 1, "trap on the load, phi-inclusive index");
        }
        other => panic!("expected trap, got {other:?}"),
    }
}

#[test]
fn invoke_and_unwind() {
    let src = r#"
void %risky(int %x) {
entry:
    %c = setgt int %x, 0
    br bool %c, label %boom, label %ok
boom:
    unwind
ok:
    ret void
}

int %main(int %x) {
entry:
    invoke void %risky(int %x) to label %fine unwind label %caught
fine:
    ret int 0
caught:
    ret int 1
}
"#;
    assert_eq!(run_both(src, "main", &[1]), Ok(1));
    assert_eq!(run_both(src, "main", &[0]), Ok(0));
}

#[test]
fn unwind_without_invoke_is_unhandled() {
    let r = run_both(
        r#"
int %main() {
entry:
    unwind
}
"#,
        "main",
        &[],
    );
    match r {
        Err(InterpError::Trap(t)) => {
            assert_eq!(t.kind, TrapKind::UnhandledUnwind);
            assert_eq!(t.function, "main");
        }
        other => panic!("expected trap, got {other:?}"),
    }
}

#[test]
fn intrinsic_io() {
    let m = parse(
        r#"
declare int %llva.io.putchar(int)

int %main() {
entry:
    %a = call int %llva.io.putchar(int 104)
    %b = call int %llva.io.putchar(int 105)
    ret int 0
}
"#,
    );
    let mut slow = Interpreter::new(&m);
    assert_eq!(slow.run("main", &[]), Ok(0));
    let mut fast = FastInterpreter::new(&m);
    assert_eq!(fast.run("main", &[]), Ok(0));
    assert_eq!(fast.env.stdout_string(), "hi");
    assert_eq!(fast.env.stdout_string(), slow.env.stdout_string());
}

#[test]
fn trap_handler_runs_on_fault() {
    let m = parse(
        r#"
declare int %llva.io.putchar(int)
declare int %llva.priv.set(bool)
declare int %llva.trap.register(int, void (int, sbyte*)*)

void %handler(int %no, sbyte* %info) {
entry:
    %c = add int %no, 64
    %x = call int %llva.io.putchar(int %c)
    ret void
}

int %main() {
entry:
    %p = call int %llva.priv.set(bool true)
    %r = call int %llva.trap.register(int 2, void (int, sbyte*)* %handler)
    %q = div int 1, 0
    ret int %q
}
"#,
    );
    let mut fast = FastInterpreter::new(&m);
    fast.env.privileged = true; // boot as kernel so priv.set is legal
    let r = fast.run("main", &[]);
    assert!(matches!(r, Err(InterpError::Trap(t)) if t.kind == TrapKind::DivideByZero));
    // handler printed 'B' (64 + trap number 2), same as the structural
    // interpreter's trap_handler_runs_on_fault unit test
    assert_eq!(fast.env.stdout_string(), "B");
}

#[test]
fn fuel_limit() {
    let r = run_both_fuel(
        r#"
int %main() {
entry:
    br label %entry2
entry2:
    br label %entry
}
"#,
        "main",
        &[],
        1000,
    );
    assert_eq!(r, Err(InterpError::OutOfFuel));
}

// ---------------------------------------------------------------------------
// additional differential coverage: mbr, floats, casts, globals,
// indirect calls
// ---------------------------------------------------------------------------

#[test]
fn mbr_dispatch() {
    let src = r#"
int %classify(int %x) {
entry:
    mbr int %x, label %other, [ int 1, label %one ], [ int 2, label %two ]
one:
    ret int 100
two:
    ret int 200
other:
    ret int 0
}
"#;
    assert_eq!(run_both(src, "classify", &[1]), Ok(100));
    assert_eq!(run_both(src, "classify", &[2]), Ok(200));
    assert_eq!(run_both(src, "classify", &[7]), Ok(0));
}

#[test]
fn float_arithmetic_and_compares() {
    let src = r#"
int %main() {
entry:
    %a = add double 1.5, 2.25
    %b = mul double %a, 2.0
    %c = setgt double %b, 7.0
    br bool %c, label %yes, label %no
yes:
    %t = cast double %b to int
    ret int %t
no:
    ret int -1
}
"#;
    assert_eq!(run_both(src, "main", &[]), Ok(7));
}

#[test]
fn narrowing_casts_canonicalize() {
    let src = r#"
int %main(int %x) {
entry:
    %b = cast int %x to sbyte
    %w = cast sbyte %b to int
    ret int %w
}
"#;
    // 300 -> sbyte wraps to 44; 200 -> sbyte is -56
    assert_eq!(run_both(src, "main", &[300]), Ok(44));
    assert_eq!(run_both(src, "main", &[200]), Ok((-56i64) as u64));
}

#[test]
fn globals_and_indirect_calls() {
    let src = r#"
@counter = global int 5

int %bump(int %by) {
entry:
    %v = load int* @counter
    %n = add int %v, %by
    store int %n, int* @counter
    ret int %n
}

int %main() {
entry:
    %f = cast int (int)* %bump to int (int)*
    %a = call int %f(int 3)
    %b = call int %f(int 4)
    ret int %b
}
"#;
    assert_eq!(run_both(src, "main", &[]), Ok(12));
}

#[test]
fn bad_function_pointer_traps_identically() {
    let src = r#"
int %main(int %x) {
entry:
    %f = cast int %x to int ()*
    %r = call int %f()
    ret int %r
}
"#;
    let r = run_both(src, "main", &[12345]);
    match r {
        Err(InterpError::Trap(t)) => {
            assert_eq!(t.kind, TrapKind::BadFunctionPointer);
            assert_eq!(t.index, 1);
        }
        other => panic!("expected trap, got {other:?}"),
    }
}

#[test]
fn variable_alloca_and_pointer_walk() {
    let src = r#"
long %main(uint %n) {
entry:
    %buf = alloca long, uint %n
    br label %fill
fill:
    %i = phi long [ 0, %entry ], [ %i2, %fill ]
    %slot = getelementptr long* %buf, long %i
    store long %i, long* %slot
    %i2 = add long %i, 1
    %more = setlt long %i2, 10
    br bool %more, label %fill, label %sum
sum:
    %j = phi long [ 0, %fill ], [ %j2, %sum ]
    %acc = phi long [ 0, %fill ], [ %acc2, %sum ]
    %sp = getelementptr long* %buf, long %j
    %v = load long* %sp
    %acc2 = add long %acc, %v
    %j2 = add long %j, 1
    %again = setlt long %j2, 10
    br bool %again, label %sum, label %done
done:
    ret long %acc2
}
"#;
    assert_eq!(run_both(src, "main", &[10]), Ok(45));
}

// ---------------------------------------------------------------------------
// frame-slab consistency: recursion depth, unwinding mid-frame,
// out-of-fuel in a callee
// ---------------------------------------------------------------------------

const DEEP_RECURSION: &str = r#"
long %down(long %n, long %acc) {
entry:
    %z = seteq long %n, 0
    br bool %z, label %base, label %rec
base:
    ret long %acc
rec:
    %n1 = sub long %n, 1
    %a1 = add long %acc, %n
    %r = call long %down(long %n1, long %a1)
    ret long %r
}
"#;

#[test]
fn deep_recursion_reuses_the_slab() {
    let m = parse(DEEP_RECURSION);
    let mut fast = FastInterpreter::new(&m);
    // 2000 frames deep (under the 4096 interpreter limit)
    assert_eq!(fast.run("down", &[2000, 0]), Ok(2000 * 2001 / 2));
    assert!(fast.slab_consistent());
    assert_eq!(fast.call_depth(), 0, "all frames popped");
    // the slab is reused, not regrown, on the second run
    assert_eq!(fast.run("down", &[2000, 0]), Ok(2000 * 2001 / 2));
    assert!(fast.slab_consistent());
}

#[test]
fn recursion_past_the_frame_limit_traps_like_the_structural_interp() {
    let m = parse(DEEP_RECURSION);
    let mut slow = Interpreter::new(&m);
    let expected = slow.run("down", &[100_000, 0]);
    let mut fast = FastInterpreter::new(&m);
    let got = fast.run("down", &[100_000, 0]);
    assert_eq!(got, expected);
    assert!(
        matches!(got, Err(InterpError::Trap(ref t)) if t.kind == TrapKind::StackOverflow),
        "expected stack overflow, got {got:?}"
    );
    assert!(fast.slab_consistent(), "slab consistent after mid-run trap");
    // the interpreter is reusable after the trap
    assert_eq!(fast.run("down", &[10, 0]), Ok(55));
    assert!(fast.slab_consistent());
}

#[test]
fn unwind_through_frames_with_live_allocas() {
    // three frames deep with allocas live in each; unwind pops past
    // all of them to the invoke, restoring sp and poisoning the slab
    let src = r#"
void %inner(int %x) {
entry:
    %buf = alloca long, uint 16
    store long 1, long* %buf
    %c = setgt int %x, 0
    br bool %c, label %boom, label %ok
boom:
    unwind
ok:
    ret void
}

void %middle(int %x) {
entry:
    %buf = alloca long, uint 32
    call void %inner(int %x)
    ret void
}

int %main(int %x) {
entry:
    %before = alloca long
    store long 99, long* %before
    invoke void %middle(int %x) to label %fine unwind label %caught
fine:
    %a = load long* %before
    %r0 = cast long %a to int
    ret int %r0
caught:
    %b = load long* %before
    %r1 = cast long %b to int
    %r2 = add int %r1, 1
    ret int %r2
}
"#;
    assert_eq!(run_both(src, "main", &[1]), Ok(100), "unwound path");
    assert_eq!(run_both(src, "main", &[0]), Ok(99), "normal path");

    // and the slab stays coherent for further calls after an unwind
    let m = parse(src);
    let mut fast = FastInterpreter::new(&m);
    assert_eq!(fast.run("main", &[1]), Ok(100));
    assert!(fast.slab_consistent());
    assert_eq!(fast.call_depth(), 0);
    assert_eq!(fast.run("main", &[0]), Ok(99));
    assert!(fast.slab_consistent());
}

#[test]
fn out_of_fuel_in_a_callee_leaves_the_slab_consistent() {
    let src = r#"
long %spin(long %n) {
entry:
    br label %header
header:
    %i = phi long [ 0, %entry ], [ %i2, %header ]
    %i2 = add long %i, 1
    %c = setlt long %i2, %n
    br bool %c, label %header, label %exit
exit:
    ret long %i2
}

long %main() {
entry:
    %a = call long %spin(long 1000000)
    ret long %a
}
"#;
    let m = parse(src);
    let mut slow = Interpreter::new(&m);
    slow.set_fuel(500);
    let expected = slow.run("main", &[]);
    assert_eq!(expected, Err(InterpError::OutOfFuel));

    let mut fast = FastInterpreter::new(&m);
    fast.set_fuel(500);
    assert_eq!(fast.run("main", &[]), expected);
    assert_eq!(fast.insts_executed(), slow.insts_executed());
    // frames are NOT torn down on fuel exhaustion (callers may want to
    // inspect), but the slab must still tile contiguously
    assert!(fast.slab_consistent());
    assert!(fast.call_depth() > 0, "stopped inside the callee");

    // refueling via a fresh run resets the stack cleanly
    fast.set_fuel(u64::MAX);
    assert_eq!(fast.run("main", &[]), Ok(1_000_000));
    assert!(fast.slab_consistent());
    assert_eq!(fast.call_depth(), 0);
}

#[test]
fn shared_predecode_cache_across_interpreters() {
    let m = parse(DEEP_RECURSION);
    let pre = Rc::new(PreModule::new(&m));
    let mut a = FastInterpreter::with_predecoded(pre.clone());
    let mut b = FastInterpreter::with_predecoded(pre.clone());
    assert_eq!(a.run("down", &[100, 0]), Ok(5050));
    assert_eq!(b.run("down", &[100, 0]), Ok(5050));
    assert_eq!(pre.decoded_functions(), 1, "decoded once, shared");
}
