//! Non-gating perf smoke: interpreted MIPS for all three interpreter
//! tiers over every Table 2 workload, so each PR leaves a visible perf
//! trajectory.
//!
//! For each workload this runs the structural `Interpreter`, the
//! pre-decoded `FastInterpreter` (decode timed separately, run timed
//! over a decode-once cache), and the trace-compiling tier
//! (`enable_tracing`, traces re-formed per run — the compile cost is
//! part of the measured rate), checks they agree on the result and the
//! instruction count, prints a MIPS table, and writes the numbers to
//! `BENCH_interp.json` for CI to archive.
//!
//! Exit code is non-zero only on a *correctness* divergence between the
//! interpreters — throughput numbers never fail the build.
//!
//! A second table reports the x86 register-allocator trajectory: static
//! spill-slot traffic and instruction counts for the naive
//! slot-everything translator (the paper's §5.2 baseline, kept as
//! `compile_x86_naive`) against the use-count linear-scan allocator +
//! shared peephole pass that `compile_x86` now runs.

use llva_backend::{compile_x86, compile_x86_naive, spill_count};
use llva_core::layout::TargetConfig;
use llva_engine::{FastInterpreter, Interpreter, PreModule, TraceConfig};
use std::fmt::Write as _;
use std::rc::Rc;
use std::time::Instant;

/// Repeats `run` until it has consumed at least this much wall time, so
/// short workloads still produce stable rates. `LLVA_BENCH_SECS`
/// overrides it for high-confidence reruns.
fn min_measure_secs() -> f64 {
    std::env::var("LLVA_BENCH_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.05)
}

/// Runs `run()` (which returns the instructions executed by one full
/// workload execution) repeatedly and returns instructions-per-second.
fn measure(mut run: impl FnMut() -> u64) -> f64 {
    // one warm-up execution
    run();
    let min_secs = min_measure_secs();
    let start = Instant::now();
    let mut insts: u64 = 0;
    let mut iters = 0u32;
    while start.elapsed().as_secs_f64() < min_secs || iters == 0 {
        insts += run();
        iters += 1;
        if iters >= 1000 {
            break;
        }
    }
    insts as f64 / start.elapsed().as_secs_f64()
}

/// Measures two runners in alternation — each iteration times one
/// execution of `a` then one of `b` — so slow drift in machine
/// conditions lands on both sides equally and their *ratio* stays
/// stable even when the absolute rates wander.
fn measure_pair(mut a: impl FnMut() -> u64, mut b: impl FnMut() -> u64) -> (f64, f64) {
    a();
    b();
    let (mut ta, mut ia) = (0.0f64, 0u64);
    let (mut tb, mut ib) = (0.0f64, 0u64);
    let min_secs = min_measure_secs();
    let start = Instant::now();
    let mut iters = 0u32;
    while start.elapsed().as_secs_f64() < 2.0 * min_secs || iters == 0 {
        let t = Instant::now();
        ia += a();
        ta += t.elapsed().as_secs_f64();
        let t = Instant::now();
        ib += b();
        tb += t.elapsed().as_secs_f64();
        iters += 1;
        if iters >= 1000 {
            break;
        }
    }
    (ia as f64 / ta, ib as f64 / tb)
}

struct Row {
    name: String,
    insts: u64,
    slow_mips: f64,
    fast_mips: f64,
    traced_mips: f64,
    decode_us: f64,
    cold_load_us: f64,
    warm_load_us: f64,
    warm_speedup: f64,
    speedup: f64,
    traced_speedup: f64,
}

/// Best-of-N wall time of `f` in microseconds — load paths are µs-scale
/// one-shot events, so the minimum over a bounded burst is the stable
/// statistic (throughput-style averaging would fold in allocator noise).
fn measure_us(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    let start = Instant::now();
    let mut iters = 0u32;
    while iters < 3 || (start.elapsed().as_secs_f64() < 0.02 && iters < 200) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e6);
        iters += 1;
    }
    best
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();
    let mut divergences = 0u32;

    // LLVA_BENCH_ONLY=substring restricts the sweep for focused reruns
    let only = std::env::var("LLVA_BENCH_ONLY").ok();
    for w in llva_workloads::all() {
        if let Some(f) = &only {
            if !w.name.contains(f.as_str()) {
                continue;
            }
        }
        let m = w.compile(TargetConfig::default());

        let mut slow = Interpreter::new(&m);
        let slow_value = slow.run("main", &[]).expect("structural interpreter runs");
        let insts = slow.insts_executed();

        let t0 = Instant::now();
        let pre = Rc::new(PreModule::new(&m));
        pre.decode_all();
        let decode_us = t0.elapsed().as_secs_f64() * 1e6;

        let mut fast = FastInterpreter::with_predecoded(pre.clone());
        let fast_value = fast.run("main", &[]).expect("fast interpreter runs");
        if fast_value != slow_value || fast.insts_executed() != insts {
            eprintln!(
                "DIVERGENCE in {}: structural = ({slow_value}, {insts} insts), \
                 pre-decoded = ({fast_value}, {} insts)",
                w.name,
                fast.insts_executed()
            );
            divergences += 1;
            continue;
        }

        // LLVA_TRACE_HOT overrides the formation threshold — useful for
        // isolating the profiling hook's cost (set it unreachably high
        // and no trace ever forms)
        let mut config = TraceConfig::default();
        if let Some(th) = std::env::var("LLVA_TRACE_HOT").ok().and_then(|v| v.parse().ok()) {
            config.hot_threshold = th;
        }
        let mut traced = FastInterpreter::with_predecoded(pre.clone());
        traced.enable_tracing(config);
        let traced_value = traced.run("main", &[]).expect("traced interpreter runs");
        if traced_value != slow_value || traced.insts_executed() != insts {
            eprintln!(
                "DIVERGENCE in {}: structural = ({slow_value}, {insts} insts), \
                 traced = ({traced_value}, {} insts)",
                w.name,
                traced.insts_executed()
            );
            divergences += 1;
            continue;
        }
        if std::env::var_os("LLVA_TRACE_STATS").is_some() {
            let s = traced.trace_stats().expect("tracing enabled");
            eprintln!(
                "{:<16} traces={} superinsts={} entries={} trace_insts={} ({:.1}% of {}) \
                 insts/entry={:.1} side_exits={}",
                w.name,
                s.traces_compiled,
                s.superinsts,
                s.trace_entries,
                s.trace_insts,
                100.0 * s.trace_insts as f64 / insts as f64,
                insts,
                s.trace_insts as f64 / s.trace_entries.max(1) as f64,
                s.side_exits,
            );
        }

        // Persistent-image load trajectory: cold = full SSA→PreFunction
        // lowering; warm = parse the image, checksum the predecode
        // section, and attach its zero-copy record index (records
        // deserialize lazily at first call). Both are one-shot load
        // costs, measured best-of-N.
        let image_bytes = {
            let mut b = llva_engine::ImageBuilder::new(&m);
            b.add_predecode(&pre);
            b.finish()
        };
        let cold_load_us = measure_us(|| {
            let p = PreModule::new(&m);
            p.decode_all();
        });
        let warm_load_us = measure_us(|| {
            let img = std::sync::Arc::new(
                llva_engine::LlvaImage::parse(image_bytes.clone()).expect("image parses"),
            );
            let _ = img.premodule(&m).expect("warm load");
        });
        // warm execution must be byte-identical to the structural run
        {
            let img = std::sync::Arc::new(
                llva_engine::LlvaImage::parse(image_bytes.clone()).expect("image parses"),
            );
            let (warm_pre, installed) = img.premodule(&m).expect("warm load");
            let defined = m.functions().filter(|(_, f)| !f.is_declaration()).count();
            let mut warm = FastInterpreter::with_predecoded(warm_pre);
            let warm_value = warm.run("main", &[]).expect("warm interpreter runs");
            if warm_value != slow_value || warm.insts_executed() != insts || installed != defined {
                eprintln!(
                    "DIVERGENCE in {}: structural = ({slow_value}, {insts} insts), \
                     image-warm = ({warm_value}, {} insts, {installed}/{defined} installed)",
                    w.name,
                    warm.insts_executed()
                );
                divergences += 1;
                continue;
            }
        }

        let slow_rate = measure(|| {
            let mut i = Interpreter::new(&m);
            i.run("main", &[]).expect("runs");
            i.insts_executed()
        });
        // like the pre-decode cache, the software trace cache persists
        // across runs: the correctness run above warmed it, so carry the
        // engine between runs and measure warm trace execution. The two
        // fast tiers are measured in alternation so their ratio is
        // robust against machine-condition drift.
        let mut engine = traced.take_trace_engine();
        let (fast_rate, traced_rate) = measure_pair(
            || {
                let mut i = FastInterpreter::with_predecoded(pre.clone());
                i.run("main", &[]).expect("runs");
                i.insts_executed()
            },
            || {
                let mut i = FastInterpreter::with_predecoded(pre.clone());
                i.set_trace_engine(engine.take().expect("engine carried between runs"));
                i.run("main", &[]).expect("runs");
                engine = i.take_trace_engine();
                i.insts_executed()
            },
        );

        rows.push(Row {
            name: w.name.to_string(),
            insts,
            slow_mips: slow_rate / 1e6,
            fast_mips: fast_rate / 1e6,
            traced_mips: traced_rate / 1e6,
            decode_us,
            cold_load_us,
            warm_load_us,
            warm_speedup: cold_load_us / warm_load_us,
            speedup: fast_rate / slow_rate,
            traced_speedup: traced_rate / slow_rate,
        });
    }

    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>12} {:>11} {:>9} {:>9} {:>9} {:>9}",
        "workload", "insts", "interp MIPS", "fast MIPS", "traced MIPS", "decode(us)",
        "cold(us)", "warm(us)", "fast", "traced"
    );
    for r in &rows {
        println!(
            "{:<16} {:>12} {:>12.2} {:>12.2} {:>12.2} {:>11.1} {:>9.1} {:>9.1} {:>8.2}x {:>8.2}x",
            r.name,
            r.insts,
            r.slow_mips,
            r.fast_mips,
            r.traced_mips,
            r.decode_us,
            r.cold_load_us,
            r.warm_load_us,
            r.speedup,
            r.traced_speedup
        );
    }
    // x86 allocator trajectory: naive (slot-everything, no peephole)
    // vs linear-scan + peephole, static counts over the same workloads
    println!();
    println!(
        "{:<16} {:>12} {:>12} {:>8} {:>12} {:>12} {:>8}",
        "x86 codegen", "naive spill", "ls spill", "Δspill", "naive insts", "ls insts", "Δinsts"
    );
    let mut alloc_rows: Vec<(String, usize, usize, usize, usize)> = Vec::new();
    for w in llva_workloads::all() {
        if let Some(f) = &only {
            if !w.name.contains(f.as_str()) {
                continue;
            }
        }
        let m = w.compile(TargetConfig::ia32());
        let (mut naive_spills, mut ls_spills) = (0usize, 0usize);
        let (mut naive_insts, mut ls_insts) = (0usize, 0usize);
        for fid in m.function_ids() {
            let naive = compile_x86_naive(&m, fid);
            naive_spills += spill_count(&naive);
            naive_insts += naive.len();
            let ls = compile_x86(&m, fid);
            ls_spills += spill_count(&ls);
            ls_insts += ls.len();
        }
        println!(
            "{:<16} {:>12} {:>12} {:>7.1}% {:>12} {:>12} {:>7.1}%",
            w.name,
            naive_spills,
            ls_spills,
            100.0 * (naive_spills as f64 - ls_spills as f64) / naive_spills.max(1) as f64,
            naive_insts,
            ls_insts,
            100.0 * (naive_insts as f64 - ls_insts as f64) / naive_insts.max(1) as f64,
        );
        alloc_rows.push((w.name.to_string(), naive_spills, ls_spills, naive_insts, ls_insts));
    }
    let spill_drop = {
        let (n, l): (usize, usize) = alloc_rows.iter().fold((0, 0), |(n, l), r| (n + r.1, l + r.2));
        100.0 * (n as f64 - l as f64) / n.max(1) as f64
    };
    let inst_drop = {
        let (n, l): (usize, usize) = alloc_rows.iter().fold((0, 0), |(n, l), r| (n + r.3, l + r.4));
        100.0 * (n as f64 - l as f64) / n.max(1) as f64
    };
    println!(
        "x86 linear-scan + peephole vs naive over {} workloads: \
         spill traffic -{spill_drop:.1}%, instruction count -{inst_drop:.1}%",
        alloc_rows.len()
    );

    let geomean = (rows.iter().map(|r| r.speedup.ln()).sum::<f64>() / rows.len() as f64).exp();
    let traced_geomean =
        (rows.iter().map(|r| r.traced_speedup.ln()).sum::<f64>() / rows.len() as f64).exp();
    let warm_load_geomean =
        (rows.iter().map(|r| r.warm_speedup.ln()).sum::<f64>() / rows.len() as f64).exp();
    println!(
        "warm image load vs cold pre-decode over {} workloads: geomean {warm_load_geomean:.2}x faster",
        rows.len()
    );
    let trace_over_fast = (rows
        .iter()
        .map(|r| (r.traced_mips / r.fast_mips).ln())
        .sum::<f64>()
        / rows.len() as f64)
        .exp();
    println!(
        "geomean speedup over {} workloads: fast {geomean:.2}x, traced {traced_geomean:.2}x \
         (traced/fast {trace_over_fast:.2}x)",
        rows.len()
    );

    // hand-built JSON (no serde in the container)
    let mut json = String::from("{\n  \"benchmark\": \"interp\",\n  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"insts\": {}, \"structural_mips\": {:.3}, \
             \"predecoded_mips\": {:.3}, \"traced_mips\": {:.3}, \"decode_us\": {:.1}, \
             \"cold_load_us\": {:.1}, \"warm_load_us\": {:.1}, \"warm_speedup\": {:.3}, \
             \"speedup\": {:.3}, \"traced_speedup\": {:.3}}}{}",
            r.name,
            r.insts,
            r.slow_mips,
            r.fast_mips,
            r.traced_mips,
            r.decode_us,
            r.cold_load_us,
            r.warm_load_us,
            r.warm_speedup,
            r.speedup,
            r.traced_speedup,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"x86_alloc\": [\n");
    for (i, (name, ns, ls, ni, li)) in alloc_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{name}\", \"naive_spills\": {ns}, \"ls_spills\": {ls}, \
             \"naive_insts\": {ni}, \"ls_insts\": {li}}}{}",
            if i + 1 < alloc_rows.len() { "," } else { "" }
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"x86_spill_drop_pct\": {spill_drop:.1},\n  \"x86_inst_drop_pct\": {inst_drop:.1},\n  \"geomean_speedup\": {geomean:.3},\n  \"traced_geomean_speedup\": {traced_geomean:.3},\n  \"warm_load_geomean\": {warm_load_geomean:.3},\n  \"traced_over_predecoded\": {trace_over_fast:.3},\n  \"divergences\": {divergences}\n}}\n"
    );
    if only.is_none() {
        std::fs::write("BENCH_interp.json", &json).expect("write BENCH_interp.json");
        println!("wrote BENCH_interp.json");
    } else {
        println!("filtered run: BENCH_interp.json not written");
    }

    if divergences > 0 {
        eprintln!("{divergences} workload(s) diverged between interpreters");
        std::process::exit(1);
    }
}
