//! # llva-engine — LLEE, the LLVA execution environment (paper §4)
//!
//! The "on-chip runtime execution engine that manages the translation
//! process": JIT-on-demand translation, the OS-independent storage API
//! for offline caching of native code (§4.1), the reference LLVA
//! [`interp`]reter, profiling + the software trace cache (§4.2), the
//! intrinsic/trap [`env`]ironment (§3.5), constrained
//! self-modifying-code support (§3.4), and the tiered execution
//! [`supervisor`] (graceful degradation across translated code, the
//! pre-decoded interpreter, and the structural interpreter).

pub mod codec;
pub mod env;
pub mod image;
pub mod interp;
pub mod llee;
pub mod predecode;
pub mod profile;
pub mod storage;
pub mod supervisor;
pub mod trace;
pub mod traced;

pub use env::Env;
pub use image::{
    read_image_file, repair_image, repair_image_file, write_image_file, ImageBuilder, ImageError,
    LlvaImage, RepairReport, SectionKind, IMAGE_ENTRY, IMAGE_TMP_MARKER,
};
#[cfg(unix)]
pub use image::{map_image_file, MappedFile};
pub use interp::{Interpreter, InterpError, LlvaTrap, Name, DEFAULT_MEMORY_SIZE};
pub use predecode::{FastInterpreter, PreModule};
pub use llee::{EngineError, ExecutionManager, RunOutcome, TargetIsa, TranslationStats};
pub use storage::{
    shard_hash, DirStorage, FaultLog, FaultPlan, FaultyStorage, MemStorage, ShardedStorage,
    SharedStorage, Storage, SyncStorage,
};
pub use traced::{TraceConfig, TraceEngine, TraceStats};
pub use supervisor::{
    kills_from_env, Incident, IncidentCause, IncidentLog, KillMode, RecoveryAction, SupervisedRun,
    Supervisor, SupervisorError, Tier, TierCounters, TierKill, TierOutcome,
};
