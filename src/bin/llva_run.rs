//! `llva-run` — LLEE from the command line: execute virtual object code
//! (or assembly) on the reference interpreter or a simulated processor,
//! with optional offline caching through the storage API.
//!
//! Usage:
//!   llva-run program.bc [args...]
//!       [--isa x86|sparc|riscv|interp] [--entry NAME]
//!       [--cache DIR]            # enable the offline storage API (§4.1)
//!       [--stats]

use llva::engine::llee::{ExecutionManager, TargetIsa};
use std::process::exit;

fn load(path: &str) -> llva::core::module::Module {
    let bytes = std::fs::read(path).unwrap_or_else(|e| {
        eprintln!("llva-run: cannot read {path}: {e}");
        exit(1);
    });
    if bytes.starts_with(llva::core::bytecode::MAGIC) {
        llva::core::bytecode::decode_module(&bytes).unwrap_or_else(|e| {
            eprintln!("llva-run: {path}: {e}");
            exit(1);
        })
    } else {
        let src = String::from_utf8_lossy(&bytes);
        llva::core::parser::parse_module(&src).unwrap_or_else(|e| {
            eprintln!("llva-run: {path}: {e}");
            exit(1);
        })
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut isa = "x86".to_string();
    let mut entry = "main".to_string();
    let mut cache: Option<String> = None;
    let mut stats = false;
    let mut prog_args: Vec<u64> = Vec::new();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--isa" => isa = it.next().cloned().unwrap_or_default(),
            "--entry" => entry = it.next().cloned().unwrap_or_default(),
            "--cache" => cache = it.next().cloned(),
            "--stats" => stats = true,
            "-h" | "--help" => {
                eprintln!(
                    "usage: llva-run program.bc [args...] [--isa x86|sparc|riscv|interp] \
                     [--entry NAME] [--cache DIR] [--stats]"
                );
                exit(0);
            }
            other if path.is_none() => path = Some(other.to_string()),
            other => prog_args.push(other.parse().unwrap_or_else(|_| {
                eprintln!("llva-run: program arguments must be integers, got '{other}'");
                exit(1);
            })),
        }
    }
    let Some(path) = path else {
        eprintln!("usage: llva-run program.bc [args...]");
        exit(1);
    };
    let module = load(&path);

    if isa == "interp" {
        let mut interp = llva::engine::Interpreter::new(&module);
        match interp.run(&entry, &prog_args) {
            Ok(v) => {
                print!("{}", interp.env.stdout_string());
                if stats {
                    eprintln!(
                        "llva-run: result={} ({} LLVA instructions executed)",
                        v,
                        interp.insts_executed()
                    );
                }
                exit((v & 0xff) as i32);
            }
            Err(e) => {
                print!("{}", interp.env.stdout_string());
                eprintln!("llva-run: {e}");
                exit(101);
            }
        }
    }

    let target = match isa.as_str() {
        "x86" => TargetIsa::X86,
        "sparc" => TargetIsa::Sparc,
        "riscv" => TargetIsa::Riscv,
        other => {
            eprintln!("llva-run: unknown --isa '{other}' (x86|sparc|riscv|interp)");
            exit(1);
        }
    };
    let mut mgr = ExecutionManager::new(module, target);
    if let Some(dir) = cache {
        let name = std::path::Path::new(&path)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "program".into());
        mgr.set_storage(
            Box::new(llva::engine::storage::DirStorage::new(dir)),
            &name,
        );
    }
    match mgr.run(&entry, &prog_args) {
        Ok(out) => {
            print!("{}", mgr.env.stdout_string());
            if stats {
                let t = mgr.stats();
                eprintln!(
                    "llva-run: result={} | translated {} fns in {:?}, cache hits {} | \
                     {} native insts executed, {} simulated cycles",
                    out.value,
                    t.functions_translated,
                    t.translate_time,
                    t.cache_hits,
                    out.stats.instructions,
                    out.stats.cycles
                );
            }
            exit((out.value & 0xff) as i32);
        }
        Err(e) => {
            print!("{}", mgr.env.stdout_string());
            eprintln!("llva-run: {e}");
            exit(101);
        }
    }
}
