//! Software trace cache bench (paper §4.2): cost of profile
//! instrumentation, trace formation (including cross-procedure traces),
//! and trace-driven reoptimization.

use criterion::{criterion_group, criterion_main, Criterion};
use llva_core::layout::TargetConfig;
use llva_engine::llee::{ExecutionManager, TargetIsa};
use llva_engine::{profile, trace};

fn profiled(name: &str) -> (llva_core::module::Module, profile::ProfileMap, Vec<u64>) {
    let w = llva_workloads::by_name(name).expect("workload");
    let mut m = w.compile(TargetConfig::default());
    let map = profile::instrument(&mut m);
    let clean = w.compile(TargetConfig::default());
    let mut mgr = ExecutionManager::new(m, TargetIsa::X86);
    mgr.run("main", &[]).expect("runs");
    let counts = profile::read_counters(&mgr, &map);
    (clean, map, counts)
}

fn bench_instrumentation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    group.bench_function("instrument", |b| {
        let w = llva_workloads::by_name("181.mcf").expect("workload");
        b.iter_batched(
            || w.compile(TargetConfig::default()),
            |mut m| profile::instrument(&mut m),
            criterion::BatchSize::SmallInput,
        );
    });
    let (m, map, counts) = profiled("181.mcf");
    group.bench_function("form_traces", |b| {
        b.iter(|| trace::form_traces(&m, &map, &counts, 100, 16));
    });
    let cache = trace::form_traces(&m, &map, &counts, 100, 16);
    println!(
        "traces: {} formed, {} cross-procedure, hottest heat {}",
        cache.len(),
        cache.traces().iter().filter(|t| t.cross_procedure).count(),
        cache.traces().first().map(|t| t.heat).unwrap_or(0)
    );
    group.bench_function("reoptimize", |b| {
        b.iter_batched(
            || (m.clone(), trace::form_traces(&m, &map, &counts, 100, 16)),
            |(mut m, cache)| {
                trace::reoptimize(&mut m, &cache);
                m
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_profiling_overhead(c: &mut Criterion) {
    // dynamic overhead of the counter instrumentation (simulated cycles)
    let w = llva_workloads::by_name("ptrdist-ft").expect("workload");
    let cycles_of = |instrumented: bool| {
        let mut m = w.compile(TargetConfig::default());
        if instrumented {
            let _ = profile::instrument(&mut m);
        }
        let mut mgr = ExecutionManager::new(m, TargetIsa::X86);
        mgr.run("main", &[]).expect("runs");
        mgr.exec_stats().cycles
    };
    let base = cycles_of(false);
    let inst = cycles_of(true);
    println!(
        "profiling overhead: {base} -> {inst} simulated cycles ({:.1}%)",
        100.0 * (inst as f64 - base as f64) / base as f64
    );
    let mut group = c.benchmark_group("profiling_overhead");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    group.bench_function("uninstrumented_run", |b| b.iter(|| cycles_of(false)));
    group.bench_function("instrumented_run", |b| b.iter(|| cycles_of(true)));
    group.finish();
}

criterion_group!(benches, bench_instrumentation, bench_profiling_overhead);
criterion_main!(benches);
