//! The LLVA type system (paper §3.1, "LLVA Type System").
//!
//! The type system is deliberately small: primitive scalar types with
//! predefined sizes (`bool`, `ubyte`, …, `double`) and exactly four derived
//! types — pointer, array, structure, and function. All types are interned
//! in a [`TypeTable`] and referred to by copyable [`TypeId`] handles.
//!
//! Structure types come in two flavors:
//!
//! * *literal* structs (`{ int, float }`) which are interned structurally,
//! * *identified* structs (`%struct.QuadTree = type { double, [4 x %QT*] }`)
//!   which are registered by name and may be recursive: the body can be set
//!   after the identifier is created, allowing `%QT*` fields inside `%QT`.
//!
//! # Examples
//!
//! ```
//! use llva_core::types::{TypeTable, TypeKind};
//!
//! let mut tt = TypeTable::new();
//! let int = tt.int();
//! let ptr = tt.pointer_to(int);
//! assert_eq!(tt.pointer_to(int), ptr); // interned
//! assert!(matches!(tt.kind(ptr), TypeKind::Pointer(p) if *p == int));
//! ```

use std::collections::HashMap;
use std::fmt;

/// A handle to an interned type inside a [`TypeTable`].
///
/// `TypeId`s are only meaningful with respect to the table that created
/// them; mixing handles between tables is a logic error (caught by
/// debug assertions in most table methods).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(u32);

impl TypeId {
    /// Returns the raw index of this type in its table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a `TypeId` from a raw index (used by the bytecode reader).
    pub fn from_index(index: usize) -> TypeId {
        TypeId(u32::try_from(index).expect("type index overflow"))
    }
}

impl fmt::Display for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ty{}", self.0)
    }
}

/// A handle to an identified (named, possibly recursive) struct definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StructId(u32);

impl StructId {
    /// Returns the raw index of this struct definition.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a `StructId` from a raw index.
    pub fn from_index(index: usize) -> StructId {
        StructId(u32::try_from(index).expect("struct index overflow"))
    }
}

/// The shape of an LLVA type.
///
/// Primitives carry no payload; the four derived types reference other
/// interned types. See the paper, Table in §3.1.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TypeKind {
    /// The absence of a value (function return only).
    Void,
    /// A 1-bit boolean, result of the `set*` comparison family.
    Bool,
    /// Unsigned 8-bit integer.
    UByte,
    /// Signed 8-bit integer.
    SByte,
    /// Unsigned 16-bit integer.
    UShort,
    /// Signed 16-bit integer.
    Short,
    /// Unsigned 32-bit integer.
    UInt,
    /// Signed 32-bit integer.
    Int,
    /// Unsigned 64-bit integer.
    ULong,
    /// Signed 64-bit integer.
    Long,
    /// IEEE-754 single precision.
    Float,
    /// IEEE-754 double precision.
    Double,
    /// A basic-block label (only valid as a control-flow operand).
    Label,
    /// A typed pointer to another type.
    Pointer(TypeId),
    /// A fixed-length homogeneous array.
    Array {
        /// Element type.
        elem: TypeId,
        /// Number of elements.
        len: u64,
    },
    /// A literal (anonymous, structural) struct.
    LiteralStruct(Vec<TypeId>),
    /// An identified struct; its body lives in the [`TypeTable`].
    Struct(StructId),
    /// A function signature.
    Function {
        /// Return type.
        ret: TypeId,
        /// Parameter types.
        params: Vec<TypeId>,
        /// Whether the function takes additional variadic arguments.
        varargs: bool,
    },
}

/// An identified struct definition: a name and an optional body.
///
/// A body of `None` means the struct is *opaque* — declared but not yet
/// defined, which is how recursive types are constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    name: String,
    body: Option<Vec<TypeId>>,
}

impl StructDef {
    /// The name of the struct (without the leading `%`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The field types, or `None` while the struct is opaque.
    pub fn body(&self) -> Option<&[TypeId]> {
        self.body.as_deref()
    }
}

/// An interning table for LLVA types.
///
/// Every [`Module`](crate::module::Module) owns one. Interning means
/// structural equality of types reduces to `TypeId` equality.
#[derive(Debug, Clone, Default)]
pub struct TypeTable {
    kinds: Vec<TypeKind>,
    interned: HashMap<TypeKind, TypeId>,
    structs: Vec<StructDef>,
    struct_names: HashMap<String, StructId>,
}

impl TypeTable {
    /// Creates an empty table. Primitive types are interned on first use.
    pub fn new() -> TypeTable {
        TypeTable::default()
    }

    /// Interns `kind` and returns its handle.
    pub fn intern(&mut self, kind: TypeKind) -> TypeId {
        if let Some(&id) = self.interned.get(&kind) {
            return id;
        }
        let id = TypeId(u32::try_from(self.kinds.len()).expect("too many types"));
        self.kinds.push(kind.clone());
        self.interned.insert(kind, id);
        id
    }

    /// Returns the kind of a previously interned type.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this table.
    pub fn kind(&self, id: TypeId) -> &TypeKind {
        &self.kinds[id.index()]
    }

    /// Number of distinct types interned so far.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the table has no types yet.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Iterates over `(id, kind)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (TypeId, &TypeKind)> {
        self.kinds
            .iter()
            .enumerate()
            .map(|(i, k)| (TypeId(i as u32), k))
    }

    // ---- primitive shorthands -------------------------------------------

    /// The `void` type.
    pub fn void(&mut self) -> TypeId {
        self.intern(TypeKind::Void)
    }
    /// The `bool` type.
    pub fn bool(&mut self) -> TypeId {
        self.intern(TypeKind::Bool)
    }
    /// The `ubyte` type.
    pub fn ubyte(&mut self) -> TypeId {
        self.intern(TypeKind::UByte)
    }
    /// The `sbyte` type.
    pub fn sbyte(&mut self) -> TypeId {
        self.intern(TypeKind::SByte)
    }
    /// The `ushort` type.
    pub fn ushort(&mut self) -> TypeId {
        self.intern(TypeKind::UShort)
    }
    /// The `short` type.
    pub fn short(&mut self) -> TypeId {
        self.intern(TypeKind::Short)
    }
    /// The `uint` type.
    pub fn uint(&mut self) -> TypeId {
        self.intern(TypeKind::UInt)
    }
    /// The `int` type.
    pub fn int(&mut self) -> TypeId {
        self.intern(TypeKind::Int)
    }
    /// The `ulong` type.
    pub fn ulong(&mut self) -> TypeId {
        self.intern(TypeKind::ULong)
    }
    /// The `long` type.
    pub fn long(&mut self) -> TypeId {
        self.intern(TypeKind::Long)
    }
    /// The `float` type.
    pub fn float(&mut self) -> TypeId {
        self.intern(TypeKind::Float)
    }
    /// The `double` type.
    pub fn double(&mut self) -> TypeId {
        self.intern(TypeKind::Double)
    }
    /// The `label` type.
    pub fn label(&mut self) -> TypeId {
        self.intern(TypeKind::Label)
    }

    // ---- derived type constructors --------------------------------------

    /// Interns a pointer to `pointee`.
    pub fn pointer_to(&mut self, pointee: TypeId) -> TypeId {
        self.intern(TypeKind::Pointer(pointee))
    }

    /// Interns `[len x elem]`.
    pub fn array_of(&mut self, elem: TypeId, len: u64) -> TypeId {
        self.intern(TypeKind::Array { elem, len })
    }

    /// Interns a literal struct `{ fields... }`.
    pub fn literal_struct(&mut self, fields: Vec<TypeId>) -> TypeId {
        self.intern(TypeKind::LiteralStruct(fields))
    }

    /// Interns a function type `ret (params...)`.
    pub fn function(&mut self, ret: TypeId, params: Vec<TypeId>, varargs: bool) -> TypeId {
        self.intern(TypeKind::Function {
            ret,
            params,
            varargs,
        })
    }

    // ---- identified structs ---------------------------------------------

    /// Declares (or retrieves) an identified struct named `name`, initially
    /// opaque, and returns its type handle. Call
    /// [`set_struct_body`](TypeTable::set_struct_body) to define it.
    pub fn named_struct(&mut self, name: &str) -> TypeId {
        if let Some(&sid) = self.struct_names.get(name) {
            return self.intern(TypeKind::Struct(sid));
        }
        let sid = StructId(u32::try_from(self.structs.len()).expect("too many structs"));
        self.structs.push(StructDef {
            name: name.to_string(),
            body: None,
        });
        self.struct_names.insert(name.to_string(), sid);
        self.intern(TypeKind::Struct(sid))
    }

    /// Defines the body of the identified struct named `name`.
    ///
    /// Overwrites any previous body; returns the struct's type handle.
    pub fn set_struct_body(&mut self, name: &str, fields: Vec<TypeId>) -> TypeId {
        let ty = self.named_struct(name);
        let TypeKind::Struct(sid) = *self.kind(ty) else {
            unreachable!("named_struct returns Struct kinds")
        };
        self.structs[sid.index()].body = Some(fields);
        ty
    }

    /// Looks up an identified struct by name.
    pub fn struct_by_name(&self, name: &str) -> Option<StructId> {
        self.struct_names.get(name).copied()
    }

    /// The definition of an identified struct.
    pub fn struct_def(&self, id: StructId) -> &StructDef {
        &self.structs[id.index()]
    }

    /// Iterates over all identified struct definitions.
    pub fn struct_defs(&self) -> impl Iterator<Item = (StructId, &StructDef)> {
        self.structs
            .iter()
            .enumerate()
            .map(|(i, d)| (StructId(i as u32), d))
    }

    /// The field list of any struct-like type (literal or identified).
    ///
    /// Returns `None` for non-struct types and opaque structs.
    pub fn struct_fields(&self, ty: TypeId) -> Option<&[TypeId]> {
        match self.kind(ty) {
            TypeKind::LiteralStruct(fields) => Some(fields),
            TypeKind::Struct(sid) => self.struct_def(*sid).body(),
            _ => None,
        }
    }

    // ---- classification helpers ------------------------------------------

    /// Whether `ty` is one of the eight integer types.
    pub fn is_integer(&self, ty: TypeId) -> bool {
        matches!(
            self.kind(ty),
            TypeKind::UByte
                | TypeKind::SByte
                | TypeKind::UShort
                | TypeKind::Short
                | TypeKind::UInt
                | TypeKind::Int
                | TypeKind::ULong
                | TypeKind::Long
        )
    }

    /// Whether `ty` is a signed integer type.
    pub fn is_signed_integer(&self, ty: TypeId) -> bool {
        matches!(
            self.kind(ty),
            TypeKind::SByte | TypeKind::Short | TypeKind::Int | TypeKind::Long
        )
    }

    /// Whether `ty` is `float` or `double`.
    pub fn is_float(&self, ty: TypeId) -> bool {
        matches!(self.kind(ty), TypeKind::Float | TypeKind::Double)
    }

    /// Whether `ty` is a pointer.
    pub fn is_pointer(&self, ty: TypeId) -> bool {
        matches!(self.kind(ty), TypeKind::Pointer(_))
    }

    /// Whether `ty` may live in a virtual register: bool, integer,
    /// floating point, or pointer (paper §3.1: "Registers can only hold
    /// scalar values").
    pub fn is_scalar(&self, ty: TypeId) -> bool {
        matches!(self.kind(ty), TypeKind::Bool | TypeKind::Pointer(_))
            || self.is_integer(ty)
            || self.is_float(ty)
    }

    /// Whether `ty` is an aggregate (array or struct).
    pub fn is_aggregate(&self, ty: TypeId) -> bool {
        matches!(
            self.kind(ty),
            TypeKind::Array { .. } | TypeKind::LiteralStruct(_) | TypeKind::Struct(_)
        )
    }

    /// Whether values of `ty` can be stored in memory (anything sized).
    pub fn is_first_class(&self, ty: TypeId) -> bool {
        self.is_scalar(ty)
    }

    /// The pointee of a pointer type.
    pub fn pointee(&self, ty: TypeId) -> Option<TypeId> {
        match self.kind(ty) {
            TypeKind::Pointer(p) => Some(*p),
            _ => None,
        }
    }

    /// The bit width of a scalar integer/bool type, if any.
    pub fn int_bits(&self, ty: TypeId) -> Option<u32> {
        Some(match self.kind(ty) {
            TypeKind::Bool => 1,
            TypeKind::UByte | TypeKind::SByte => 8,
            TypeKind::UShort | TypeKind::Short => 16,
            TypeKind::UInt | TypeKind::Int => 32,
            TypeKind::ULong | TypeKind::Long => 64,
            _ => return None,
        })
    }

    /// A short human-readable rendering of `ty` (`int`, `%QT*`,
    /// `[4 x double]`, `{ int, float }`, `void (int)`).
    pub fn display(&self, ty: TypeId) -> String {
        match self.kind(ty) {
            TypeKind::Void => "void".into(),
            TypeKind::Bool => "bool".into(),
            TypeKind::UByte => "ubyte".into(),
            TypeKind::SByte => "sbyte".into(),
            TypeKind::UShort => "ushort".into(),
            TypeKind::Short => "short".into(),
            TypeKind::UInt => "uint".into(),
            TypeKind::Int => "int".into(),
            TypeKind::ULong => "ulong".into(),
            TypeKind::Long => "long".into(),
            TypeKind::Float => "float".into(),
            TypeKind::Double => "double".into(),
            TypeKind::Label => "label".into(),
            TypeKind::Pointer(p) => format!("{}*", self.display(*p)),
            TypeKind::Array { elem, len } => format!("[{} x {}]", len, self.display(*elem)),
            TypeKind::LiteralStruct(fields) => {
                let inner: Vec<String> = fields.iter().map(|f| self.display(*f)).collect();
                format!("{{ {} }}", inner.join(", "))
            }
            TypeKind::Struct(sid) => format!("%{}", self.struct_def(*sid).name()),
            TypeKind::Function {
                ret,
                params,
                varargs,
            } => {
                let mut inner: Vec<String> = params.iter().map(|p| self.display(*p)).collect();
                if *varargs {
                    inner.push("...".into());
                }
                format!("{} ({})", self.display(*ret), inner.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_are_interned_once() {
        let mut tt = TypeTable::new();
        assert_eq!(tt.int(), tt.int());
        assert_ne!(tt.int(), tt.uint());
        assert_ne!(tt.float(), tt.double());
    }

    #[test]
    fn derived_types_intern_structurally() {
        let mut tt = TypeTable::new();
        let int = tt.int();
        let p1 = tt.pointer_to(int);
        let p2 = tt.pointer_to(int);
        assert_eq!(p1, p2);
        let a1 = tt.array_of(int, 4);
        let a2 = tt.array_of(int, 4);
        let a3 = tt.array_of(int, 5);
        assert_eq!(a1, a2);
        assert_ne!(a1, a3);
        let f = tt.float();
        let s1 = tt.literal_struct(vec![int, f]);
        let s2 = tt.literal_struct(vec![int, f]);
        assert_eq!(s1, s2);
    }

    #[test]
    fn recursive_named_struct() {
        // %QT = { double, [4 x %QT*] }  (Figure 2 of the paper)
        let mut tt = TypeTable::new();
        let qt = tt.named_struct("struct.QuadTree");
        let qt_ptr = tt.pointer_to(qt);
        let children = tt.array_of(qt_ptr, 4);
        let dbl = tt.double();
        let qt2 = tt.set_struct_body("struct.QuadTree", vec![dbl, children]);
        assert_eq!(qt, qt2);
        let fields = tt.struct_fields(qt).expect("defined body");
        assert_eq!(fields, &[dbl, children]);
        assert_eq!(tt.display(qt), "%struct.QuadTree");
        assert_eq!(tt.display(children), "[4 x %struct.QuadTree*]");
    }

    #[test]
    fn opaque_struct_has_no_fields() {
        let mut tt = TypeTable::new();
        let op = tt.named_struct("opaque");
        assert!(tt.struct_fields(op).is_none());
    }

    #[test]
    fn classification() {
        let mut tt = TypeTable::new();
        let int = tt.int();
        let ulong = tt.ulong();
        let dbl = tt.double();
        let b = tt.bool();
        let v = tt.void();
        let p = tt.pointer_to(int);
        let arr = tt.array_of(int, 3);
        assert!(tt.is_integer(int));
        assert!(tt.is_signed_integer(int));
        assert!(!tt.is_signed_integer(ulong));
        assert!(tt.is_float(dbl));
        assert!(tt.is_scalar(b));
        assert!(tt.is_scalar(p));
        assert!(!tt.is_scalar(v));
        assert!(!tt.is_scalar(arr));
        assert!(tt.is_aggregate(arr));
        assert_eq!(tt.int_bits(b), Some(1));
        assert_eq!(tt.int_bits(ulong), Some(64));
        assert_eq!(tt.int_bits(dbl), None);
        assert_eq!(tt.pointee(p), Some(int));
        assert_eq!(tt.pointee(int), None);
    }

    #[test]
    fn display_function_type() {
        let mut tt = TypeTable::new();
        let int = tt.int();
        let v = tt.void();
        let f = tt.function(v, vec![int, int], false);
        assert_eq!(tt.display(f), "void (int, int)");
        let g = tt.function(int, vec![int], true);
        assert_eq!(tt.display(g), "int (int, ...)");
    }
}
