//! Modules: the unit of virtual object code.
//!
//! A module owns the type table, global variables, and functions. It also
//! records the I-ISA configuration flags (pointer size + endianness) that
//! the paper says are encoded in every object file (§3.2).

use crate::function::{Function, Linkage};
use crate::layout::TargetConfig;
use crate::types::{TypeId, TypeTable};
use crate::value::Constant;
use std::collections::HashMap;
use std::fmt;

/// A handle to a function within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(u32);

impl FuncId {
    /// Raw index into the module's function list.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a handle from a raw index.
    pub fn from_index(index: usize) -> FuncId {
        FuncId(u32::try_from(index).expect("function index overflow"))
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

/// A handle to a global variable within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(u32);

impl GlobalId {
    /// Raw index into the module's global list.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a handle from a raw index.
    pub fn from_index(index: usize) -> GlobalId {
        GlobalId(u32::try_from(index).expect("global index overflow"))
    }
}

impl fmt::Display for GlobalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// A static initializer for a global variable.
#[derive(Debug, Clone, PartialEq)]
pub enum Initializer {
    /// All-zero bytes of the value type's size.
    Zero,
    /// A scalar constant.
    Scalar(Constant),
    /// Element-wise array initializer.
    Array(Vec<Initializer>),
    /// Field-wise struct initializer.
    Struct(Vec<Initializer>),
    /// Raw bytes (used for string literals).
    Bytes(Vec<u8>),
}

/// A global variable: a name, a value type, and an initializer. All
/// global memory is explicitly allocated (paper §3.1: "Memory is
/// partitioned into stack, heap, and global memory").
#[derive(Debug, Clone)]
pub struct GlobalVar {
    name: String,
    value_ty: TypeId,
    init: Initializer,
    is_const: bool,
    linkage: Linkage,
}

impl GlobalVar {
    /// The symbol name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The type of the *value* (the global's own type is a pointer to it).
    pub fn value_type(&self) -> TypeId {
        self.value_ty
    }

    /// The static initializer.
    pub fn init(&self) -> &Initializer {
        &self.init
    }

    /// Whether stores through this global are forbidden.
    pub fn is_const(&self) -> bool {
        self.is_const
    }

    /// Linkage of the symbol.
    pub fn linkage(&self) -> Linkage {
        self.linkage
    }

    /// Sets linkage (used by the `internalize` pass).
    pub fn set_linkage(&mut self, linkage: Linkage) {
        self.linkage = linkage;
    }
}

/// A module of LLVA virtual object code.
#[derive(Debug, Clone)]
pub struct Module {
    name: String,
    target: TargetConfig,
    types: TypeTable,
    functions: Vec<Function>,
    globals: Vec<GlobalVar>,
    func_names: HashMap<String, FuncId>,
    global_names: HashMap<String, GlobalId>,
}

impl Module {
    /// Creates an empty module for the given I-ISA configuration.
    pub fn new(name: impl Into<String>, target: TargetConfig) -> Module {
        Module {
            name: name.into(),
            target,
            types: TypeTable::new(),
            functions: Vec::new(),
            globals: Vec::new(),
            func_names: HashMap::new(),
            global_names: HashMap::new(),
        }
    }

    /// The module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The I-ISA configuration flags (§3.2).
    pub fn target(&self) -> TargetConfig {
        self.target
    }

    /// Overrides the target configuration (retargeting before translation).
    pub fn set_target(&mut self, target: TargetConfig) {
        self.target = target;
    }

    /// The module's type table.
    pub fn types(&self) -> &TypeTable {
        &self.types
    }

    /// Mutable access to the type table.
    pub fn types_mut(&mut self) -> &mut TypeTable {
        &mut self.types
    }

    // ---- functions --------------------------------------------------------

    /// Adds a function with a fresh signature, returning its handle.
    ///
    /// # Panics
    ///
    /// Panics if a function with the same name already exists.
    pub fn add_function(
        &mut self,
        name: &str,
        ret_ty: TypeId,
        param_tys: Vec<TypeId>,
    ) -> FuncId {
        assert!(
            !self.func_names.contains_key(name),
            "duplicate function {name}"
        );
        let fty = self.types.function(ret_ty, param_tys.clone(), false);
        let id = FuncId::from_index(self.functions.len());
        self.functions
            .push(Function::new(name, fty, ret_ty, param_tys));
        self.func_names.insert(name.to_string(), id);
        id
    }

    /// Immutable access to a function.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Mutable access to a function.
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.index()]
    }

    /// Looks up a function by name.
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.func_names.get(name).copied()
    }

    /// Iterates over `(id, function)` pairs.
    pub fn functions(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// Function handles in definition order.
    pub fn function_ids(&self) -> Vec<FuncId> {
        (0..self.functions.len()).map(FuncId::from_index).collect()
    }

    /// Number of functions (including declarations).
    pub fn num_functions(&self) -> usize {
        self.functions.len()
    }

    /// Removes a function's body and name-table entry, leaving a tombstone
    /// declaration (used by global dead-code elimination). Handles of
    /// other functions remain valid.
    pub fn discard_function_body(&mut self, id: FuncId) {
        let name = self.functions[id.index()].name().to_string();
        let f = &self.functions[id.index()];
        let mut fresh = Function::new(name.clone(), f.type_id(), f.return_type(), f.param_types().to_vec());
        fresh.set_linkage(f.linkage());
        self.functions[id.index()] = fresh;
    }

    // ---- globals ----------------------------------------------------------

    /// Adds a global variable, returning its handle.
    ///
    /// # Panics
    ///
    /// Panics if a global with the same name already exists.
    pub fn add_global(
        &mut self,
        name: &str,
        value_ty: TypeId,
        init: Initializer,
        is_const: bool,
    ) -> GlobalId {
        assert!(
            !self.global_names.contains_key(name),
            "duplicate global {name}"
        );
        let id = GlobalId::from_index(self.globals.len());
        self.globals.push(GlobalVar {
            name: name.to_string(),
            value_ty,
            init,
            is_const,
            linkage: Linkage::External,
        });
        self.global_names.insert(name.to_string(), id);
        id
    }

    /// Immutable access to a global.
    pub fn global(&self, id: GlobalId) -> &GlobalVar {
        &self.globals[id.index()]
    }

    /// Mutable access to a global.
    pub fn global_mut(&mut self, id: GlobalId) -> &mut GlobalVar {
        &mut self.globals[id.index()]
    }

    /// Looks up a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.global_names.get(name).copied()
    }

    /// Iterates over `(id, global)` pairs.
    pub fn globals(&self) -> impl Iterator<Item = (GlobalId, &GlobalVar)> {
        self.globals
            .iter()
            .enumerate()
            .map(|(i, g)| (GlobalId(i as u32), g))
    }

    /// Number of globals.
    pub fn num_globals(&self) -> usize {
        self.globals.len()
    }

    // ---- aggregate statistics (used by the Table 2 harness) ---------------

    /// Total linked LLVA instructions across all function bodies
    /// (the "#LLVA Inst." column of Table 2).
    pub fn total_insts(&self) -> usize {
        self.functions.iter().map(Function::num_insts).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_look_up_function() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let f = m.add_function("main", int, vec![]);
        assert_eq!(m.function_by_name("main"), Some(f));
        assert_eq!(m.function(f).name(), "main");
        assert!(m.function(f).is_declaration());
        assert_eq!(m.num_functions(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate function")]
    fn duplicate_function_panics() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        m.add_function("f", int, vec![]);
        m.add_function("f", int, vec![]);
    }

    #[test]
    fn add_and_look_up_global() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let g = m.add_global("counter", int, Initializer::Zero, false);
        assert_eq!(m.global_by_name("counter"), Some(g));
        assert_eq!(m.global(g).value_type(), int);
        assert!(!m.global(g).is_const());
        assert_eq!(m.num_globals(), 1);
    }

    #[test]
    fn discard_function_body_keeps_signature() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let f = m.add_function("f", int, vec![int]);
        m.function_mut(f).add_block("entry");
        assert!(!m.function(f).is_declaration());
        m.discard_function_body(f);
        assert!(m.function(f).is_declaration());
        assert_eq!(m.function(f).param_types().len(), 1);
        assert_eq!(m.function_by_name("f"), Some(f));
    }

    #[test]
    fn total_insts_starts_at_zero() {
        let m = Module::new("m", TargetConfig::default());
        assert_eq!(m.total_insts(), 0);
    }
}
