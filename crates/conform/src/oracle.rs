//! The N-way differential oracle.
//!
//! One module, one argument vector, N independent executions — every
//! stage must produce the *same* [`Outcome`]: the same return value,
//! the same trap kind, or (never, for healthy pipelines) the same
//! rejection. The stages cover every representation and executor the
//! paper claims are equivalent (§3, §4.1):
//!
//! | stage            | what runs                                             |
//! |------------------|-------------------------------------------------------|
//! | `interp`         | reference interpreter on the original module          |
//! | `fast-interp`    | pre-decoded register-file interpreter, same module    |
//! | `traced-interp`  | fast interpreter with the hot-trace tier enabled at a low threshold |
//! | `print-parse`    | printer → parser round trip, then interpreter         |
//! | `bytecode`       | bytecode encode → decode round trip, then interpreter |
//! | `image-roundtrip` | persistent image serialize → reload → warm-load execute |
//! | `pass:<name>`    | one optimization pass alone, verified, then interpreter |
//! | `opt:standard`   | the full `standard_pipeline()`, then interpreter      |
//! | `opt:linktime`   | the full `link_time_pipeline()`, then interpreter     |
//! | `reopt`          | profile → trace → `trace::reoptimize`, verified, then interpreter |
//! | `x86` / `sparc` / `riscv` | LLEE translation + simulated processor       |
//! | `<isa>:opt`      | standard-optimized module on each processor           |
//! | `<isa>:nopeep`   | LLEE translation with the shared peephole pass disabled |
//! | `supervisor`     | tiered supervisor, translated tier killed, cross-check on |
//!
//! The `<isa>:nopeep` stages assert the target-independent peephole
//! pass never changes observable outcomes: peephole-off translation
//! must agree with the baseline exactly like peephole-on does.
//!
//! The `supervisor` stage proves graceful degradation never changes
//! observable semantics: every seed runs with the translated tier
//! deliberately panicking, so the answer is served by a fallback tier
//! under cross-check against the structural interpreter.
//!
//! Tests can append custom stages (e.g. a deliberately sabotaged
//! translator) with [`Oracle::add_stage`].

use llva_core::module::Module;
use llva_engine::llee::{EngineError, ExecutionManager, TargetIsa};
use llva_engine::{FastInterpreter, InterpError, Interpreter};
use llva_machine::common::TrapKind;
use std::fmt;

/// What one oracle stage observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Normal completion with the returned raw bits.
    Value(u64),
    /// A precise trap of this kind.
    Trap(TrapKind),
    /// The fuel limit was exhausted.
    Fuel,
    /// A derived representation was rejected (verifier error, parse
    /// error, decode error) — always a conformance failure, because the
    /// original module verifies.
    Reject(String),
    /// The execution engine failed in some other way.
    Error(String),
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Value(v) => write!(f, "value {v:#x} ({})", *v as i64),
            Outcome::Trap(k) => write!(f, "trap: {k}"),
            Outcome::Fuel => f.write_str("out of fuel"),
            Outcome::Reject(e) => write!(f, "rejected: {e}"),
            Outcome::Error(e) => write!(f, "engine error: {e}"),
        }
    }
}

/// One stage's name and outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageResult {
    /// Stage name (stable; used for divergence statistics).
    pub stage: String,
    /// What the stage observed.
    pub outcome: Outcome,
}

/// A stage that disagreed with the baseline interpreter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// The disagreeing stage.
    pub stage: String,
    /// What the baseline (`interp`) stage observed.
    pub baseline: Outcome,
    /// What this stage observed instead.
    pub outcome: Outcome,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stage '{}': expected {}, got {}",
            self.stage, self.baseline, self.outcome
        )
    }
}

/// A custom stage: given the module and arguments, produce an outcome.
pub type StageFn = Box<dyn Fn(&Module, &str, &[u64], u64) -> Outcome>;

/// The oracle: a configured set of stages.
pub struct Oracle {
    fuel: u64,
    skip_native: bool,
    only: Option<Vec<String>>,
    extra: Vec<(String, StageFn)>,
}

impl fmt::Debug for Oracle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Oracle")
            .field("fuel", &self.fuel)
            .field("skip_native", &self.skip_native)
            .field("only", &self.only)
            .field("extra", &self.extra.iter().map(|(n, _)| n).collect::<Vec<_>>())
            .finish()
    }
}

impl Default for Oracle {
    fn default() -> Oracle {
        Oracle::new()
    }
}

impl Oracle {
    /// An oracle with the default stage set and a generous fuel limit.
    pub fn new() -> Oracle {
        Oracle {
            fuel: 50_000_000,
            skip_native: false,
            only: None,
            extra: Vec::new(),
        }
    }

    /// Restricts [`Oracle::stage_names`] (and therefore `run_stages` /
    /// `check`) to the named stages. The baseline `interp` stage is
    /// always kept — there is nothing to diff against without it.
    /// Unknown names are simply never matched; callers that care should
    /// validate against `stage_names` first.
    pub fn restrict_stages(&mut self, stages: Vec<String>) -> &mut Oracle {
        self.only = Some(stages);
        self
    }

    /// Overrides the per-stage fuel limit.
    pub fn set_fuel(&mut self, fuel: u64) -> &mut Oracle {
        self.fuel = fuel;
        self
    }

    /// Drops the native-processor stages — the per-target `-O0`,
    /// `:opt`, and `:nopeep` runs plus `supervisor` (used by the
    /// shrinker's inner loop when the divergence is known to be
    /// interpreter-only).
    pub fn skip_native(&mut self, skip: bool) -> &mut Oracle {
        self.skip_native = skip;
        self
    }

    /// Appends a custom stage.
    pub fn add_stage(
        &mut self,
        name: impl Into<String>,
        stage: impl Fn(&Module, &str, &[u64], u64) -> Outcome + 'static,
    ) -> &mut Oracle {
        self.extra.push((name.into(), Box::new(stage)));
        self
    }

    /// Runs a single stage by name (as reported by [`Oracle::stage_names`])
    /// and returns its outcome, or `None` for an unknown stage.
    ///
    /// The shrinker uses this to re-run *only* the stages that diverged
    /// on the original failure, instead of the full stage set, for
    /// every candidate edit.
    pub fn run_stage(&self, name: &str, module: &Module, entry: &str, args: &[u64]) -> Option<Outcome> {
        let fuel = self.fuel;
        Some(match name {
            "interp" => interp_outcome(module, entry, args, fuel),
            // pre-decoded register-file interpreter, same module
            "fast-interp" => fast_interp_outcome(module, entry, args, fuel),
            // hot-trace tier at an aggressive threshold so even short
            // seeds compile and run traces
            "traced-interp" => traced_interp_outcome(module, entry, args, fuel),
            // printer → parser round trip
            "print-parse" => {
                let text = llva_core::printer::print_module(module);
                match llva_core::parser::parse_module(&text) {
                    Ok(m2) => checked_interp(&m2, entry, args, fuel),
                    Err(e) => Outcome::Reject(format!("parse: {e}")),
                }
            }
            // bytecode encode → decode round trip
            "bytecode" => {
                let bytes = llva_core::bytecode::encode_module(module);
                match llva_core::bytecode::decode_module(&bytes) {
                    Ok(m2) => checked_interp(&m2, entry, args, fuel),
                    Err(e) => Outcome::Reject(format!("decode: {e}")),
                }
            }
            // persistent module image: serialize → reload → execute
            // from the deserialized pre-decode, no SSA re-lowering
            "image-roundtrip" => image_roundtrip_outcome(module, entry, args, fuel),
            // full pipelines
            "opt:standard" | "opt:linktime" => {
                let mut pm = if name == "opt:standard" {
                    llva_opt::standard_pipeline()
                } else {
                    llva_opt::link_time_pipeline(&[entry])
                };
                let mut m2 = module.clone();
                pm.run(&mut m2);
                checked_interp(&m2, entry, args, fuel)
            }
            // profile-guided reoptimization round trip
            "reopt" => reopt_outcome(module, entry, args, fuel),
            // LLEE translation + simulated processor, -O0
            "x86" => native_outcome(module.clone(), TargetIsa::X86, entry, args, fuel),
            "sparc" => native_outcome(module.clone(), TargetIsa::Sparc, entry, args, fuel),
            "riscv" => native_outcome(module.clone(), TargetIsa::Riscv, entry, args, fuel),
            // tiered supervisor under forced degradation + cross-check
            "supervisor" => supervisor_outcome(module, entry, args, fuel),
            // standard-optimized module on each processor
            "x86:opt" | "sparc:opt" | "riscv:opt" => {
                let mut m2 = module.clone();
                llva_opt::standard_pipeline().run(&mut m2);
                if let Err(e) = llva_core::verifier::verify_module(&m2) {
                    Outcome::Reject(format!("verify: {e}"))
                } else {
                    let isa = stage_isa(name).expect("matched arm has an isa prefix");
                    native_outcome(m2, isa, entry, args, fuel)
                }
            }
            // translation with the shared peephole pass off — must be
            // observably identical to the peephole-on stages
            "x86:nopeep" | "sparc:nopeep" | "riscv:nopeep" => {
                let isa = stage_isa(name).expect("matched arm has an isa prefix");
                native_outcome_nopeep(module.clone(), isa, entry, args, fuel)
            }
            _ => {
                // one optimization pass alone
                if let Some(pass_name) = name.strip_prefix("pass:") {
                    let pass = individual_passes(entry)
                        .into_iter()
                        .find(|p| p.name() == pass_name)?;
                    let mut pm = llva_opt::PassManager::new();
                    pm.add_boxed(pass);
                    let mut m2 = module.clone();
                    pm.run(&mut m2);
                    checked_interp(&m2, entry, args, fuel)
                } else if let Some((_, stage)) = self.extra.iter().find(|(n, _)| n == name) {
                    stage(module, entry, args, fuel)
                } else {
                    return None;
                }
            }
        })
    }

    /// Runs every stage on `module` and returns the per-stage outcomes,
    /// baseline (`interp`) first.
    pub fn run_stages(&self, module: &Module, entry: &str, args: &[u64]) -> Vec<StageResult> {
        self.stage_names(entry)
            .into_iter()
            .map(|stage| {
                let outcome = self
                    .run_stage(&stage, module, entry, args)
                    .expect("stage_names only yields known stages");
                StageResult { stage, outcome }
            })
            .collect()
    }

    /// Runs every stage and reports the ones that disagree with the
    /// baseline interpreter.
    pub fn check(&self, module: &Module, entry: &str, args: &[u64]) -> (Vec<StageResult>, Vec<Divergence>) {
        let results = self.run_stages(module, entry, args);
        let baseline = results[0].outcome.clone();
        let divergences = results
            .iter()
            .skip(1)
            .filter(|r| r.outcome != baseline)
            .map(|r| Divergence {
                stage: r.stage.clone(),
                baseline: baseline.clone(),
                outcome: r.outcome.clone(),
            })
            .collect();
        (results, divergences)
    }

    /// True if any stage disagrees with the baseline — the shrinker's
    /// "still interesting?" predicate.
    pub fn diverges(&self, module: &Module, entry: &str, args: &[u64]) -> bool {
        !self.check(module, entry, args).1.is_empty()
    }

    /// The names of the stages this oracle runs (on a module that
    /// produces no custom stages), for statistics displays.
    pub fn stage_names(&self, entry: &str) -> Vec<String> {
        let mut names = vec![
            "interp".to_string(),
            "fast-interp".to_string(),
            "traced-interp".to_string(),
            "print-parse".to_string(),
            "bytecode".to_string(),
            "image-roundtrip".to_string(),
        ];
        for pass in individual_passes(entry) {
            names.push(format!("pass:{}", pass.name()));
        }
        names.push("opt:standard".to_string());
        names.push("opt:linktime".to_string());
        names.push("reopt".to_string());
        if !self.skip_native {
            for isa in TargetIsa::ALL {
                names.push(isa.to_string());
            }
            for isa in TargetIsa::ALL {
                names.push(format!("{isa}:opt"));
            }
            for isa in TargetIsa::ALL {
                names.push(format!("{isa}:nopeep"));
            }
            names.push("supervisor".to_string());
        }
        for (name, _) in &self.extra {
            names.push(name.clone());
        }
        if let Some(only) = &self.only {
            names.retain(|n| n == "interp" || only.iter().any(|o| o == n));
        }
        names
    }
}

/// Every distinct pass appearing in either pipeline, one instance each.
fn individual_passes(entry: &str) -> Vec<Box<dyn llva_opt::ModulePass>> {
    let mut seen = Vec::new();
    let mut passes = Vec::new();
    for p in llva_opt::standard_pass_list()
        .into_iter()
        .chain(llva_opt::link_time_pass_list(&[entry]))
    {
        if !seen.contains(&p.name()) {
            seen.push(p.name());
            passes.push(p);
        }
    }
    passes
}

/// Interprets `module`, mapping every stop reason onto an [`Outcome`].
pub fn interp_outcome(module: &Module, entry: &str, args: &[u64], fuel: u64) -> Outcome {
    let mut i = Interpreter::new(module);
    i.set_fuel(fuel);
    match i.run(entry, args) {
        Ok(v) => Outcome::Value(v),
        Err(InterpError::Trap(t)) => Outcome::Trap(t.kind),
        Err(InterpError::OutOfFuel) => Outcome::Fuel,
        Err(e @ InterpError::NoSuchFunction(_)) => Outcome::Error(e.to_string()),
    }
}

/// Runs the pre-decoded [`FastInterpreter`] on `module`. Any
/// disagreement with [`interp_outcome`] is an engine bug: the two
/// interpreters must be value-for-value, trap-for-trap identical.
pub fn fast_interp_outcome(module: &Module, entry: &str, args: &[u64], fuel: u64) -> Outcome {
    let mut i = FastInterpreter::new(module);
    i.set_fuel(fuel);
    match i.run(entry, args) {
        Ok(v) => Outcome::Value(v),
        Err(InterpError::Trap(t)) => Outcome::Trap(t.kind),
        Err(InterpError::OutOfFuel) => Outcome::Fuel,
        Err(e @ InterpError::NoSuchFunction(_)) => Outcome::Error(e.to_string()),
    }
}

/// Runs the [`FastInterpreter`] with the hot-trace tier enabled. The
/// threshold is deliberately low (4) so trace formation, fused
/// superinstructions, side exits, and trace invalidation all fire even
/// on short generated seeds — any disagreement with the baseline is a
/// trace-compiler bug.
pub fn traced_interp_outcome(module: &Module, entry: &str, args: &[u64], fuel: u64) -> Outcome {
    let mut i = FastInterpreter::new(module);
    i.set_fuel(fuel);
    i.enable_tracing(llva_engine::TraceConfig {
        hot_threshold: 4,
        max_blocks: 16,
    });
    match i.run(entry, args) {
        Ok(v) => Outcome::Value(v),
        Err(InterpError::Trap(t)) => Outcome::Trap(t.kind),
        Err(InterpError::OutOfFuel) => Outcome::Fuel,
        Err(e @ InterpError::NoSuchFunction(_)) => Outcome::Error(e.to_string()),
    }
}

/// The full profile-guided reoptimization round trip (§4.2): instrument
/// a clone, run it under the fast interpreter to fill the counters,
/// form traces from the profile, [`llva_engine::trace::reoptimize`] a
/// *clean* clone (trace-informed inlining + the scalar pipeline), then
/// verify and interpret the reoptimized module. Instrumentation only
/// inserts instructions, so the profile map's block ids address the
/// clean clone directly.
pub fn reopt_outcome(module: &Module, entry: &str, args: &[u64], fuel: u64) -> Outcome {
    use llva_engine::{profile, trace};
    let mut instrumented = module.clone();
    let map = profile::instrument(&mut instrumented);
    if let Err(e) = llva_core::verifier::verify_module(&instrumented) {
        return Outcome::Reject(format!("instrumented verify: {e}"));
    }
    let mut profiler = FastInterpreter::new(&instrumented);
    // the counter updates quadruple+ the instruction stream; give the
    // profiling run headroom so the profile covers what the real run
    // covers (its outcome is irrelevant — only the counters matter)
    profiler.set_fuel(fuel.saturating_mul(8));
    let _ = profiler.run(entry, args);
    let counts = profiler.read_counters(&map);

    let mut m2 = module.clone();
    let cache = trace::form_traces(&m2, &map, &counts, 8, 16);
    trace::reoptimize(&mut m2, &cache);
    checked_interp(&m2, entry, args, fuel)
}

/// Serializes the module into a persistent image (bytecode + full
/// pre-decode section), reloads it cold, and executes from the
/// *deserialized* `PreFunction` records — the warm-load fast path with
/// zero SSA re-lowering. Any parse failure, partial install, or
/// divergence from the baseline is an image-format bug.
pub fn image_roundtrip_outcome(module: &Module, entry: &str, args: &[u64], fuel: u64) -> Outcome {
    use llva_engine::{ImageBuilder, LlvaImage, PreModule};
    let pre = PreModule::new(module);
    pre.decode_all();
    let mut builder = ImageBuilder::new(module);
    builder.add_predecode(&pre);
    let image = match LlvaImage::parse(builder.finish()) {
        Ok(image) => std::sync::Arc::new(image),
        Err(e) => return Outcome::Reject(format!("image parse: {e}")),
    };
    let m2 = match image.decode_module() {
        Ok(m2) => m2,
        Err(e) => return Outcome::Reject(format!("image bytecode: {e}")),
    };
    if let Err(e) = llva_core::verifier::verify_module(&m2) {
        return Outcome::Reject(format!("verify: {e}"));
    }
    let (pre2, installed) = match image.premodule(&m2) {
        Ok(warm) => warm,
        Err(e) => return Outcome::Reject(format!("image predecode: {e}")),
    };
    let defined = m2.functions().filter(|(_, f)| !f.is_declaration()).count();
    if installed != defined {
        // a stale or missing record would silently re-lower; for a
        // same-process round trip that is a stamp bug, not a fallback
        return Outcome::Reject(format!("warm install covered {installed}/{defined} functions"));
    }
    let mut i = FastInterpreter::with_predecoded(pre2);
    i.set_fuel(fuel);
    match i.run(entry, args) {
        Ok(v) => Outcome::Value(v),
        Err(InterpError::Trap(t)) => Outcome::Trap(t.kind),
        Err(InterpError::OutOfFuel) => Outcome::Fuel,
        Err(e @ InterpError::NoSuchFunction(_)) => Outcome::Error(e.to_string()),
    }
}

/// Verifies `module` first (a derived representation must still
/// verify), then interprets it.
pub fn checked_interp(module: &Module, entry: &str, args: &[u64], fuel: u64) -> Outcome {
    if let Err(e) = llva_core::verifier::verify_module(module) {
        return Outcome::Reject(format!("verify: {e}"));
    }
    interp_outcome(module, entry, args, fuel)
}

/// Runs the tiered execution supervisor with the translated tier
/// deliberately killed and cross-check mode on: every invocation
/// exercises a real catch_unwind recovery, a quarantine, and a fallback
/// to the pre-decoded interpreter verified against the structural one.
///
/// The stage maps the supervised outcome onto [`Outcome`] only when the
/// incident log contains nothing but the injected kill; any *other*
/// incident (an unexpected panic, watchdog expiry, or divergence in a
/// fallback tier) becomes an [`Outcome::Error`] carrying the incident —
/// so a failure report names the tier that diverged instead of the
/// supervisor silently degrading past a real bug.
pub fn supervisor_outcome(module: &Module, entry: &str, args: &[u64], fuel: u64) -> Outcome {
    use llva_engine::supervisor::{Supervisor, Tier, TierKill, TierOutcome};
    let mut sup = Supervisor::new(module.clone(), TargetIsa::X86);
    sup.set_fuel(fuel);
    sup.set_cross_check(true);
    sup.arm_kill(TierKill::panic(Tier::Translated));
    match sup.run(entry, args) {
        Ok(run) => {
            if let Some(incident) =
                sup.incident_log().incidents().iter().find(|i| !i.injected)
            {
                return Outcome::Error(format!("supervisor incident: {incident}"));
            }
            match run.outcome {
                TierOutcome::Value(v) => Outcome::Value(v),
                TierOutcome::Trap(k) => Outcome::Trap(k),
                TierOutcome::OutOfFuel => Outcome::Fuel,
            }
        }
        Err(e) => Outcome::Error(format!("supervisor: {e} [{}]", sup.incident_log().summary())),
    }
}

/// Maps a native stage name (`x86`, `sparc:opt`, `riscv:nopeep`, ...)
/// onto the target it runs.
fn stage_isa(name: &str) -> Option<TargetIsa> {
    let base = name.split(':').next().unwrap_or(name);
    TargetIsa::ALL.into_iter().find(|isa| isa.to_string() == base)
}

/// Translates with LLEE and runs on the simulated `isa` processor.
pub fn native_outcome(module: Module, isa: TargetIsa, entry: &str, args: &[u64], fuel: u64) -> Outcome {
    native_run(ExecutionManager::new(module, isa), entry, args, fuel)
}

/// Like [`native_outcome`], but with the shared target-independent
/// peephole pass disabled — the `<isa>:nopeep` oracle stages.
pub fn native_outcome_nopeep(
    module: Module,
    isa: TargetIsa,
    entry: &str,
    args: &[u64],
    fuel: u64,
) -> Outcome {
    let mut mgr = ExecutionManager::new(module, isa);
    mgr.set_peephole(false);
    native_run(mgr, entry, args, fuel)
}

fn native_run(mut mgr: ExecutionManager, entry: &str, args: &[u64], fuel: u64) -> Outcome {
    mgr.set_fuel(fuel);
    match mgr.run(entry, args) {
        Ok(out) => Outcome::Value(out.value),
        Err(EngineError::Trapped(t)) => Outcome::Trap(t.kind),
        Err(EngineError::OutOfFuel) => Outcome::Fuel,
        Err(e) => Outcome::Error(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    #[test]
    fn straightline_module_agrees_everywhere() {
        let tc = generate(1, &GenConfig::default());
        let (results, divergences) = Oracle::new().check(&tc.module, &tc.entry, &tc.args);
        assert!(
            divergences.is_empty(),
            "divergences: {divergences:?}\nresults: {results:?}"
        );
        assert_eq!(results[0].stage, "interp");
    }

    #[test]
    fn sabotaged_stage_is_flagged() {
        let tc = generate(2, &GenConfig::default());
        let mut oracle = Oracle::new();
        oracle.skip_native(true);
        oracle.add_stage("sabotage", |_, _, _, _| Outcome::Value(0xDEAD_BEEF));
        let (_, divergences) = oracle.check(&tc.module, &tc.entry, &tc.args);
        assert_eq!(divergences.len(), 1);
        assert_eq!(divergences[0].stage, "sabotage");
    }

    #[test]
    fn stage_names_match_reported_results() {
        let tc = generate(3, &GenConfig::default());
        let oracle = Oracle::new();
        let names = oracle.stage_names(&tc.entry);
        let results = oracle.run_stages(&tc.module, &tc.entry, &tc.args);
        let got: Vec<String> = results.into_iter().map(|r| r.stage).collect();
        assert_eq!(names, got);
        assert!(names.iter().any(|n| n == "supervisor"), "{names:?}");
    }

    #[test]
    fn supervisor_stage_agrees_under_forced_degradation() {
        // several seeds, each one a full kill + quarantine + fallback +
        // cross-check cycle that must land on the baseline outcome
        for seed in [4, 5, 6, 7] {
            let tc = generate(seed, &GenConfig::default());
            let oracle = Oracle::new();
            let baseline = oracle
                .run_stage("interp", &tc.module, &tc.entry, &tc.args)
                .expect("known stage");
            let supervised = oracle
                .run_stage("supervisor", &tc.module, &tc.entry, &tc.args)
                .expect("known stage");
            assert_eq!(supervised, baseline, "seed {seed}");
        }
    }

    #[test]
    fn native_stages_cover_all_targets_in_all_modes() {
        let names = Oracle::new().stage_names("main");
        for isa in TargetIsa::ALL {
            for stage in [isa.to_string(), format!("{isa}:opt"), format!("{isa}:nopeep")] {
                assert!(names.contains(&stage), "missing stage {stage}");
            }
        }
    }

    #[test]
    fn peephole_off_agrees_with_baseline() {
        // the `<isa>:nopeep` stages are the "peephole off vs on" oracle:
        // disabling the shared pass must not change any observable outcome
        for seed in [8, 9] {
            let tc = generate(seed, &GenConfig::default());
            let oracle = Oracle::new();
            let baseline = oracle
                .run_stage("interp", &tc.module, &tc.entry, &tc.args)
                .expect("known stage");
            for isa in TargetIsa::ALL {
                let off = oracle
                    .run_stage(&format!("{isa}:nopeep"), &tc.module, &tc.entry, &tc.args)
                    .expect("known stage");
                assert_eq!(off, baseline, "seed {seed} isa {isa}");
            }
        }
    }

    #[test]
    fn restrict_stages_keeps_baseline_and_named_only() {
        let mut oracle = Oracle::new();
        oracle.restrict_stages(vec!["supervisor".to_string(), "x86".to_string()]);
        let names = oracle.stage_names("main");
        assert_eq!(names, ["interp", "x86", "supervisor"], "canonical order, baseline kept");
    }
}
