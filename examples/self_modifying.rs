//! Constrained self-modifying code (paper §3.4) and OS support (§3.5).
//!
//! LLVA allows a program to modify its own virtual instructions "but
//! such a change only affects future invocations of that function":
//! the translator just marks the translation invalid and regenerates it
//! on the next call. This example also demonstrates the privileged bit
//! and trap-handler registration.
//!
//! Run with: `cargo run --example self_modifying`

use llva::core::builder::FunctionBuilder;
use llva::core::layout::TargetConfig;
use llva::engine::llee::{ExecutionManager, TargetIsa};

const PROGRAM: &str = r#"
int version() { return 1; }

int main() { return version(); }
"#;

fn main() {
    println!("=== self-modifying code (§3.4) ===\n");
    let module =
        llva::minic::compile(PROGRAM, "smc_demo", TargetConfig::default()).expect("compiles");
    let mut mgr = ExecutionManager::new(module, TargetIsa::X86);

    let v1 = mgr.run("main", &[]).expect("runs").value;
    println!("before modification: version() = {v1}");
    let translated_before = mgr.stats().functions_translated;

    // rewrite version()'s virtual instructions; the translation is
    // invalidated and the *next* invocation regenerates it
    mgr.modify_function("version", |m, fid| {
        m.discard_function_body(fid);
        let int = m.types_mut().int();
        let mut b = FunctionBuilder::new(m, fid);
        let entry = b.block("entry");
        b.switch_to(entry);
        let two = b.iconst(int, 2);
        b.ret(Some(two));
    });
    println!("modified %version via the constrained SMC model...");

    let v2 = mgr.run("main", &[]).expect("runs").value;
    println!(
        "after modification : version() = {v2} (retranslated {} function(s), {} invalidation(s))",
        mgr.stats().functions_translated - translated_before,
        mgr.stats().invalidations
    );
    assert_eq!((v1, v2), (1, 2));

    // ---- §3.5: privileged intrinsics + trap handlers -------------------
    println!("\n=== OS support: privileged bit + trap handler (§3.5) ===\n");
    let os_program = r#"
int handler_ran = 0;

void on_trap(int trap_no, char* info) {
    handler_ran = trap_no;
    putchar('T');
    putchar('0' + trap_no);
}

int main(int divisor) {
    return 100 / divisor;
}
"#;
    let m = llva::minic::compile(os_program, "os_demo", TargetConfig::default()).expect("compiles");
    let mut mgr = ExecutionManager::new(m, TargetIsa::Sparc);
    // the "OS" boots privileged and registers a divide-by-zero handler
    mgr.env.privileged = true;
    let handler = mgr
        .module()
        .function_by_name("on_trap")
        .expect("handler exists")
        .index() as u32;
    mgr.env.trap_handlers.insert(2, handler); // 2 = divide by zero

    match mgr.run("main", &[0]) {
        Err(e) => println!("main(0) trapped as expected: {e}"),
        Ok(v) => panic!("expected a trap, got {v:?}"),
    }
    println!(
        "trap handler output: {:?} (the handler ran before the trap was reported)",
        mgr.env.stdout_string()
    );
    assert_eq!(mgr.env.stdout_string(), "T2");

    let ok = mgr.run("main", &[4]).expect("runs").value;
    println!("main(4) = {ok} (normal execution unaffected)");
}
