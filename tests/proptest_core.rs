//! Property-based tests over randomly generated LLVA programs.
//!
//! A random "recipe" of arithmetic/compare/select steps is lowered
//! through the builder into a verified module; properties then assert
//! that every representation change (bytecode, assembly) and every
//! optimization preserves the interpreter's semantics, and that both
//! simulated processors agree with the interpreter.

use llva::core::builder::FunctionBuilder;
use llva::core::layout::TargetConfig;
use llva::core::module::Module;
use llva::core::value::ValueId;
use llva::engine::llee::{ExecutionManager, TargetIsa};
use llva::engine::Interpreter;
use proptest::prelude::*;

/// One step of a generated program.
#[derive(Debug, Clone)]
enum Step {
    /// A fresh integer constant.
    Const(i32),
    /// A binary operation over two earlier values (by index).
    Bin(u8, usize, usize),
    /// `select(cond_value != 0, a, b)` lowered as a CFG diamond + phi.
    Select(usize, usize, usize),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (-1000i32..1000).prop_map(Step::Const),
        (0u8..8, 0usize..64, 0usize..64).prop_map(|(op, a, b)| Step::Bin(op, a, b)),
        (0usize..64, 0usize..64, 0usize..64).prop_map(|(c, a, b)| Step::Select(c, a, b)),
    ]
}

/// Builds a module `long f(long, long)` from a recipe; every operation
/// is total (division uses a guarded nonzero divisor).
fn build(steps: &[Step]) -> Module {
    let mut m = Module::new("prop", TargetConfig::default());
    let long = m.types_mut().long();
    let f = m.add_function("f", long, vec![long, long]);
    let mut b = FunctionBuilder::new(&mut m, f);
    let entry = b.block("entry");
    b.switch_to(entry);
    let mut vals: Vec<ValueId> = b.func().args().to_vec();
    for (si, step) in steps.iter().enumerate() {
        let pick = |i: usize| vals[i % vals.len()];
        let v = match step {
            Step::Const(c) => b.iconst(long, i64::from(*c)),
            Step::Bin(op, a, c) => {
                let (x, y) = (pick(*a), pick(*c));
                match op % 8 {
                    0 => b.add(x, y),
                    1 => b.sub(x, y),
                    2 => b.mul(x, y),
                    3 => {
                        // guarded division: divisor = (y | 1) so it is
                        // never zero, and the sign stays varied
                        let one = b.iconst(long, 1);
                        let nz = b.or(y, one);
                        b.div(x, nz)
                    }
                    4 => b.and(x, y),
                    5 => b.or(x, y),
                    6 => b.xor(x, y),
                    _ => {
                        // bounded shift: (y & 31)
                        let mask = b.iconst(long, 31);
                        let sh = b.and(y, mask);
                        b.shl(x, sh)
                    }
                }
            }
            Step::Select(c, a, d) => {
                let (cv, x, y) = (pick(*c), pick(*a), pick(*d));
                let zero = b.iconst(long, 0);
                let cond = b.setne(cv, zero);
                let tb = b.block(&format!("t{si}"));
                let eb = b.block(&format!("e{si}"));
                let jb = b.block(&format!("j{si}"));
                b.cond_br(cond, tb, eb);
                b.switch_to(tb);
                b.br(jb);
                b.switch_to(eb);
                b.br(jb);
                b.switch_to(jb);
                b.phi(long, vec![(x, tb), (y, eb)])
            }
        };
        vals.push(v);
    }
    let ret = *vals.last().expect("at least the args");
    b.ret(Some(ret));
    m
}

fn interp(m: &Module, args: &[u64]) -> u64 {
    let mut i = Interpreter::new(m);
    i.set_fuel(10_000_000);
    i.run("f", args).expect("random programs are total")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_modules_verify(steps in prop::collection::vec(step_strategy(), 1..40)) {
        let m = build(&steps);
        llva::core::verifier::verify_module(&m).expect("generated module verifies");
    }

    #[test]
    fn bytecode_round_trip_preserves_semantics(
        steps in prop::collection::vec(step_strategy(), 1..30),
        a in -500i64..500,
        b in -500i64..500,
    ) {
        let m = build(&steps);
        let args = [a as u64, b as u64];
        let expected = interp(&m, &args);
        let bytes = llva::core::bytecode::encode_module(&m);
        let m2 = llva::core::bytecode::decode_module(&bytes).expect("decodes");
        prop_assert_eq!(interp(&m2, &args), expected);
    }

    #[test]
    fn assembly_round_trip_preserves_semantics(
        steps in prop::collection::vec(step_strategy(), 1..25),
        a in -500i64..500,
        b in -500i64..500,
    ) {
        let m = build(&steps);
        let args = [a as u64, b as u64];
        let expected = interp(&m, &args);
        let text = llva::core::printer::print_module(&m);
        let m2 = llva::core::parser::parse_module(&text).expect("parses");
        prop_assert_eq!(interp(&m2, &args), expected);
    }

    #[test]
    fn optimizer_preserves_semantics(
        steps in prop::collection::vec(step_strategy(), 1..30),
        a in -500i64..500,
        b in -500i64..500,
    ) {
        let mut m = build(&steps);
        let args = [a as u64, b as u64];
        let expected = interp(&m, &args);
        let mut pm = llva::opt::standard_pipeline();
        pm.verify_after_each(true);
        pm.run(&mut m);
        prop_assert_eq!(interp(&m, &args), expected);
    }

    #[test]
    fn both_processors_agree_with_interpreter(
        steps in prop::collection::vec(step_strategy(), 1..20),
        a in -200i64..200,
        b in -200i64..200,
    ) {
        let m = build(&steps);
        let args = [a as u64, b as u64];
        let expected = interp(&m, &args);
        for isa in [TargetIsa::X86, TargetIsa::Sparc] {
            let mut mgr = ExecutionManager::new(build(&steps), isa);
            let out = mgr.run("f", &args).expect("runs");
            prop_assert_eq!(out.value, expected, "{} disagrees", isa);
        }
    }

    #[test]
    fn constant_folding_agrees_with_runtime(
        steps in prop::collection::vec(step_strategy(), 1..25),
    ) {
        // feed constants for the arguments so folding can collapse a lot
        let m = build(&steps);
        let expected = interp(&m, &[7u64, 13u64]);
        let mut folded = build(&steps);
        let mut pm = llva::opt::PassManager::new();
        pm.add(llva::opt::constfold::ConstFold::new())
            .add(llva::opt::dce::Dce::new())
            .verify_after_each(true);
        pm.run_to_fixpoint(&mut folded, 8);
        prop_assert_eq!(interp(&folded, &[7u64, 13u64]), expected);
    }

    #[test]
    fn eval_matches_interpreter_for_binaries(
        a in any::<i64>(),
        b in any::<i64>(),
        op_idx in 0usize..10,
    ) {
        use llva::core::instruction::Opcode;
        let ops = [
            Opcode::Add, Opcode::Sub, Opcode::Mul, Opcode::Div, Opcode::Rem,
            Opcode::And, Opcode::Or, Opcode::Xor, Opcode::Shl, Opcode::Shr,
        ];
        let op = ops[op_idx];
        let mut m = Module::new("e", TargetConfig::default());
        let long = m.types_mut().long();
        let f = m.add_function("f", long, vec![long, long]);
        let mut bb = FunctionBuilder::new(&mut m, f);
        let entry = bb.block("entry");
        bb.switch_to(entry);
        let (x, y) = (bb.func().args()[0], bb.func().args()[1]);
        let r = match op {
            Opcode::Add => bb.add(x, y),
            Opcode::Sub => bb.sub(x, y),
            Opcode::Mul => bb.mul(x, y),
            Opcode::Div => bb.div(x, y),
            Opcode::Rem => bb.rem(x, y),
            Opcode::And => bb.and(x, y),
            Opcode::Or => bb.or(x, y),
            Opcode::Xor => bb.xor(x, y),
            Opcode::Shl => bb.shl(x, y),
            _ => bb.shr(x, y),
        };
        bb.ret(Some(r));

        let ca = llva::core::value::Constant::Int { ty: long, bits: a as u64 };
        let cb = llva::core::value::Constant::Int { ty: long, bits: b as u64 };
        let folded = llva::core::eval::fold_binary(m.types(), op, &ca, &cb);
        let mut i = Interpreter::new(&m);
        i.set_fuel(1000);
        let run = i.run("f", &[a as u64, b as u64]);
        match folded {
            Some(c) => {
                // the interpreter must agree with compile-time folding
                prop_assert_eq!(run.expect("no trap when folding succeeded"), c.as_int_bits().unwrap());
            }
            None => {
                // fold refuses for division by zero (must trap at run
                // time) and for i64::MIN / -1 overflow (where the
                // runtime wraps but folding conservatively declines)
                prop_assert!(matches!(op, Opcode::Div | Opcode::Rem));
                if b == 0 {
                    prop_assert!(run.is_err());
                }
            }
        }
    }

    #[test]
    fn dominator_properties(
        steps in prop::collection::vec(step_strategy(), 1..25),
    ) {
        use llva::core::dominators::DomTree;
        let m = build(&steps);
        let f = m.function_by_name("f").expect("f");
        let func = m.function(f);
        let dom = DomTree::compute(func);
        let entry = func.entry_block();
        for &b in dom.reverse_postorder() {
            // the entry dominates every reachable block
            prop_assert!(dom.dominates(entry, b));
            // the immediate dominator strictly dominates its child
            if let Some(idom) = dom.idom(b) {
                prop_assert!(dom.strictly_dominates(idom, b));
            } else {
                prop_assert_eq!(b, entry);
            }
            // no block strictly dominates itself
            prop_assert!(!dom.strictly_dominates(b, b));
        }
    }

    #[test]
    fn encoding_stats_are_consistent(
        steps in prop::collection::vec(step_strategy(), 1..25),
    ) {
        let m = build(&steps);
        let stats = llva::core::bytecode::encoding_stats(&m);
        prop_assert_eq!(stats.small_insts + stats.extended_insts, m.total_insts());
        prop_assert!(stats.total_bytes > 0);
    }
}
