//! The pass framework: module passes, a pass manager, and run statistics.
//!
//! The paper's translation strategy (§4.2) layers optimization at
//! compile/link time (machine-independent, on the V-ISA), install time,
//! run time, and idle time. All of those stages drive the same pass
//! manager over the same representation — exactly the property that
//! makes a rich persistent code representation valuable.

use llva_core::module::Module;
use std::time::{Duration, Instant};

/// A transformation (or analysis that mutates nothing) over a module.
pub trait ModulePass {
    /// Short stable pass name (used in statistics and pipelines).
    fn name(&self) -> &'static str;

    /// Runs the pass. Returns `true` if the module was changed.
    fn run(&mut self, module: &mut Module) -> bool;
}

/// Statistics for one executed pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassStat {
    /// Pass name.
    pub name: &'static str,
    /// Whether the pass reported a change.
    pub changed: bool,
    /// Wall-clock duration of the pass.
    pub duration: Duration,
}

/// Runs a sequence of passes over a module, optionally verifying after
/// each one.
pub struct PassManager {
    passes: Vec<Box<dyn ModulePass>>,
    verify_each: bool,
}

impl std::fmt::Debug for PassManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassManager")
            .field("passes", &self.passes.iter().map(|p| p.name()).collect::<Vec<_>>())
            .field("verify_each", &self.verify_each)
            .finish()
    }
}

impl Default for PassManager {
    fn default() -> Self {
        PassManager::new()
    }
}

impl PassManager {
    /// Creates an empty manager.
    pub fn new() -> PassManager {
        PassManager {
            passes: Vec::new(),
            verify_each: false,
        }
    }

    /// Appends a pass.
    pub fn add(&mut self, pass: impl ModulePass + 'static) -> &mut PassManager {
        self.passes.push(Box::new(pass));
        self
    }

    /// Appends an already-boxed pass (useful when passes come from a
    /// [`standard_pass_list`]-style factory).
    pub fn add_boxed(&mut self, pass: Box<dyn ModulePass>) -> &mut PassManager {
        self.passes.push(pass);
        self
    }

    /// The names of the scheduled passes, in run order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Verifies the module after every pass; panics with the failing
    /// pass's name if verification fails. Intended for tests.
    pub fn verify_after_each(&mut self, on: bool) -> &mut PassManager {
        self.verify_each = on;
        self
    }

    /// Runs all passes once, in order.
    ///
    /// # Panics
    ///
    /// Panics if `verify_after_each(true)` was set and a pass breaks the
    /// module.
    pub fn run(&mut self, module: &mut Module) -> Vec<PassStat> {
        let mut stats = Vec::with_capacity(self.passes.len());
        for pass in &mut self.passes {
            let start = Instant::now();
            let changed = pass.run(module);
            stats.push(PassStat {
                name: pass.name(),
                changed,
                duration: start.elapsed(),
            });
            if self.verify_each {
                if let Err(e) = llva_core::verifier::verify_module(module) {
                    panic!("pass '{}' broke the module:\n{e}", pass.name());
                }
            }
        }
        stats
    }

    /// Runs the pipeline repeatedly until no pass reports a change, up
    /// to `max_iterations` rounds. Returns per-round statistics.
    pub fn run_to_fixpoint(&mut self, module: &mut Module, max_iterations: usize) -> Vec<Vec<PassStat>> {
        let mut rounds = Vec::new();
        for _ in 0..max_iterations {
            let stats = self.run(module);
            let changed = stats.iter().any(|s| s.changed);
            rounds.push(stats);
            if !changed {
                break;
            }
        }
        rounds
    }
}

/// The passes of [`standard_pipeline`], in run order, as a list.
///
/// Exposed separately so harnesses (the `llva-conform` differential
/// oracle, pass-invariant tests) can schedule and name each pass
/// individually instead of treating the pipeline as a black box.
pub fn standard_pass_list() -> Vec<Box<dyn ModulePass>> {
    vec![
        Box::new(crate::mem2reg::Mem2Reg::new()),
        Box::new(crate::constfold::ConstFold::new()),
        Box::new(crate::gvn::Gvn::new()),
        Box::new(crate::load_elim::LoadElim::new()),
        Box::new(crate::dce::Dce::new()),
        Box::new(crate::simplify_cfg::SimplifyCfg::new()),
        Box::new(crate::constfold::ConstFold::new()),
        Box::new(crate::dce::Dce::new()),
    ]
}

/// The passes of [`link_time_pipeline`], in run order, as a list.
pub fn link_time_pass_list(entry_points: &[&str]) -> Vec<Box<dyn ModulePass>> {
    vec![
        Box::new(crate::internalize::Internalize::new(entry_points)),
        Box::new(crate::inline::Inline::new()),
        Box::new(crate::globaldce::GlobalDce::new()),
        Box::new(crate::mem2reg::Mem2Reg::new()),
        Box::new(crate::constfold::ConstFold::new()),
        Box::new(crate::licm::Licm::new()),
        Box::new(crate::gvn::Gvn::new()),
        Box::new(crate::load_elim::LoadElim::new()),
        Box::new(crate::dce::Dce::new()),
        Box::new(crate::simplify_cfg::SimplifyCfg::new()),
        Box::new(crate::constfold::ConstFold::new()),
        Box::new(crate::dce::Dce::new()),
        Box::new(crate::globaldce::GlobalDce::new()),
    ]
}

/// The standard per-module optimization pipeline: SSA promotion followed
/// by the classical scalar cleanups the paper lists in §5.1.
pub fn standard_pipeline() -> PassManager {
    let mut pm = PassManager::new();
    for p in standard_pass_list() {
        pm.add_boxed(p);
    }
    pm
}

/// The link-time interprocedural pipeline (§4.2 item 1): internalize
/// everything but the entry points, inline small internal calls, drop
/// dead internals, then run the standard scalar pipeline.
pub fn link_time_pipeline(entry_points: &[&str]) -> PassManager {
    let mut pm = PassManager::new();
    for p in link_time_pass_list(entry_points) {
        pm.add_boxed(p);
    }
    pm
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl ModulePass for Nop {
        fn name(&self) -> &'static str {
            "nop"
        }
        fn run(&mut self, _m: &mut Module) -> bool {
            false
        }
    }

    struct OnceChanger(bool);
    impl ModulePass for OnceChanger {
        fn name(&self) -> &'static str {
            "once"
        }
        fn run(&mut self, _m: &mut Module) -> bool {
            std::mem::replace(&mut self.0, false)
        }
    }

    #[test]
    fn manager_runs_in_order_and_reports() {
        let mut m = Module::new("m", llva_core::layout::TargetConfig::default());
        let mut pm = PassManager::new();
        pm.add(Nop).add(OnceChanger(true));
        let stats = pm.run(&mut m);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].name, "nop");
        assert!(!stats[0].changed);
        assert!(stats[1].changed);
    }

    #[test]
    fn fixpoint_stops_when_stable() {
        let mut m = Module::new("m", llva_core::layout::TargetConfig::default());
        let mut pm = PassManager::new();
        pm.add(OnceChanger(true));
        let rounds = pm.run_to_fixpoint(&mut m, 10);
        assert_eq!(rounds.len(), 2); // one changing round + one stable round
    }
}
