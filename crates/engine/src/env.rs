//! The translator-provided runtime environment: intrinsic functions,
//! the privileged bit, and trap-handler registration (paper §3.5).
//!
//! Both the reference interpreter and the native execution manager
//! dispatch `llva.*` intrinsic calls here, so the two execution paths
//! observe identical semantics.

use llva_core::intrinsics::Intrinsic;
use llva_machine::common::TrapKind;
use llva_machine::memory::Memory;
use llva_machine::x86::FUNC_TAG;
use std::collections::HashMap;

/// Shared intrinsic state: I/O buffers, the privileged bit, the cycle
/// counter, registered trap handlers, and SMC invalidation requests.
#[derive(Debug, Default)]
pub struct Env {
    /// The privileged bit (§3.5). Starts clear (user mode); the OS
    /// kernel would set it before registering handlers.
    pub privileged: bool,
    /// Console output captured from `llva.io.putchar`.
    pub stdout: Vec<u8>,
    /// Console input consumed by `llva.io.getchar`.
    pub stdin: std::collections::VecDeque<u8>,
    /// Virtual cycle counter returned by `llva.clock` (incremented by
    /// the caller as execution progresses).
    pub clock: u64,
    /// Registered trap handlers: trap number → function index.
    pub trap_handlers: HashMap<u32, u32>,
    /// Functions whose translations were invalidated via
    /// `llva.smc.invalidate` (§3.4); drained by the execution manager.
    pub smc_invalidations: Vec<u32>,
    /// The OS storage-API entry point registered at startup (§4.1).
    pub storage_api: Option<u64>,
    /// Pending software trap raised by `llva.trap.raise`.
    pub raised_trap: Option<(u32, u64)>,
}

/// Information about the active call stack, supplied by whichever
/// execution substrate is running (machine or interpreter).
#[derive(Debug, Clone, Default)]
pub struct StackView {
    /// Function indices, innermost first.
    pub functions: Vec<u32>,
}

impl Env {
    /// Creates a fresh environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// Services one intrinsic call.
    ///
    /// # Errors
    ///
    /// Returns [`TrapKind::PrivilegeViolation`] when a privileged
    /// intrinsic is called with the privileged bit clear, and memory
    /// faults from heap exhaustion.
    pub fn handle(
        &mut self,
        which: Intrinsic,
        args: &[u64],
        mem: &mut Memory,
        stack: &StackView,
        func_names: &[String],
    ) -> Result<u64, TrapKind> {
        if which.requires_privilege() && !self.privileged {
            return Err(TrapKind::PrivilegeViolation);
        }
        let arg = |i: usize| args.get(i).copied().unwrap_or(0);
        Ok(match which {
            Intrinsic::TrapRegister => {
                let trap_no = arg(0) as u32;
                let handler = arg(1);
                let index = (handler & !FUNC_TAG) as u32;
                if handler & FUNC_TAG == 0 || index as usize >= func_names.len() {
                    return Err(TrapKind::BadFunctionPointer);
                }
                self.trap_handlers.insert(trap_no, index);
                0
            }
            Intrinsic::TrapRaise => {
                self.raised_trap = Some((arg(0) as u32, arg(1)));
                0
            }
            Intrinsic::PrivSet => {
                self.privileged = arg(0) != 0;
                0
            }
            Intrinsic::PrivGet => u64::from(self.privileged),
            Intrinsic::StackFrames => stack.functions.len() as u64,
            Intrinsic::StackFuncName => {
                let depth = arg(0) as usize;
                let name = stack
                    .functions
                    .get(depth)
                    .and_then(|&f| func_names.get(f as usize))
                    .cloned()
                    .unwrap_or_default();
                let addr = mem.heap_alloc(name.len() as u64 + 1)?;
                mem.write_bytes(addr, name.as_bytes())?;
                mem.store(addr + name.len() as u64, 0, llva_machine::Width::B1)?;
                addr
            }
            Intrinsic::SmcInvalidate | Intrinsic::SmcReplace => {
                let target = arg(0);
                let index = (target & !FUNC_TAG) as u32;
                if target & FUNC_TAG == 0 || index as usize >= func_names.len() {
                    return Err(TrapKind::BadFunctionPointer);
                }
                self.smc_invalidations.push(index);
                0
            }
            Intrinsic::StorageRegister => {
                self.storage_api = Some(arg(0));
                0
            }
            Intrinsic::IoPutChar => {
                self.stdout.push(arg(0) as u8);
                0
            }
            Intrinsic::IoGetChar => match self.stdin.pop_front() {
                Some(b) => u64::from(b),
                None => (-1i64) as u64,
            },
            Intrinsic::HeapAlloc => mem.heap_alloc(arg(0))?,
            Intrinsic::HeapFree => {
                mem.heap_free(arg(0));
                0
            }
            Intrinsic::Clock => self.clock,
        })
    }

    /// The captured stdout as UTF-8 (lossy).
    pub fn stdout_string(&self) -> String {
        String::from_utf8_lossy(&self.stdout).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llva_core::layout::Endianness;
    use llva_machine::x86::function_value;

    fn mem() -> Memory {
        Memory::new(1 << 20, 0x2000, Endianness::Little)
    }

    #[test]
    fn putchar_accumulates() {
        let mut env = Env::new();
        let mut m = mem();
        for c in b"hi" {
            env.handle(
                Intrinsic::IoPutChar,
                &[u64::from(*c)],
                &mut m,
                &StackView::default(),
                &[],
            )
            .unwrap();
        }
        assert_eq!(env.stdout_string(), "hi");
    }

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("fn{i}")).collect()
    }

    #[test]
    fn privileged_intrinsics_gated() {
        let mut env = Env::new();
        let mut m = mem();
        let funcs = names(4);
        let r = env.handle(
            Intrinsic::TrapRegister,
            &[1, function_value(0)],
            &mut m,
            &StackView::default(),
            &funcs,
        );
        assert_eq!(r, Err(TrapKind::PrivilegeViolation));
        env.privileged = true;
        let r = env.handle(
            Intrinsic::TrapRegister,
            &[1, function_value(3)],
            &mut m,
            &StackView::default(),
            &funcs,
        );
        assert_eq!(r, Ok(0));
        assert_eq!(env.trap_handlers.get(&1), Some(&3));
    }

    #[test]
    fn out_of_range_function_pointers_rejected() {
        let mut env = Env::new();
        env.privileged = true;
        let mut m = mem();
        let funcs = names(2);
        // handler index 2 is past the end of a 2-function module
        let r = env.handle(
            Intrinsic::TrapRegister,
            &[1, function_value(2)],
            &mut m,
            &StackView::default(),
            &funcs,
        );
        assert_eq!(r, Err(TrapKind::BadFunctionPointer));
        assert!(env.trap_handlers.is_empty());
        let r = env.handle(
            Intrinsic::SmcInvalidate,
            &[function_value(7)],
            &mut m,
            &StackView::default(),
            &funcs,
        );
        assert_eq!(r, Err(TrapKind::BadFunctionPointer));
        assert!(env.smc_invalidations.is_empty());
    }

    #[test]
    fn priv_set_and_get() {
        let mut env = Env::new();
        let mut m = mem();
        // priv.get is unprivileged
        assert_eq!(
            env.handle(Intrinsic::PrivGet, &[], &mut m, &StackView::default(), &[]),
            Ok(0)
        );
        // priv.set requires privilege... which it cannot get by itself
        assert_eq!(
            env.handle(Intrinsic::PrivSet, &[1], &mut m, &StackView::default(), &[]),
            Err(TrapKind::PrivilegeViolation)
        );
        env.privileged = true;
        assert_eq!(
            env.handle(Intrinsic::PrivSet, &[0], &mut m, &StackView::default(), &[]),
            Ok(0)
        );
        assert!(!env.privileged);
    }

    #[test]
    fn heap_alloc_returns_disjoint_blocks() {
        let mut env = Env::new();
        let mut m = mem();
        let a = env
            .handle(Intrinsic::HeapAlloc, &[64], &mut m, &StackView::default(), &[])
            .unwrap();
        let b = env
            .handle(Intrinsic::HeapAlloc, &[64], &mut m, &StackView::default(), &[])
            .unwrap();
        assert!(b >= a + 64);
    }

    #[test]
    fn stack_funcname_writes_cstr() {
        let mut env = Env::new();
        let mut m = mem();
        let stack = StackView {
            functions: vec![1, 0],
        };
        let names = vec!["main".to_string(), "helper".to_string()];
        let addr = env
            .handle(Intrinsic::StackFuncName, &[0], &mut m, &stack, &names)
            .unwrap();
        assert_eq!(m.read_cstr(addr).unwrap(), b"helper");
        let addr = env
            .handle(Intrinsic::StackFuncName, &[1], &mut m, &stack, &names)
            .unwrap();
        assert_eq!(m.read_cstr(addr).unwrap(), b"main");
    }

    #[test]
    fn smc_invalidation_queued() {
        let mut env = Env::new();
        let mut m = mem();
        env.handle(
            Intrinsic::SmcInvalidate,
            &[function_value(5)],
            &mut m,
            &StackView::default(),
            &names(6),
        )
        .unwrap();
        assert_eq!(env.smc_invalidations, vec![5]);
    }

    #[test]
    fn getchar_consumes_stdin() {
        let mut env = Env::new();
        env.stdin.extend(b"ab");
        let mut m = mem();
        let a = env
            .handle(Intrinsic::IoGetChar, &[], &mut m, &StackView::default(), &[])
            .unwrap();
        assert_eq!(a, u64::from(b'a'));
        let b = env
            .handle(Intrinsic::IoGetChar, &[], &mut m, &StackView::default(), &[])
            .unwrap();
        assert_eq!(b, u64::from(b'b'));
        let eof = env
            .handle(Intrinsic::IoGetChar, &[], &mut m, &StackView::default(), &[])
            .unwrap();
        assert_eq!(eof as i64, -1);
    }
}
