//! Offline translation and caching through the OS-independent storage
//! API (paper §4.1).
//!
//! Launch 1 JIT-translates and writes native code into a directory
//! cache; launch 2 loads every translation from the cache (zero JIT);
//! then the program is modified, the timestamp check rejects the stale
//! cache, and translation happens again — exactly the LLEE protocol:
//! "LLEE uses it to look for a cached translation of the code, checks
//! its timestamp if it exists, and reads it into memory if the
//! translation is not out of date."
//!
//! Run with: `cargo run --example offline_cache`

use llva::core::layout::TargetConfig;
use llva::engine::llee::{ExecutionManager, TargetIsa};
use llva::engine::storage::{DirStorage, Storage};

const PROGRAM: &str = r#"
int work(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) s += i * i;
    return s;
}

int main() { return work(100); }
"#;

fn main() {
    let cache_dir = std::env::temp_dir().join("llva-offline-cache-example");
    let _ = std::fs::remove_dir_all(&cache_dir);
    println!("=== LLEE offline caching (storage API at {}) ===\n", cache_dir.display());

    let module = || {
        llva::minic::compile(PROGRAM, "cached_app", TargetConfig::default()).expect("compiles")
    };

    // launch 1: cold — JIT everything, write back to the cache
    {
        let mut mgr = ExecutionManager::new(module(), TargetIsa::X86);
        mgr.set_storage(Box::new(DirStorage::new(&cache_dir)), "cached_app");
        let out = mgr.run("main", &[]).expect("runs");
        let s = mgr.stats();
        println!(
            "launch 1: result={} | JIT translated {} functions in {:?}, cache hits {}",
            out.value, s.functions_translated, s.translate_time, s.cache_hits
        );
    }

    // launch 2: warm — every translation loads from offline storage
    {
        let mut mgr = ExecutionManager::new(module(), TargetIsa::X86);
        mgr.set_storage(Box::new(DirStorage::new(&cache_dir)), "cached_app");
        let out = mgr.run("main", &[]).expect("runs");
        let s = mgr.stats();
        println!(
            "launch 2: result={} | JIT translated {} functions, cache hits {}",
            out.value, s.functions_translated, s.cache_hits
        );
        assert_eq!(s.functions_translated, 0, "everything came from the cache");
    }

    // offline translation during "idle time" for a different program
    {
        let other = llva::minic::compile(
            "int helper(int x) { return x + 1; } int main() { return helper(41); }",
            "idle_app",
            TargetConfig::default(),
        )
        .expect("compiles");
        let mut mgr = ExecutionManager::new(other, TargetIsa::X86);
        mgr.set_storage(Box::new(DirStorage::new(&cache_dir)), "idle_app");
        mgr.translate_all().expect("offline translation");
        println!(
            "\nidle-time: translated {} functions offline without executing",
            mgr.stats().functions_translated
        );
    }

    // stale-cache rejection: a modified program must not reuse old code
    {
        let modified = llva::minic::compile(
            PROGRAM.replace("work(100)", "work(10)").as_str(),
            "cached_app",
            TargetConfig::default(),
        )
        .expect("compiles");
        let mut mgr = ExecutionManager::new(modified, TargetIsa::X86);
        mgr.set_storage(Box::new(DirStorage::new(&cache_dir)), "cached_app");
        let out = mgr.run("main", &[]).expect("runs");
        let s = mgr.stats();
        println!(
            "\nmodified program: result={} | timestamps invalidated the cache \
             (translated {}, hits {})",
            out.value, s.functions_translated, s.cache_hits
        );
        assert!(s.functions_translated > 0);
    }

    let storage = DirStorage::new(&cache_dir);
    println!(
        "\ncache on disk: {} bytes across caches",
        storage.cache_size("cached_app").unwrap_or(0) + storage.cache_size("idle_app").unwrap_or(0)
    );
    let _ = std::fs::remove_dir_all(&cache_dir);
}
