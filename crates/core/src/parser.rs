//! Textual LLVA assembly parser.
//!
//! Parses the syntax produced by [`printer`](crate::printer) (and written
//! by hand in tests and examples) back into a [`Module`]. The parser is a
//! hand-written lexer + recursive-descent parser, two-pass at both the
//! module level (signatures before bodies, so calls may reference
//! later-defined functions) and the function level (instruction results
//! before operands, so `phi` and cross-block forward references resolve).
//!
//! # Examples
//!
//! ```
//! let src = r#"
//! int %double_it(int %x) {
//! entry:
//!     %y = add int %x, %x
//!     ret int %y
//! }
//! "#;
//! let m = llva_core::parser::parse_module(src).expect("parses");
//! assert!(m.function_by_name("double_it").is_some());
//! ```

use crate::function::{BlockId, Linkage};
use crate::instruction::{Instruction, Opcode};
use crate::layout::{Endianness, PointerSize, TargetConfig};
use crate::module::{FuncId, Initializer, Module};
use crate::types::{TypeId, TypeKind};
use crate::value::{Constant, ValueId};
use std::collections::HashMap;
use std::fmt;

/// A parse failure with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

type Result<T> = std::result::Result<T, ParseError>;

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Local(String),  // %name
    Global(String), // @name
    Int(i128),
    FloatLit(f64),
    HexBits(u64),
    Bytes(Vec<u8>), // c"..."
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Equals,
    Colon,
    Star,
    Ellipsis,
    Eof,
}

#[derive(Debug, Clone)]
struct SpannedTok {
    tok: Tok,
    line: usize,
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '$')
}

fn lex(src: &str) -> Result<Vec<SpannedTok>> {
    let mut toks = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line = 1usize;
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            ';' => {
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '%' | '@' => {
                let sigil = c;
                chars.next();
                let mut name = String::new();
                while let Some(&c) = chars.peek() {
                    if is_ident_char(c) {
                        name.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if name.is_empty() {
                    return Err(ParseError {
                        line,
                        message: format!("expected a name after '{sigil}'"),
                    });
                }
                toks.push(SpannedTok {
                    tok: if sigil == '%' {
                        Tok::Local(name)
                    } else {
                        Tok::Global(name)
                    },
                    line,
                });
            }
            'c' => {
                // maybe c"..." bytes literal, else identifier
                let mut clone = chars.clone();
                clone.next();
                if clone.peek() == Some(&'"') {
                    chars.next(); // c
                    chars.next(); // "
                    let mut bytes = Vec::new();
                    loop {
                        match chars.next() {
                            Some('"') => break,
                            Some('\\') => {
                                let h1 = chars.next().ok_or_else(|| ParseError {
                                    line,
                                    message: "unterminated escape".into(),
                                })?;
                                let h2 = chars.next().ok_or_else(|| ParseError {
                                    line,
                                    message: "unterminated escape".into(),
                                })?;
                                let hex: String = [h1, h2].iter().collect();
                                let b = u8::from_str_radix(&hex, 16).map_err(|_| ParseError {
                                    line,
                                    message: format!("bad escape \\{hex}"),
                                })?;
                                bytes.push(b);
                            }
                            Some(c) => bytes.push(c as u8),
                            None => {
                                return Err(ParseError {
                                    line,
                                    message: "unterminated bytes literal".into(),
                                })
                            }
                        }
                    }
                    toks.push(SpannedTok {
                        tok: Tok::Bytes(bytes),
                        line,
                    });
                } else {
                    lex_ident(&mut chars, &mut toks, line);
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                lex_ident(&mut chars, &mut toks, line);
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut text = String::new();
                text.push(c);
                chars.next();
                while let Some(&c) = chars.peek() {
                    let take = c.is_ascii_alphanumeric()
                        || c == '.'
                        || ((c == '+' || c == '-') && text.ends_with('e'));
                    if take {
                        text.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let tok = if let Some(hex) =
                    text.strip_prefix("0x").or_else(|| text.strip_prefix("0X"))
                {
                    Tok::HexBits(u64::from_str_radix(hex, 16).map_err(|_| ParseError {
                        line,
                        message: format!("bad hex constant {text}"),
                    })?)
                } else if text.contains('.') || text.contains('e') || text.contains('E') {
                    Tok::FloatLit(text.parse().map_err(|_| ParseError {
                        line,
                        message: format!("bad float constant {text}"),
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|_| ParseError {
                        line,
                        message: format!("bad integer constant {text}"),
                    })?)
                };
                toks.push(SpannedTok { tok, line });
            }
            '(' => push1(&mut chars, &mut toks, Tok::LParen, line),
            ')' => push1(&mut chars, &mut toks, Tok::RParen, line),
            '[' => push1(&mut chars, &mut toks, Tok::LBracket, line),
            ']' => push1(&mut chars, &mut toks, Tok::RBracket, line),
            '{' => push1(&mut chars, &mut toks, Tok::LBrace, line),
            '}' => push1(&mut chars, &mut toks, Tok::RBrace, line),
            ',' => push1(&mut chars, &mut toks, Tok::Comma, line),
            '=' => push1(&mut chars, &mut toks, Tok::Equals, line),
            ':' => push1(&mut chars, &mut toks, Tok::Colon, line),
            '*' => push1(&mut chars, &mut toks, Tok::Star, line),
            '.' => {
                chars.next();
                if chars.peek() == Some(&'.') {
                    chars.next();
                    if chars.next() != Some('.') {
                        return Err(ParseError {
                            line,
                            message: "expected '...'".into(),
                        });
                    }
                    toks.push(SpannedTok {
                        tok: Tok::Ellipsis,
                        line,
                    });
                } else {
                    return Err(ParseError {
                        line,
                        message: "unexpected '.'".into(),
                    });
                }
            }
            other => {
                return Err(ParseError {
                    line,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    toks.push(SpannedTok {
        tok: Tok::Eof,
        line,
    });
    Ok(toks)
}

fn lex_ident(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    toks: &mut Vec<SpannedTok>,
    line: usize,
) {
    let mut name = String::new();
    while let Some(&c) = chars.peek() {
        if is_ident_char(c) {
            name.push(c);
            chars.next();
        } else {
            break;
        }
    }
    toks.push(SpannedTok {
        tok: Tok::Ident(name),
        line,
    });
}

fn push1(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    toks: &mut Vec<SpannedTok>,
    tok: Tok,
    line: usize,
) {
    chars.next();
    toks.push(SpannedTok { tok, line });
}

// --------------------------------------------------------------- parser --

/// Parses a full module from LLVA assembly text.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax or resolution
/// problem encountered.
pub fn parse_module(src: &str) -> Result<Module> {
    let toks = lex(src)?;
    let mut module = Module::new("parsed", TargetConfig::default());

    // Pass 1: targets, types, globals, function signatures.
    {
        let mut p = Parser::new(&toks, &mut module);
        p.pass1()?;
    }
    // Pass 2: function bodies.
    {
        let mut p = Parser::new(&toks, &mut module);
        p.pass2()?;
    }
    Ok(module)
}

struct Parser<'a> {
    toks: &'a [SpannedTok],
    pos: usize,
    module: &'a mut Module,
}

/// Unresolved operand captured during body parsing.
#[derive(Debug, Clone)]
enum PVal {
    Local(String),
    Global(String),
    Int(i128),
    Float(f64),
    HexBits(u64),
    Bool(bool),
    Null,
    Undef,
}

#[derive(Debug, Clone)]
struct POperand {
    ty: TypeId,
    val: PVal,
}

#[derive(Debug, Clone)]
struct PInst {
    line: usize,
    result: Option<String>,
    opcode: Opcode,
    /// Result type (resolved where syntax states it; for geps it is
    /// computed during build).
    ty: TypeId,
    operands: Vec<POperand>,
    blocks: Vec<String>,
    exc_override: Option<bool>,
}

impl<'a> Parser<'a> {
    fn new(toks: &'a [SpannedTok], module: &'a mut Module) -> Parser<'a> {
        Parser {
            toks,
            pos: 0,
            module,
        }
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(ParseError {
            line: self.line(),
            message: message.into(),
        })
    }

    fn expect(&mut self, tok: Tok) -> Result<()> {
        if *self.peek() == tok {
            self.next();
            Ok(())
        } else {
            self.err(format!("expected {tok:?}, found {:?}", self.peek()))
        }
    }

    fn expect_ident(&mut self, word: &str) -> Result<()> {
        if self.eat_ident(word) {
            Ok(())
        } else {
            self.err(format!("expected '{word}', found {:?}", self.peek()))
        }
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(w) if w == word) {
            self.next();
            true
        } else {
            false
        }
    }

    fn eat(&mut self, tok: Tok) -> bool {
        if *self.peek() == tok {
            self.next();
            true
        } else {
            false
        }
    }

    // ---- types ----

    fn parse_type(&mut self) -> Result<TypeId> {
        let mut base = match self.next() {
            Tok::Ident(name) => match name.as_str() {
                "void" => self.module.types_mut().void(),
                "bool" => self.module.types_mut().bool(),
                "ubyte" => self.module.types_mut().ubyte(),
                "sbyte" => self.module.types_mut().sbyte(),
                "ushort" => self.module.types_mut().ushort(),
                "short" => self.module.types_mut().short(),
                "uint" => self.module.types_mut().uint(),
                "int" => self.module.types_mut().int(),
                "ulong" => self.module.types_mut().ulong(),
                "long" => self.module.types_mut().long(),
                "float" => self.module.types_mut().float(),
                "double" => self.module.types_mut().double(),
                "label" => self.module.types_mut().label(),
                other => {
                    self.pos -= 1;
                    return self.err(format!("unknown type '{other}'"));
                }
            },
            Tok::Local(name) => self.module.types_mut().named_struct(&name),
            Tok::LBracket => {
                // [ N x T ]
                let len = match self.next() {
                    Tok::Int(n) if n >= 0 => n as u64,
                    _ => return self.err("expected array length"),
                };
                self.expect_ident("x")?;
                let elem = self.parse_type()?;
                self.expect(Tok::RBracket)?;
                self.module.types_mut().array_of(elem, len)
            }
            Tok::LBrace => {
                let mut fields = Vec::new();
                if *self.peek() != Tok::RBrace {
                    loop {
                        fields.push(self.parse_type()?);
                        if !self.eat(Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(Tok::RBrace)?;
                self.module.types_mut().literal_struct(fields)
            }
            _ => {
                self.pos -= 1;
                return self.err(format!("expected a type, found {:?}", self.peek()));
            }
        };
        // function type suffix: (params...)
        if *self.peek() == Tok::LParen {
            self.next();
            let mut params = Vec::new();
            let mut varargs = false;
            if *self.peek() != Tok::RParen {
                loop {
                    if self.eat(Tok::Ellipsis) {
                        varargs = true;
                        break;
                    }
                    params.push(self.parse_type()?);
                    if !self.eat(Tok::Comma) {
                        break;
                    }
                }
            }
            self.expect(Tok::RParen)?;
            base = self.module.types_mut().function(base, params, varargs);
        }
        // pointer suffixes
        while self.eat(Tok::Star) {
            base = self.module.types_mut().pointer_to(base);
        }
        Ok(base)
    }

    // ---- pass 1 ----

    fn pass1(&mut self) -> Result<()> {
        let mut target = self.module.target();
        loop {
            match self.peek().clone() {
                Tok::Eof => break,
                Tok::Ident(w) if w == "target" => {
                    self.next();
                    match self.next() {
                        Tok::Ident(k) if k == "pointersize" => {
                            self.expect(Tok::Equals)?;
                            match self.next() {
                                Tok::Int(32) => target.pointer_size = PointerSize::Bits32,
                                Tok::Int(64) => target.pointer_size = PointerSize::Bits64,
                                _ => return self.err("pointersize must be 32 or 64"),
                            }
                        }
                        Tok::Ident(k) if k == "endian" => {
                            self.expect(Tok::Equals)?;
                            match self.next() {
                                Tok::Ident(e) if e == "little" => {
                                    target.endianness = Endianness::Little
                                }
                                Tok::Ident(e) if e == "big" => target.endianness = Endianness::Big,
                                _ => return self.err("endian must be little or big"),
                            }
                        }
                        _ => return self.err("unknown target directive"),
                    }
                }
                Tok::Local(name) if *self.peek2() == Tok::Equals => {
                    // %Name = type ...
                    self.next();
                    self.expect(Tok::Equals)?;
                    self.expect_ident("type")?;
                    if self.eat_ident("opaque") {
                        self.module.types_mut().named_struct(&name);
                    } else {
                        self.expect(Tok::LBrace)?;
                        let mut fields = Vec::new();
                        if *self.peek() != Tok::RBrace {
                            loop {
                                fields.push(self.parse_type()?);
                                if !self.eat(Tok::Comma) {
                                    break;
                                }
                            }
                        }
                        self.expect(Tok::RBrace)?;
                        self.module.types_mut().set_struct_body(&name, fields);
                    }
                }
                Tok::Global(name) => {
                    self.next();
                    self.expect(Tok::Equals)?;
                    let internal = self.eat_ident("internal");
                    let is_const = if self.eat_ident("constant") {
                        true
                    } else {
                        self.expect_ident("global")?;
                        false
                    };
                    let ty = self.parse_type()?;
                    let init = self.parse_initializer(ty)?;
                    let g = self.module.add_global(&name, ty, init, is_const);
                    if internal {
                        self.module.global_mut(g).set_linkage(Linkage::Internal);
                    }
                }
                Tok::Ident(w) if w == "declare" => {
                    self.next();
                    let ret = self.parse_type()?;
                    let name = match self.next() {
                        Tok::Local(n) => n,
                        _ => return self.err("expected function name"),
                    };
                    self.expect(Tok::LParen)?;
                    let mut params = Vec::new();
                    if *self.peek() != Tok::RParen {
                        loop {
                            params.push(self.parse_type()?);
                            if matches!(self.peek(), Tok::Local(_)) {
                                self.next();
                            }
                            if !self.eat(Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen)?;
                    self.module.add_function(&name, ret, params);
                }
                _ => {
                    // function definition: [internal] type %name (params) { ... }
                    let internal = self.eat_ident("internal");
                    let ret = self.parse_type()?;
                    let name = match self.next() {
                        Tok::Local(n) => n,
                        _ => return self.err("expected function name"),
                    };
                    self.expect(Tok::LParen)?;
                    let mut params = Vec::new();
                    if *self.peek() != Tok::RParen {
                        loop {
                            params.push(self.parse_type()?);
                            if matches!(self.peek(), Tok::Local(_)) {
                                self.next();
                            }
                            if !self.eat(Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen)?;
                    let f = self.module.add_function(&name, ret, params);
                    if internal {
                        self.module.function_mut(f).set_linkage(Linkage::Internal);
                    }
                    // skip balanced braces
                    self.expect(Tok::LBrace)?;
                    let mut depth = 1usize;
                    while depth > 0 {
                        match self.next() {
                            Tok::LBrace => depth += 1,
                            Tok::RBrace => depth -= 1,
                            Tok::Eof => return self.err("unterminated function body"),
                            _ => {}
                        }
                    }
                }
            }
        }
        self.module.set_target(target);
        Ok(())
    }

    fn parse_initializer(&mut self, ty: TypeId) -> Result<Initializer> {
        if self.eat_ident("zeroinitializer") {
            return Ok(Initializer::Zero);
        }
        match self.peek().clone() {
            Tok::Bytes(bytes) => {
                self.next();
                Ok(Initializer::Bytes(bytes))
            }
            Tok::LBracket => {
                self.next();
                let elem = match self.module.types().kind(ty) {
                    TypeKind::Array { elem, .. } => *elem,
                    _ => return self.err("array initializer for non-array type"),
                };
                let mut items = Vec::new();
                if *self.peek() != Tok::RBracket {
                    loop {
                        items.push(self.parse_initializer(elem)?);
                        if !self.eat(Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(Tok::RBracket)?;
                Ok(Initializer::Array(items))
            }
            Tok::LBrace => {
                self.next();
                let fields = self
                    .module
                    .types()
                    .struct_fields(ty)
                    .map(<[TypeId]>::to_vec)
                    .ok_or_else(|| ParseError {
                        line: self.line(),
                        message: "struct initializer for non-struct type".into(),
                    })?;
                let mut items = Vec::new();
                for (i, &f) in fields.iter().enumerate() {
                    items.push(self.parse_initializer(f)?);
                    if i + 1 < fields.len() {
                        self.expect(Tok::Comma)?;
                    }
                }
                self.expect(Tok::RBrace)?;
                Ok(Initializer::Struct(items))
            }
            _ => {
                let c = self.parse_scalar_constant(ty)?;
                Ok(Initializer::Scalar(c))
            }
        }
    }

    fn parse_scalar_constant(&mut self, ty: TypeId) -> Result<Constant> {
        let pv = self.parse_pval()?;
        self.resolve_const(ty, &pv)
    }

    fn parse_pval(&mut self) -> Result<PVal> {
        let line = self.line();
        Ok(match self.next() {
            Tok::Int(n) => PVal::Int(n),
            Tok::FloatLit(f) => PVal::Float(f),
            Tok::HexBits(b) => PVal::HexBits(b),
            Tok::Local(n) => PVal::Local(n),
            Tok::Global(n) => PVal::Global(n),
            Tok::Ident(w) if w == "true" => PVal::Bool(true),
            Tok::Ident(w) if w == "false" => PVal::Bool(false),
            Tok::Ident(w) if w == "null" => PVal::Null,
            Tok::Ident(w) if w == "undef" => PVal::Undef,
            other => {
                return Err(ParseError {
                    line,
                    message: format!("expected an operand, found {other:?}"),
                })
            }
        })
    }

    fn resolve_const(&mut self, ty: TypeId, pv: &PVal) -> Result<Constant> {
        let types = self.module.types();
        Ok(match pv {
            PVal::Bool(b) => Constant::Bool(*b),
            PVal::Int(n) => {
                if matches!(types.kind(ty), TypeKind::Bool) {
                    Constant::Bool(*n != 0)
                } else if types.is_float(ty) {
                    let bits = match types.kind(ty) {
                        TypeKind::Float => (*n as f32).to_bits() as u64,
                        _ => (*n as f64).to_bits(),
                    };
                    Constant::Float { ty, bits }
                } else {
                    let w = types.int_bits(ty).ok_or_else(|| ParseError {
                        line: self.line(),
                        message: "integer constant for non-integer type".into(),
                    })?;
                    let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
                    Constant::Int {
                        ty,
                        bits: (*n as u64) & mask,
                    }
                }
            }
            PVal::Float(f) => {
                let bits = match types.kind(ty) {
                    TypeKind::Float => (*f as f32).to_bits() as u64,
                    TypeKind::Double => f.to_bits(),
                    _ => {
                        return self.err("float constant for non-float type");
                    }
                };
                Constant::Float { ty, bits }
            }
            PVal::HexBits(b) => {
                if types.is_float(ty) {
                    Constant::Float { ty, bits: *b }
                } else if types.is_integer(ty) {
                    Constant::Int { ty, bits: *b }
                } else {
                    return self.err("hex constant for non-numeric type");
                }
            }
            PVal::Null => Constant::Null(ty),
            PVal::Undef => Constant::Undef(ty),
            PVal::Global(name) => {
                let g = self.module.global_by_name(name).ok_or_else(|| ParseError {
                    line: self.line(),
                    message: format!("unknown global @{name}"),
                })?;
                Constant::GlobalAddr { global: g, ty }
            }
            PVal::Local(name) => {
                // in constant position a %name must be a function reference
                let f = self
                    .module
                    .function_by_name(name)
                    .ok_or_else(|| ParseError {
                        line: self.line(),
                        message: format!("unknown function %{name} in constant position"),
                    })?;
                Constant::FunctionAddr { func: f, ty }
            }
        })
    }

    // ---- pass 2 ----

    fn pass2(&mut self) -> Result<()> {
        loop {
            match self.peek().clone() {
                Tok::Eof => break,
                Tok::Ident(w) if w == "target" => {
                    self.next();
                    self.next();
                    self.expect(Tok::Equals)?;
                    self.next();
                }
                Tok::Local(_) if *self.peek2() == Tok::Equals => {
                    // type definition — skip
                    self.next();
                    self.expect(Tok::Equals)?;
                    self.expect_ident("type")?;
                    if !self.eat_ident("opaque") {
                        let mut depth = 0usize;
                        loop {
                            match self.next() {
                                Tok::LBrace => depth += 1,
                                Tok::RBrace => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                Tok::Eof => return self.err("unterminated type"),
                                _ => {}
                            }
                        }
                    }
                }
                Tok::Global(_) => {
                    // global — reparse and discard
                    self.next();
                    self.expect(Tok::Equals)?;
                    self.eat_ident("internal");
                    if !self.eat_ident("constant") {
                        self.expect_ident("global")?;
                    }
                    let ty = self.parse_type()?;
                    let _ = self.parse_initializer(ty)?;
                }
                Tok::Ident(w) if w == "declare" => {
                    self.next();
                    let _ = self.parse_type()?;
                    self.next(); // name
                    self.expect(Tok::LParen)?;
                    let mut depth = 1usize;
                    while depth > 0 {
                        match self.next() {
                            Tok::LParen => depth += 1,
                            Tok::RParen => depth -= 1,
                            Tok::Eof => return self.err("unterminated declare"),
                            _ => {}
                        }
                    }
                }
                _ => self.parse_function_body()?,
            }
        }
        Ok(())
    }

    fn parse_function_body(&mut self) -> Result<()> {
        self.eat_ident("internal");
        let _ret = self.parse_type()?;
        let name = match self.next() {
            Tok::Local(n) => n,
            _ => return self.err("expected function name"),
        };
        let func_id = self
            .module
            .function_by_name(&name)
            .ok_or_else(|| ParseError {
                line: self.line(),
                message: format!("function %{name} vanished between passes"),
            })?;
        self.expect(Tok::LParen)?;
        let mut param_names = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                let _ = self.parse_type()?;
                match self.peek().clone() {
                    Tok::Local(n) => {
                        self.next();
                        param_names.push(Some(n));
                    }
                    _ => param_names.push(None),
                }
                if !self.eat(Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        self.expect(Tok::LBrace)?;

        // Collect blocks and raw instructions.
        let mut pinsts: Vec<(String, Vec<PInst>)> = Vec::new();
        loop {
            match self.peek().clone() {
                Tok::RBrace => {
                    self.next();
                    break;
                }
                Tok::Ident(label) if *self.peek2() == Tok::Colon => {
                    self.next();
                    self.expect(Tok::Colon)?;
                    pinsts.push((label, Vec::new()));
                }
                Tok::Eof => return self.err("unterminated function body"),
                _ => {
                    let inst = self.parse_pinst()?;
                    match pinsts.last_mut() {
                        Some((_, v)) => v.push(inst),
                        None => return self.err("instruction before the first block label"),
                    }
                }
            }
        }

        self.build_function(func_id, &param_names, pinsts)
    }

    fn parse_pinst(&mut self) -> Result<PInst> {
        let line = self.line();
        // optional "%name ="
        let result = if matches!(self.peek(), Tok::Local(_)) && *self.peek2() == Tok::Equals {
            let Tok::Local(n) = self.next() else {
                unreachable!()
            };
            self.expect(Tok::Equals)?;
            Some(n)
        } else {
            None
        };
        let mnemonic = match self.next() {
            Tok::Ident(m) => m,
            _ => return self.err("expected an instruction mnemonic"),
        };
        let opcode = Opcode::from_mnemonic(&mnemonic).ok_or_else(|| ParseError {
            line,
            message: format!("unknown instruction '{mnemonic}'"),
        })?;
        // optional [exc] / [noexc]
        let mut exc_override = None;
        if *self.peek() == Tok::LBracket {
            if let Tok::Ident(attr) = self.peek2().clone() {
                if attr == "exc" || attr == "noexc" {
                    self.next();
                    self.next();
                    self.expect(Tok::RBracket)?;
                    exc_override = Some(attr == "exc");
                }
            }
        }

        let void = self.module.types_mut().void();
        let boolt = self.module.types_mut().bool();
        let mut inst = PInst {
            line,
            result,
            opcode,
            ty: void,
            operands: Vec::new(),
            blocks: Vec::new(),
            exc_override,
        };

        match opcode {
            _ if opcode.is_binary() || opcode.is_comparison() => {
                let ty = self.parse_type()?;
                let a = self.parse_pval()?;
                self.expect(Tok::Comma)?;
                let b = self.parse_pval()?;
                inst.operands.push(POperand { ty, val: a });
                inst.operands.push(POperand { ty, val: b });
                inst.ty = if opcode.is_comparison() { boolt } else { ty };
            }
            Opcode::Ret => {
                if self.eat_ident("void") {
                    // no operand
                } else {
                    let ty = self.parse_type()?;
                    let v = self.parse_pval()?;
                    inst.operands.push(POperand { ty, val: v });
                }
            }
            Opcode::Br => {
                if self.eat_ident("label") {
                    inst.blocks.push(self.parse_label_name()?);
                } else {
                    self.expect_ident("bool")?;
                    let c = self.parse_pval()?;
                    inst.operands.push(POperand { ty: boolt, val: c });
                    self.expect(Tok::Comma)?;
                    self.expect_ident("label")?;
                    inst.blocks.push(self.parse_label_name()?);
                    self.expect(Tok::Comma)?;
                    self.expect_ident("label")?;
                    inst.blocks.push(self.parse_label_name()?);
                }
            }
            Opcode::Mbr => {
                let ty = self.parse_type()?;
                let disc = self.parse_pval()?;
                inst.operands.push(POperand { ty, val: disc });
                self.expect(Tok::Comma)?;
                self.expect_ident("label")?;
                inst.blocks.push(self.parse_label_name()?);
                while self.eat(Tok::Comma) {
                    self.expect(Tok::LBracket)?;
                    let cty = self.parse_type()?;
                    let c = self.parse_pval()?;
                    inst.operands.push(POperand { ty: cty, val: c });
                    self.expect(Tok::Comma)?;
                    self.expect_ident("label")?;
                    inst.blocks.push(self.parse_label_name()?);
                    self.expect(Tok::RBracket)?;
                }
            }
            Opcode::Invoke | Opcode::Call => {
                let ret = self.parse_type()?;
                inst.ty = ret;
                let callee = self.parse_pval()?;
                inst.operands.push(POperand {
                    ty: void,
                    val: callee,
                });
                self.expect(Tok::LParen)?;
                if *self.peek() != Tok::RParen {
                    loop {
                        let aty = self.parse_type()?;
                        let a = self.parse_pval()?;
                        inst.operands.push(POperand { ty: aty, val: a });
                        if !self.eat(Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(Tok::RParen)?;
                if opcode == Opcode::Invoke {
                    self.expect_ident("to")?;
                    self.expect_ident("label")?;
                    inst.blocks.push(self.parse_label_name()?);
                    self.expect_ident("unwind")?;
                    self.expect_ident("label")?;
                    inst.blocks.push(self.parse_label_name()?);
                }
            }
            Opcode::Unwind => {}
            Opcode::Load => {
                let pty = self.parse_type()?;
                let p = self.parse_pval()?;
                inst.operands.push(POperand { ty: pty, val: p });
                inst.ty = self.module.types().pointee(pty).ok_or_else(|| ParseError {
                    line,
                    message: "load operand is not a pointer".into(),
                })?;
            }
            Opcode::Store => {
                let vty = self.parse_type()?;
                let v = self.parse_pval()?;
                self.expect(Tok::Comma)?;
                let pty = self.parse_type()?;
                let p = self.parse_pval()?;
                inst.operands.push(POperand { ty: vty, val: v });
                inst.operands.push(POperand { ty: pty, val: p });
            }
            Opcode::GetElementPtr => {
                let pty = self.parse_type()?;
                let p = self.parse_pval()?;
                inst.operands.push(POperand { ty: pty, val: p });
                while self.eat(Tok::Comma) {
                    let ity = self.parse_type()?;
                    let i = self.parse_pval()?;
                    inst.operands.push(POperand { ty: ity, val: i });
                }
                // result type computed during build
            }
            Opcode::Alloca => {
                let pointee = self.parse_type()?;
                inst.ty = self.module.types_mut().pointer_to(pointee);
                if self.eat(Tok::Comma) {
                    let cty = self.parse_type()?;
                    let c = self.parse_pval()?;
                    inst.operands.push(POperand { ty: cty, val: c });
                }
            }
            Opcode::Cast => {
                let fty = self.parse_type()?;
                let v = self.parse_pval()?;
                inst.operands.push(POperand { ty: fty, val: v });
                self.expect_ident("to")?;
                inst.ty = self.parse_type()?;
            }
            Opcode::Phi => {
                let ty = self.parse_type()?;
                inst.ty = ty;
                loop {
                    self.expect(Tok::LBracket)?;
                    let v = self.parse_pval()?;
                    self.expect(Tok::Comma)?;
                    let b = self.parse_label_name()?;
                    self.expect(Tok::RBracket)?;
                    inst.operands.push(POperand { ty, val: v });
                    inst.blocks.push(b);
                    if !self.eat(Tok::Comma) {
                        break;
                    }
                }
            }
            _ => unreachable!("all opcodes covered"),
        }
        Ok(inst)
    }

    fn parse_label_name(&mut self) -> Result<String> {
        match self.next() {
            Tok::Local(n) => Ok(n),
            other => Err(ParseError {
                line: self.line(),
                message: format!("expected %label, found {other:?}"),
            }),
        }
    }

    fn build_function(
        &mut self,
        func_id: FuncId,
        param_names: &[Option<String>],
        blocks: Vec<(String, Vec<PInst>)>,
    ) -> Result<()> {
        let void = self.module.types_mut().void();

        // Name parameters.
        {
            let func = self.module.function_mut(func_id);
            let args = func.args().to_vec();
            for (a, n) in args.iter().zip(param_names) {
                if let Some(n) = n {
                    func.set_value_name(*a, n.clone());
                }
            }
        }

        // Create blocks and the locals map.
        let mut block_ids: HashMap<String, BlockId> = HashMap::new();
        for (name, _) in &blocks {
            let b = self.module.function_mut(func_id).add_block(name.clone());
            if block_ids.insert(name.clone(), b).is_some() {
                return Err(ParseError {
                    line: 0,
                    message: format!("duplicate block label '{name}'"),
                });
            }
        }

        let mut locals: HashMap<String, ValueId> = HashMap::new();
        {
            let func = self.module.function(func_id);
            for (a, n) in func.args().to_vec().iter().zip(param_names) {
                if let Some(n) = n {
                    locals.insert(n.clone(), *a);
                }
            }
        }

        // Pass A: create instructions with empty operands; bind results.
        let mut created: Vec<(crate::instruction::InstId, PInst)> = Vec::new();
        for (bname, insts) in &blocks {
            let bid = block_ids[bname];
            for pinst in insts {
                let mut ty = pinst.ty;
                if pinst.opcode == Opcode::GetElementPtr {
                    ty = self.gep_ty_from_past(pinst)?;
                }
                let mut raw = Instruction::new(pinst.opcode, ty, vec![], vec![]);
                if let Some(exc) = pinst.exc_override {
                    raw.set_exceptions_enabled(exc);
                }
                let (iid, result) = self.module.function_mut(func_id).append_inst(bid, raw, void);
                if let (Some(rname), Some(rv)) = (&pinst.result, result) {
                    self.module
                        .function_mut(func_id)
                        .set_value_name(rv, rname.clone());
                    locals.insert(rname.clone(), rv);
                }
                created.push((iid, pinst.clone()));
            }
        }

        // Pass B: resolve operands.
        for (iid, pinst) in created {
            let mut operands = Vec::with_capacity(pinst.operands.len());
            for po in &pinst.operands {
                let v = self.resolve_operand(func_id, &locals, po, pinst.line)?;
                operands.push(v);
            }
            let mut bops = Vec::with_capacity(pinst.blocks.len());
            for bn in &pinst.blocks {
                bops.push(*block_ids.get(bn).ok_or_else(|| ParseError {
                    line: pinst.line,
                    message: format!("unknown block label '{bn}'"),
                })?);
            }
            let func = self.module.function_mut(func_id);
            func.inst_mut(iid).set_operands(operands);
            func.inst_mut(iid).set_block_operands(bops);
        }
        Ok(())
    }

    /// Computes a GEP result type from parsed operand types + constant
    /// indices (before value resolution).
    fn gep_ty_from_past(&mut self, pinst: &PInst) -> Result<TypeId> {
        let base = pinst.operands[0].ty;
        let mut cur = self
            .module
            .types()
            .pointee(base)
            .ok_or_else(|| ParseError {
                line: pinst.line,
                message: "getelementptr base is not a pointer".into(),
            })?;
        for po in &pinst.operands[2..] {
            cur = match self.module.types().kind(cur).clone() {
                TypeKind::Array { elem, .. } => elem,
                TypeKind::LiteralStruct(_) | TypeKind::Struct(_) => {
                    let PVal::Int(field) = po.val else {
                        return Err(ParseError {
                            line: pinst.line,
                            message: "struct field index must be a literal constant".into(),
                        });
                    };
                    let fields = self
                        .module
                        .types()
                        .struct_fields(cur)
                        .ok_or_else(|| ParseError {
                            line: pinst.line,
                            message: "getelementptr into opaque struct".into(),
                        })?;
                    *fields.get(field as usize).ok_or_else(|| ParseError {
                        line: pinst.line,
                        message: format!("field index {field} out of range"),
                    })?
                }
                _ => {
                    return Err(ParseError {
                        line: pinst.line,
                        message: "getelementptr walks into non-aggregate".into(),
                    })
                }
            };
        }
        Ok(self.module.types_mut().pointer_to(cur))
    }

    fn resolve_operand(
        &mut self,
        func_id: FuncId,
        locals: &HashMap<String, ValueId>,
        po: &POperand,
        line: usize,
    ) -> Result<ValueId> {
        // %name: local first, then function reference.
        if let PVal::Local(name) = &po.val {
            if let Some(&v) = locals.get(name) {
                return Ok(v);
            }
            if let Some(f) = self.module.function_by_name(name) {
                let fty = self.module.function(f).type_id();
                let pty = self.module.types_mut().pointer_to(fty);
                return Ok(self
                    .module
                    .function_mut(func_id)
                    .constant(Constant::FunctionAddr { func: f, ty: pty }));
            }
            return Err(ParseError {
                line,
                message: format!("unknown value %{name}"),
            });
        }
        let c = self.resolve_const(po.ty, &po.val).map_err(|mut e| {
            e.line = line;
            e
        })?;
        // Fix up global-address constant types (pointer to value type).
        let c = match c {
            Constant::GlobalAddr { global, .. } => {
                let vt = self.module.global(global).value_type();
                let pt = self.module.types_mut().pointer_to(vt);
                Constant::GlobalAddr { global, ty: pt }
            }
            other => other,
        };
        Ok(self.module.function_mut(func_id).constant(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_module;
    use crate::verifier::verify_module;

    #[test]
    fn parse_simple_function() {
        let src = r#"
int %add(int %x, int %y) {
entry:
    %s = add int %x, %y
    ret int %s
}
"#;
        let m = parse_module(src).expect("parses");
        let f = m.function_by_name("add").expect("exists");
        assert_eq!(m.function(f).num_insts(), 2);
        verify_module(&m).expect("verifies");
    }

    #[test]
    fn parse_figure_2() {
        // The paper's Figure 2(b), modulo whitespace.
        let src = r#"
%QT = type { double, [4 x %QT*] }

void %Sum3rdChildren(%QT* %T, double* %Result) {
entry:
    %V = alloca double
    %tmp.0 = seteq %QT* %T, null
    br bool %tmp.0, label %endif, label %else
else:
    %tmp.1 = getelementptr %QT* %T, long 0, ubyte 1, long 3
    %Child3 = load %QT** %tmp.1
    call void %Sum3rdChildren(%QT* %Child3, double* %V)
    %tmp.2 = load double* %V
    %tmp.3 = getelementptr %QT* %T, long 0, ubyte 0
    %tmp.4 = load double* %tmp.3
    %Ret.0 = add double %tmp.2, %tmp.4
    br label %endif
endif:
    %Ret.1 = phi double [ %Ret.0, %else ], [ 0.0, %entry ]
    store double %Ret.1, double* %Result
    ret void
}
"#;
        let m = parse_module(src).expect("parses");
        verify_module(&m).expect("verifies");
        let f = m.function_by_name("Sum3rdChildren").expect("exists");
        assert_eq!(m.function(f).num_blocks(), 3);
        assert_eq!(m.function(f).num_insts(), 14);
    }

    #[test]
    fn parse_globals_and_targets() {
        let src = r#"
target pointersize = 32
target endian = little

@counter = global int 0
@msg = internal constant [3 x sbyte] c"hi\00"

int %main() {
entry:
    %v = load int* @counter
    ret int %v
}
"#;
        let m = parse_module(src).expect("parses");
        assert_eq!(m.target().pointer_size, PointerSize::Bits32);
        assert_eq!(m.target().endianness, Endianness::Little);
        assert!(m.global_by_name("counter").is_some());
        let msg = m.global_by_name("msg").expect("msg");
        assert!(m.global(msg).is_const());
        assert_eq!(m.global(msg).linkage(), Linkage::Internal);
        assert!(matches!(m.global(msg).init(), Initializer::Bytes(b) if b == b"hi\0"));
        verify_module(&m).expect("verifies");
    }

    #[test]
    fn round_trip_print_parse_print() {
        let src = r#"
int %fib(int %n) {
entry:
    %c = setlt int %n, 2
    br bool %c, label %base, label %rec
base:
    ret int %n
rec:
    %n1 = sub int %n, 1
    %a = call int %fib(int %n1)
    %n2 = sub int %n, 2
    %b = call int %fib(int %n2)
    %s = add int %a, %b
    ret int %s
}
"#;
        let m1 = parse_module(src).expect("first parse");
        verify_module(&m1).expect("m1 verifies");
        let text1 = print_module(&m1);
        let m2 = parse_module(&text1).expect("reparse");
        verify_module(&m2).expect("m2 verifies");
        let text2 = print_module(&m2);
        assert_eq!(text1, text2, "printer/parser fixpoint");
    }

    #[test]
    fn parse_mbr_and_attrs() {
        let src = r#"
int %classify(int %x) {
entry:
    %y = div [noexc] int %x, %x
    mbr int %y, label %other, [ int 0, label %zero ], [ int 1, label %one ]
zero:
    ret int 0
one:
    ret int 1
other:
    ret int 2
}
"#;
        let m = parse_module(src).expect("parses");
        verify_module(&m).expect("verifies");
        let f = m.function_by_name("classify").expect("f");
        let func = m.function(f);
        let entry = func.entry_block();
        let div = func.block(entry).insts()[0];
        assert!(!func.inst(div).exceptions_enabled());
        let mbr = func.block(entry).insts()[1];
        assert_eq!(func.inst(mbr).opcode(), Opcode::Mbr);
        assert_eq!(func.inst(mbr).block_operands().len(), 3);
    }

    #[test]
    fn parse_invoke_unwind() {
        let src = r#"
void %risky() {
entry:
    unwind
}

int %caller() {
entry:
    %r = invoke int %risky() to label %ok unwind label %bad
ok:
    ret int 0
bad:
    ret int 1
}
"#;
        // risky returns void but invoke says int — the verifier should flag
        // it; parsing alone should succeed.
        let m = parse_module(src).expect("parses");
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn error_reports_line() {
        let src = "int %f() {\nentry:\n    %x = bogus int 1, 2\n    ret int %x\n}\n";
        let err = parse_module(src).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("bogus"));
    }

    #[test]
    fn forward_reference_across_blocks() {
        // `join` uses %v, which is defined in a block that appears later
        // in layout order than the phi-free path would suggest.
        let src = r#"
int %f(bool %c) {
entry:
    br bool %c, label %def, label %def
def:
    %v = add int 1, 2
    br label %join
join:
    ret int %v
}
"#;
        let m = parse_module(src).expect("parses");
        verify_module(&m).expect("verifies");
    }

    #[test]
    fn parse_function_pointer_type_operand() {
        let src = r#"
int %apply(int (int)* %f, int %x) {
entry:
    %r = call int %f(int %x)
    ret int %r
}

int %inc(int %x) {
entry:
    %r = add int %x, 1
    ret int %r
}

int %main() {
entry:
    %r = call int %apply(int (int)* %inc, int 5)
    ret int %r
}
"#;
        let m = parse_module(src).expect("parses");
        verify_module(&m).expect("verifies");
    }

    #[test]
    fn declare_then_call() {
        let src = r#"
declare int %external(int)

int %main() {
entry:
    %r = call int %external(int 1)
    ret int %r
}
"#;
        let m = parse_module(src).expect("parses");
        verify_module(&m).expect("verifies");
        let ext = m.function_by_name("external").expect("decl");
        assert!(m.function(ext).is_declaration());
    }
}
