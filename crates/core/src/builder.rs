//! A convenience builder for constructing LLVA functions.
//!
//! [`FunctionBuilder`] wraps a [`Module`] + [`FuncId`] pair and offers one
//! method per instruction, computing result types (including the typed
//! pointer arithmetic of `getelementptr`) and enforcing the paper's
//! strict type rules eagerly with panics; the [`verifier`](crate::verifier)
//! re-checks everything non-panickingly afterwards.
//!
//! # Examples
//!
//! ```
//! use llva_core::builder::FunctionBuilder;
//! use llva_core::layout::TargetConfig;
//! use llva_core::module::Module;
//!
//! let mut m = Module::new("demo", TargetConfig::default());
//! let int = m.types_mut().int();
//! let f = m.add_function("add1", int, vec![int]);
//! let mut b = FunctionBuilder::new(&mut m, f);
//! let entry = b.block("entry");
//! b.switch_to(entry);
//! let x = b.func().args()[0];
//! let one = b.iconst(int, 1);
//! let sum = b.add(x, one);
//! b.ret(Some(sum));
//! assert_eq!(m.function(f).num_insts(), 2);
//! ```

use crate::function::BlockId;
use crate::instruction::{InstId, Instruction, Opcode};
use crate::module::{FuncId, GlobalId, Module};
use crate::types::{TypeId, TypeKind};
use crate::value::{Constant, ValueId};

/// Builds instructions into one function of a module.
///
/// The builder keeps a *current block*; instruction methods append there.
#[derive(Debug)]
pub struct FunctionBuilder<'m> {
    module: &'m mut Module,
    func: FuncId,
    current: Option<BlockId>,
}

impl<'m> FunctionBuilder<'m> {
    /// Starts building into `func`.
    pub fn new(module: &'m mut Module, func: FuncId) -> FunctionBuilder<'m> {
        FunctionBuilder {
            module,
            func,
            current: None,
        }
    }

    /// The function being built.
    pub fn func(&self) -> &crate::function::Function {
        self.module.function(self.func)
    }

    /// Mutable access to the function being built.
    pub fn func_mut(&mut self) -> &mut crate::function::Function {
        self.module.function_mut(self.func)
    }

    /// The underlying module.
    pub fn module(&mut self) -> &mut Module {
        self.module
    }

    /// The id of the function being built.
    pub fn func_id(&self) -> FuncId {
        self.func
    }

    /// Creates a new basic block.
    pub fn block(&mut self, name: &str) -> BlockId {
        self.module.function_mut(self.func).add_block(name)
    }

    /// Makes `block` the insertion point.
    pub fn switch_to(&mut self, block: BlockId) {
        self.current = Some(block);
    }

    /// The current insertion block.
    ///
    /// # Panics
    ///
    /// Panics if no block has been selected with
    /// [`switch_to`](FunctionBuilder::switch_to).
    pub fn current_block(&self) -> BlockId {
        self.current.expect("no current block; call switch_to first")
    }

    fn emit(&mut self, inst: Instruction) -> (InstId, Option<ValueId>) {
        let block = self.current_block();
        let void = self.module.types_mut().void();
        self.module
            .function_mut(self.func)
            .append_inst(block, inst, void)
    }

    fn emit_value(&mut self, inst: Instruction) -> ValueId {
        self.emit(inst).1.expect("instruction produces a value")
    }

    fn value_type(&mut self, v: ValueId) -> TypeId {
        let bool_ty = self.module.types_mut().bool();
        self.module.function(self.func).value_type(v, bool_ty)
    }

    // ---- constants ---------------------------------------------------------

    /// An integer constant of type `ty` (bits are truncated to the type's
    /// width).
    pub fn iconst(&mut self, ty: TypeId, value: i64) -> ValueId {
        let bits = match self.module.types().int_bits(ty) {
            Some(64) => value as u64,
            Some(w) => (value as u64) & ((1u64 << w) - 1),
            None => panic!(
                "iconst requires an integer type, got {}",
                self.module.types().display(ty)
            ),
        };
        self.module
            .function_mut(self.func)
            .constant(Constant::Int { ty, bits })
    }

    /// A boolean constant.
    pub fn bconst(&mut self, value: bool) -> ValueId {
        self.module
            .function_mut(self.func)
            .constant(Constant::Bool(value))
    }

    /// A floating-point constant (`float` payloads are rounded to `f32`).
    pub fn fconst(&mut self, ty: TypeId, value: f64) -> ValueId {
        let bits = match self.module.types().kind(ty) {
            TypeKind::Float => (value as f32).to_bits() as u64,
            TypeKind::Double => value.to_bits(),
            other => panic!("fconst requires float/double, got {other:?}"),
        };
        self.module
            .function_mut(self.func)
            .constant(Constant::Float { ty, bits })
    }

    /// The null pointer of pointer type `ty`.
    pub fn null(&mut self, ty: TypeId) -> ValueId {
        assert!(self.module.types().is_pointer(ty), "null requires a pointer type");
        self.module.function_mut(self.func).constant(Constant::Null(ty))
    }

    /// The address of global `g` (type: pointer to the global's value type).
    pub fn global_addr(&mut self, g: GlobalId) -> ValueId {
        let vt = self.module.global(g).value_type();
        let ty = self.module.types_mut().pointer_to(vt);
        self.module
            .function_mut(self.func)
            .constant(Constant::GlobalAddr { global: g, ty })
    }

    /// The address of function `f` (type: pointer to its function type).
    pub fn func_addr(&mut self, f: FuncId) -> ValueId {
        let ft = self.module.function(f).type_id();
        let ty = self.module.types_mut().pointer_to(ft);
        self.module
            .function_mut(self.func)
            .constant(Constant::FunctionAddr { func: f, ty })
    }

    /// An undef value of type `ty`.
    pub fn undef(&mut self, ty: TypeId) -> ValueId {
        self.module.function_mut(self.func).constant(Constant::Undef(ty))
    }

    // ---- binary / comparison ------------------------------------------------

    fn binary(&mut self, op: Opcode, lhs: ValueId, rhs: ValueId) -> ValueId {
        let lt = self.value_type(lhs);
        let rt = self.value_type(rhs);
        assert_eq!(
            lt,
            rt,
            "no mixed-type operations: {} {} vs {}",
            op,
            self.module.types().display(lt),
            self.module.types().display(rt)
        );
        self.emit_value(Instruction::new(op, lt, vec![lhs, rhs], vec![]))
    }

    /// `add` — addition.
    pub fn add(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.binary(Opcode::Add, lhs, rhs)
    }
    /// `sub` — subtraction.
    pub fn sub(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.binary(Opcode::Sub, lhs, rhs)
    }
    /// `mul` — multiplication.
    pub fn mul(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.binary(Opcode::Mul, lhs, rhs)
    }
    /// `div` — division (exceptions enabled by default).
    pub fn div(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.binary(Opcode::Div, lhs, rhs)
    }
    /// `rem` — remainder.
    pub fn rem(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.binary(Opcode::Rem, lhs, rhs)
    }
    /// `and` — bitwise AND.
    pub fn and(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.binary(Opcode::And, lhs, rhs)
    }
    /// `or` — bitwise OR.
    pub fn or(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.binary(Opcode::Or, lhs, rhs)
    }
    /// `xor` — bitwise XOR.
    pub fn xor(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.binary(Opcode::Xor, lhs, rhs)
    }
    /// `shl` — shift left.
    pub fn shl(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.binary(Opcode::Shl, lhs, rhs)
    }
    /// `shr` — shift right.
    pub fn shr(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.binary(Opcode::Shr, lhs, rhs)
    }

    fn compare(&mut self, op: Opcode, lhs: ValueId, rhs: ValueId) -> ValueId {
        let lt = self.value_type(lhs);
        let rt = self.value_type(rhs);
        assert_eq!(lt, rt, "comparison operands must have identical types");
        let b = self.module.types_mut().bool();
        self.emit_value(Instruction::new(op, b, vec![lhs, rhs], vec![]))
    }

    /// `seteq` — equality, yields `bool`.
    pub fn seteq(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.compare(Opcode::SetEq, lhs, rhs)
    }
    /// `setne` — inequality.
    pub fn setne(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.compare(Opcode::SetNe, lhs, rhs)
    }
    /// `setlt` — less than.
    pub fn setlt(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.compare(Opcode::SetLt, lhs, rhs)
    }
    /// `setgt` — greater than.
    pub fn setgt(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.compare(Opcode::SetGt, lhs, rhs)
    }
    /// `setle` — less or equal.
    pub fn setle(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.compare(Opcode::SetLe, lhs, rhs)
    }
    /// `setge` — greater or equal.
    pub fn setge(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.compare(Opcode::SetGe, lhs, rhs)
    }

    // ---- memory --------------------------------------------------------------

    /// `alloca` — allocates stack space for one `ty`, yielding `ty*`.
    pub fn alloca(&mut self, ty: TypeId) -> ValueId {
        let ptr = self.module.types_mut().pointer_to(ty);
        self.emit_value(Instruction::new(Opcode::Alloca, ptr, vec![], vec![]))
    }

    /// `alloca` with a dynamic element count, yielding `ty*`.
    pub fn alloca_array(&mut self, ty: TypeId, count: ValueId) -> ValueId {
        let ptr = self.module.types_mut().pointer_to(ty);
        self.emit_value(Instruction::new(Opcode::Alloca, ptr, vec![count], vec![]))
    }

    /// `load` — loads the scalar pointed to by `ptr`.
    pub fn load(&mut self, ptr: ValueId) -> ValueId {
        let pt = self.value_type(ptr);
        let pointee = self
            .module
            .types()
            .pointee(pt)
            .unwrap_or_else(|| panic!("load requires a pointer, got {}", self.module.types().display(pt)));
        assert!(
            self.module.types().is_scalar(pointee),
            "load of non-scalar type {}",
            self.module.types().display(pointee)
        );
        self.emit_value(Instruction::new(Opcode::Load, pointee, vec![ptr], vec![]))
    }

    /// `store` — stores scalar `value` through `ptr`.
    pub fn store(&mut self, value: ValueId, ptr: ValueId) {
        let pt = self.value_type(ptr);
        let pointee = self
            .module
            .types()
            .pointee(pt)
            .expect("store requires a pointer");
        let vt = self.value_type(value);
        assert_eq!(
            vt,
            pointee,
            "store type mismatch: {} into {}",
            self.module.types().display(vt),
            self.module.types().display(pt)
        );
        let void = self.module.types_mut().void();
        self.emit(Instruction::new(Opcode::Store, void, vec![value, ptr], vec![]));
    }

    /// Computes the result type of a `getelementptr` walk.
    ///
    /// The first index steps over the pointer; subsequent indices select
    /// struct fields (constant `ubyte`) or array elements.
    pub fn gep_result_type(module: &mut Module, func: FuncId, ptr_ty: TypeId, indices: &[ValueId]) -> TypeId {
        let mut cur = module
            .types()
            .pointee(ptr_ty)
            .expect("getelementptr requires a pointer");
        for &idx in &indices[1..] {
            cur = match module.types().kind(cur).clone() {
                TypeKind::Array { elem, .. } => elem,
                TypeKind::LiteralStruct(_) | TypeKind::Struct(_) => {
                    let field = module
                        .function(func)
                        .value_as_const(idx)
                        .and_then(Constant::as_int_bits)
                        .expect("struct field index must be a constant") as usize;
                    module
                        .types()
                        .struct_fields(cur)
                        .expect("indexing into opaque struct")[field]
                }
                other => panic!("getelementptr into non-aggregate {other:?}"),
            };
        }
        module.types_mut().pointer_to(cur)
    }

    /// `getelementptr` — typed pointer arithmetic (paper §3.1). `indices`
    /// follows the paper's convention: the first index scales by whole
    /// objects, later ones walk into structs (constant field numbers) and
    /// arrays.
    pub fn gep(&mut self, ptr: ValueId, indices: Vec<ValueId>) -> ValueId {
        assert!(!indices.is_empty(), "getelementptr needs at least one index");
        let pt = self.value_type(ptr);
        let result = Self::gep_result_type(self.module, self.func, pt, &indices);
        let mut operands = vec![ptr];
        operands.extend(indices);
        self.emit_value(Instruction::new(Opcode::GetElementPtr, result, operands, vec![]))
    }

    /// Convenience: `getelementptr` with integer indices; `true` in
    /// `field_flags[i]` marks a struct-field (ubyte) index.
    pub fn gep_const(&mut self, ptr: ValueId, indices: &[(i64, bool)]) -> ValueId {
        let long = self.module.types_mut().long();
        let ubyte = self.module.types_mut().ubyte();
        let idx_values: Vec<ValueId> = indices
            .iter()
            .map(|&(v, is_field)| self.iconst(if is_field { ubyte } else { long }, v))
            .collect();
        self.gep(ptr, idx_values)
    }

    // ---- other ---------------------------------------------------------------

    /// `cast` — converts `value` to type `to` (the sole coercion
    /// mechanism; paper §3.1: "no implicit type coercion").
    pub fn cast(&mut self, value: ValueId, to: TypeId) -> ValueId {
        self.emit_value(Instruction::new(Opcode::Cast, to, vec![value], vec![]))
    }

    /// `call` — direct call to `callee`.
    pub fn call(&mut self, callee: FuncId, args: Vec<ValueId>) -> Option<ValueId> {
        let fv = self.func_addr(callee);
        let ret = self.module.function(callee).return_type();
        self.call_indirect(fv, ret, args)
    }

    /// `call` through a function-pointer value with known return type.
    pub fn call_indirect(
        &mut self,
        callee: ValueId,
        ret_ty: TypeId,
        args: Vec<ValueId>,
    ) -> Option<ValueId> {
        let mut operands = vec![callee];
        operands.extend(args);
        self.emit(Instruction::new(Opcode::Call, ret_ty, operands, vec![])).1
    }

    /// `phi` — SSA merge; `incoming` pairs are `(value, predecessor)`.
    pub fn phi(&mut self, ty: TypeId, incoming: Vec<(ValueId, BlockId)>) -> ValueId {
        let (values, blocks): (Vec<_>, Vec<_>) = incoming.into_iter().unzip();
        self.emit_value(Instruction::new(Opcode::Phi, ty, values, blocks))
    }

    // ---- control flow ----------------------------------------------------------

    /// `br label %dest` — unconditional branch.
    pub fn br(&mut self, dest: BlockId) {
        let void = self.module.types_mut().void();
        self.emit(Instruction::new(Opcode::Br, void, vec![], vec![dest]));
    }

    /// `br bool %cond, label %then, label %else` — conditional branch.
    pub fn cond_br(&mut self, cond: ValueId, then_bb: BlockId, else_bb: BlockId) {
        let void = self.module.types_mut().void();
        self.emit(Instruction::new(
            Opcode::Br,
            void,
            vec![cond],
            vec![then_bb, else_bb],
        ));
    }

    /// `mbr` — multi-way branch; `cases` pairs integer constants with
    /// targets, falling through to `default`.
    pub fn mbr(&mut self, value: ValueId, default: BlockId, cases: Vec<(ValueId, BlockId)>) {
        let void = self.module.types_mut().void();
        let mut operands = vec![value];
        let mut blocks = vec![default];
        for (c, b) in cases {
            assert!(
                self.module.function(self.func).value_as_const(c).is_some(),
                "mbr case values must be constants"
            );
            operands.push(c);
            blocks.push(b);
        }
        self.emit(Instruction::new(Opcode::Mbr, void, operands, blocks));
    }

    /// `ret` — return, optionally with a value.
    pub fn ret(&mut self, value: Option<ValueId>) {
        let void = self.module.types_mut().void();
        let operands = value.into_iter().collect();
        self.emit(Instruction::new(Opcode::Ret, void, operands, vec![]));
    }

    /// `invoke` — call with exceptional control flow (paper: exceptions
    /// are implemented via explicit `invoke`/`unwind`).
    pub fn invoke(
        &mut self,
        callee: FuncId,
        args: Vec<ValueId>,
        normal: BlockId,
        unwind: BlockId,
    ) -> Option<ValueId> {
        let fv = self.func_addr(callee);
        let ret = self.module.function(callee).return_type();
        let mut operands = vec![fv];
        operands.extend(args);
        self.emit(Instruction::new(
            Opcode::Invoke,
            ret,
            operands,
            vec![normal, unwind],
        ))
        .1
    }

    /// `unwind` — propagate to the dynamically nearest enclosing `invoke`.
    pub fn unwind(&mut self) {
        let void = self.module.types_mut().void();
        self.emit(Instruction::new(Opcode::Unwind, void, vec![], vec![]));
    }

    /// Names the most recent SSA value for pretty printing.
    pub fn name_value(&mut self, value: ValueId, name: &str) {
        self.module
            .function_mut(self.func)
            .set_value_name(value, name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::TargetConfig;

    fn new_module() -> Module {
        Module::new("t", TargetConfig::default())
    }

    #[test]
    fn build_simple_add() {
        let mut m = new_module();
        let int = m.types_mut().int();
        let f = m.add_function("add", int, vec![int, int]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let entry = b.block("entry");
        b.switch_to(entry);
        let (x, y) = (b.func().args()[0], b.func().args()[1]);
        let s = b.add(x, y);
        b.ret(Some(s));
        assert_eq!(m.function(f).num_insts(), 2);
        assert!(m.function(f).has_terminators());
    }

    #[test]
    #[should_panic(expected = "no mixed-type operations")]
    fn mixed_types_rejected() {
        let mut m = new_module();
        let int = m.types_mut().int();
        let dbl = m.types_mut().double();
        let f = m.add_function("f", int, vec![int]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let entry = b.block("entry");
        b.switch_to(entry);
        let x = b.func().args()[0];
        let c = b.fconst(dbl, 1.0);
        b.add(x, c);
    }

    #[test]
    fn gep_walks_quadtree() {
        // Reproduce the %tmp.1 getelementptr from paper Figure 2(b).
        let mut m = new_module();
        let qt = m.types_mut().named_struct("QT");
        let qt_ptr = m.types_mut().pointer_to(qt);
        let children = m.types_mut().array_of(qt_ptr, 4);
        let dbl = m.types_mut().double();
        m.types_mut().set_struct_body("QT", vec![dbl, children]);
        let void = m.types_mut().void();
        let f = m.add_function("f", void, vec![qt_ptr]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let entry = b.block("entry");
        b.switch_to(entry);
        let t = b.func().args()[0];
        let p = b.gep_const(t, &[(0, false), (1, true), (3, false)]);
        b.ret(None);
        let bool_ty = m.types_mut().bool();
        let pty = m.function(f).value_type(p, bool_ty);
        // &T[0].Children[3] has type QT**
        let expected = m.types_mut().pointer_to(qt_ptr);
        assert_eq!(pty, expected);
    }

    #[test]
    fn load_store_round_trip_types() {
        let mut m = new_module();
        let int = m.types_mut().int();
        let f = m.add_function("f", int, vec![int]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let entry = b.block("entry");
        b.switch_to(entry);
        let slot = b.alloca(int);
        let x = b.func().args()[0];
        b.store(x, slot);
        let v = b.load(slot);
        b.ret(Some(v));
        assert_eq!(m.function(f).num_insts(), 4);
    }

    #[test]
    fn call_returns_value_only_for_nonvoid() {
        let mut m = new_module();
        let int = m.types_mut().int();
        let void = m.types_mut().void();
        let callee = m.add_function("callee", int, vec![]);
        let vcallee = m.add_function("vcallee", void, vec![]);
        let f = m.add_function("f", int, vec![]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let entry = b.block("entry");
        b.switch_to(entry);
        let r = b.call(callee, vec![]);
        assert!(r.is_some());
        let r2 = b.call(vcallee, vec![]);
        assert!(r2.is_none());
        b.ret(r);
    }

    #[test]
    fn phi_pairs() {
        let mut m = new_module();
        let int = m.types_mut().int();
        let f = m.add_function("f", int, vec![int]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let entry = b.block("entry");
        let t = b.block("t");
        let e = b.block("e");
        let join = b.block("join");
        b.switch_to(entry);
        let x = b.func().args()[0];
        let zero = b.iconst(int, 0);
        let c = b.setgt(x, zero);
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.br(join);
        b.switch_to(e);
        b.br(join);
        b.switch_to(join);
        let one = b.iconst(int, 1);
        let p = b.phi(int, vec![(one, t), (zero, e)]);
        b.ret(Some(p));
        assert!(m.function(f).has_terminators());
        let join_insts = m.function(f).block(join).insts().to_vec();
        assert_eq!(m.function(f).inst(join_insts[0]).opcode(), Opcode::Phi);
    }
}
