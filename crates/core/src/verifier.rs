//! The LLVA verifier: strict type rules and SSA well-formedness.
//!
//! Paper §3.1: "All instructions in the V-ISA have strict type rules …
//! There are no mixed-type operations and hence, no implicit type
//! coercion." The verifier enforces those rules plus CFG invariants
//! (every block ends in exactly one terminator) and the SSA property
//! (every use is dominated by its definition).

use crate::dominators::DomTree;
use crate::function::{BlockId, Function};
use crate::instruction::{InstId, Opcode};
use crate::module::Module;
use crate::types::{TypeId, TypeKind};
use crate::value::ValueData;
use std::fmt;

/// A single verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function in which the failure occurred, if any.
    pub function: Option<String>,
    /// Description of what rule was broken.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.function {
            Some(name) => write!(f, "in function '{}': {}", name, self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for VerifyError {}

/// All verification failures found in a module.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VerifyErrors(pub Vec<VerifyError>);

impl fmt::Display for VerifyErrors {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} verification error(s):", self.0.len())?;
        for e in &self.0 {
            writeln!(f, "  - {e}")?;
        }
        Ok(())
    }
}

impl std::error::Error for VerifyErrors {}

/// Verifies every function in `module`.
///
/// # Errors
///
/// Returns all rule violations found; an empty error list is impossible
/// (`Ok(())` is returned instead).
pub fn verify_module(module: &Module) -> Result<(), VerifyErrors> {
    let mut errors = Vec::new();
    for (_, func) in module.functions() {
        if func.is_declaration() {
            continue;
        }
        verify_function(module, func, &mut errors);
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(VerifyErrors(errors))
    }
}

/// Verifies a single function, appending failures to `errors`.
pub fn verify_function(module: &Module, func: &Function, errors: &mut Vec<VerifyError>) {
    let mut ctx = Ctx {
        module,
        func,
        errors,
    };
    ctx.check_blocks();
    let dom = DomTree::compute(func);
    ctx.check_instructions(&dom);
    ctx.check_ssa(&dom);
}

struct Ctx<'a> {
    module: &'a Module,
    func: &'a Function,
    errors: &'a mut Vec<VerifyError>,
}

impl<'a> Ctx<'a> {
    fn err(&mut self, message: String) {
        self.errors.push(VerifyError {
            function: Some(self.func.name().to_string()),
            message,
        });
    }

    fn ty_name(&self, ty: TypeId) -> String {
        self.module.types().display(ty)
    }

    fn vty(&self, v: crate::value::ValueId) -> TypeId {
        // The bool TypeId must already be interned when bool constants
        // appear; interning is monotonic so looking it up via a clone-free
        // scan is overkill — modules always intern bool lazily. We accept
        // the tiny cost of a scan here since verification is offline.
        let types = self.module.types();
        let bool_ty = types
            .iter()
            .find(|(_, k)| matches!(k, TypeKind::Bool))
            .map(|(id, _)| id)
            .unwrap_or_else(|| TypeId::from_index((u32::MAX - 1) as usize));
        self.func.value_type(v, bool_ty)
    }

    fn check_blocks(&mut self) {
        for &b in self.func.block_order() {
            let insts = self.func.block(b).insts();
            if insts.is_empty() {
                self.err(format!("block '{}' is empty", self.func.block(b).name()));
                continue;
            }
            for (i, &inst) in insts.iter().enumerate() {
                let is_last = i + 1 == insts.len();
                let is_term = self.func.inst(inst).is_terminator();
                if is_last && !is_term {
                    self.err(format!(
                        "block '{}' does not end in a terminator",
                        self.func.block(b).name()
                    ));
                }
                if !is_last && is_term {
                    self.err(format!(
                        "terminator in the middle of block '{}'",
                        self.func.block(b).name()
                    ));
                }
            }
            // phis must be grouped at the head of the block
            let mut seen_non_phi = false;
            for &inst in insts {
                let is_phi = self.func.inst(inst).opcode() == Opcode::Phi;
                if is_phi && seen_non_phi {
                    self.err(format!(
                        "phi after non-phi instruction in block '{}'",
                        self.func.block(b).name()
                    ));
                }
                if !is_phi {
                    seen_non_phi = true;
                }
            }
        }
    }

    fn check_instructions(&mut self, dom: &DomTree) {
        let preds = self.func.predecessors();
        for (block, inst_id) in self.func.inst_iter() {
            if !dom.is_reachable(block) {
                continue;
            }
            self.check_inst(block, inst_id, &preds);
        }
    }

    fn check_inst(
        &mut self,
        block: BlockId,
        id: InstId,
        preds: &std::collections::HashMap<BlockId, Vec<BlockId>>,
    ) {
        let inst = self.func.inst(id);
        let op = inst.opcode();
        let types = self.module.types();
        let n_ops = inst.operands().len();
        let n_blocks = inst.block_operands().len();

        match op {
            _ if op.is_binary() => {
                if n_ops != 2 {
                    self.err(format!("{op} expects 2 operands, got {n_ops}"));
                    return;
                }
                let (l, r) = (self.vty(inst.operands()[0]), self.vty(inst.operands()[1]));
                if l != r {
                    self.err(format!(
                        "{op} has mixed operand types {} and {}",
                        self.ty_name(l),
                        self.ty_name(r)
                    ));
                }
                if inst.result_type() != l {
                    self.err(format!("{op} result type differs from operand type"));
                }
                let arith_ok = types.is_integer(l) || types.is_float(l);
                let bitwise = matches!(
                    op,
                    Opcode::And | Opcode::Or | Opcode::Xor | Opcode::Shl | Opcode::Shr
                );
                if bitwise && !types.is_integer(l) {
                    self.err(format!("{op} requires integer operands, got {}", self.ty_name(l)));
                } else if !bitwise && !arith_ok {
                    self.err(format!(
                        "{op} requires numeric operands, got {}",
                        self.ty_name(l)
                    ));
                }
            }
            _ if op.is_comparison() => {
                if n_ops != 2 {
                    self.err(format!("{op} expects 2 operands, got {n_ops}"));
                    return;
                }
                let (l, r) = (self.vty(inst.operands()[0]), self.vty(inst.operands()[1]));
                if l != r {
                    self.err(format!("{op} has mixed operand types"));
                }
                if !types.is_scalar(l) {
                    self.err(format!("{op} requires scalar operands"));
                }
                if !matches!(types.kind(inst.result_type()), TypeKind::Bool) {
                    self.err(format!("{op} must produce bool"));
                }
            }
            Opcode::Ret => {
                let ret_ty = self.func.return_type();
                let is_void = matches!(types.kind(ret_ty), TypeKind::Void);
                match (is_void, n_ops) {
                    (true, 0) | (false, 1) => {}
                    (true, _) => self.err("ret with value in void function".into()),
                    (false, 0) => self.err("ret without value in non-void function".into()),
                    (false, _) => self.err("ret with multiple values".into()),
                }
                if n_ops == 1 {
                    let t = self.vty(inst.operands()[0]);
                    if t != ret_ty {
                        self.err(format!(
                            "ret type {} does not match function return type {}",
                            self.ty_name(t),
                            self.ty_name(ret_ty)
                        ));
                    }
                }
            }
            Opcode::Br => match (n_ops, n_blocks) {
                (0, 1) => {}
                (1, 2) => {
                    let c = self.vty(inst.operands()[0]);
                    if !matches!(types.kind(c), TypeKind::Bool) {
                        self.err("conditional br requires a bool condition".into());
                    }
                }
                _ => self.err(format!(
                    "br has invalid shape: {n_ops} operands, {n_blocks} targets"
                )),
            },
            Opcode::Mbr => {
                if n_ops == 0 || n_blocks != n_ops {
                    self.err(format!(
                        "mbr shape invalid: {n_ops} operands vs {n_blocks} targets"
                    ));
                    return;
                }
                let disc = self.vty(inst.operands()[0]);
                if !types.is_integer(disc) {
                    self.err("mbr discriminant must be an integer".into());
                }
                for &c in &inst.operands()[1..] {
                    match self.func.value_as_const(c) {
                        Some(k) => {
                            if k.type_id() != Some(disc) {
                                self.err("mbr case type differs from discriminant".into());
                            }
                        }
                        None => self.err("mbr case is not a constant".into()),
                    }
                }
            }
            Opcode::Invoke | Opcode::Call => {
                if n_ops == 0 {
                    self.err(format!("{op} missing callee"));
                    return;
                }
                if op == Opcode::Invoke && n_blocks != 2 {
                    self.err("invoke needs normal and unwind targets".into());
                }
                let callee_ty = self.vty(inst.operands()[0]);
                let Some(fn_ty) = types.pointee(callee_ty) else {
                    self.err("callee is not a function pointer".into());
                    return;
                };
                let TypeKind::Function { ret, params, varargs } = types.kind(fn_ty).clone() else {
                    self.err("callee does not point to a function type".into());
                    return;
                };
                if inst.result_type() != ret {
                    self.err(format!(
                        "{op} result type {} differs from callee return {}",
                        self.ty_name(inst.result_type()),
                        self.ty_name(ret)
                    ));
                }
                let args = &inst.operands()[1..];
                if args.len() < params.len() || (!varargs && args.len() != params.len()) {
                    self.err(format!(
                        "{op} passes {} args to a function of {} params",
                        args.len(),
                        params.len()
                    ));
                }
                for (i, (&a, &p)) in args.iter().zip(params.iter()).enumerate() {
                    let at = self.vty(a);
                    if at != p {
                        self.err(format!(
                            "{op} argument {i} has type {}, expected {}",
                            self.ty_name(at),
                            self.ty_name(p)
                        ));
                    }
                }
            }
            Opcode::Unwind => {
                if n_ops != 0 || n_blocks != 0 {
                    self.err("unwind takes no operands".into());
                }
            }
            Opcode::Load => {
                if n_ops != 1 {
                    self.err("load expects 1 operand".into());
                    return;
                }
                let pt = self.vty(inst.operands()[0]);
                match types.pointee(pt) {
                    Some(pointee) => {
                        if !types.is_scalar(pointee) {
                            self.err("load of non-scalar memory".into());
                        }
                        if inst.result_type() != pointee {
                            self.err("load result type differs from pointee".into());
                        }
                    }
                    None => self.err("load requires a pointer operand".into()),
                }
            }
            Opcode::Store => {
                if n_ops != 2 {
                    self.err("store expects 2 operands".into());
                    return;
                }
                let vt = self.vty(inst.operands()[0]);
                let pt = self.vty(inst.operands()[1]);
                match types.pointee(pt) {
                    Some(pointee) if pointee == vt => {}
                    Some(_) => self.err("store value type differs from pointee".into()),
                    None => self.err("store requires a pointer operand".into()),
                }
            }
            Opcode::GetElementPtr => {
                if n_ops < 2 {
                    self.err("getelementptr needs a pointer and at least one index".into());
                    return;
                }
                let pt = self.vty(inst.operands()[0]);
                if types.pointee(pt).is_none() {
                    self.err("getelementptr base is not a pointer".into());
                    return;
                }
                // Re-walk the indices to validate the result type.
                let mut cur = types.pointee(pt).expect("checked above");
                for &idx in &inst.operands()[2..] {
                    match types.kind(cur).clone() {
                        TypeKind::Array { elem, .. } => {
                            let it = self.vty(idx);
                            if !types.is_integer(it) {
                                self.err("array index must be an integer".into());
                            }
                            cur = elem;
                        }
                        TypeKind::LiteralStruct(_) | TypeKind::Struct(_) => {
                            let field = self
                                .func
                                .value_as_const(idx)
                                .and_then(crate::value::Constant::as_int_bits);
                            match (field, types.struct_fields(cur)) {
                                (Some(fi), Some(fields)) if (fi as usize) < fields.len() => {
                                    cur = fields[fi as usize];
                                }
                                (None, _) => {
                                    self.err("struct field index must be a constant".into());
                                    return;
                                }
                                (_, None) => {
                                    self.err("getelementptr into opaque struct".into());
                                    return;
                                }
                                (Some(fi), Some(fields)) => {
                                    self.err(format!(
                                        "struct field index {fi} out of range ({})",
                                        fields.len()
                                    ));
                                    return;
                                }
                            }
                        }
                        _ => {
                            self.err("getelementptr walks into a non-aggregate".into());
                            return;
                        }
                    }
                }
                let expected = match types.kind(inst.result_type()) {
                    TypeKind::Pointer(p) => *p == cur,
                    _ => false,
                };
                if !expected {
                    self.err("getelementptr result type does not match its walk".into());
                }
            }
            Opcode::Alloca => {
                if types.pointee(inst.result_type()).is_none() {
                    self.err("alloca must produce a pointer".into());
                }
                if n_ops > 1 {
                    self.err("alloca takes at most one (count) operand".into());
                }
                if n_ops == 1 {
                    let ct = self.vty(inst.operands()[0]);
                    if !types.is_integer(ct) {
                        self.err("alloca count must be an integer".into());
                    }
                }
            }
            Opcode::Cast => {
                if n_ops != 1 {
                    self.err("cast expects 1 operand".into());
                    return;
                }
                let from = self.vty(inst.operands()[0]);
                let to = inst.result_type();
                if !types.is_scalar(from) || !types.is_scalar(to) {
                    self.err(format!(
                        "cast between non-scalar types {} -> {}",
                        self.ty_name(from),
                        self.ty_name(to)
                    ));
                }
            }
            Opcode::Phi => {
                let expected_preds = preds.get(&block).map(Vec::len).unwrap_or(0);
                if n_ops != n_blocks {
                    self.err("phi values and blocks are not parallel".into());
                    return;
                }
                if n_ops != expected_preds {
                    self.err(format!(
                        "phi has {n_ops} incoming entries but block has {expected_preds} predecessors"
                    ));
                }
                let mut seen: Vec<BlockId> = Vec::new();
                for (&v, &b) in inst.operands().iter().zip(inst.block_operands()) {
                    if seen.contains(&b) {
                        self.err("phi lists a predecessor twice".into());
                    }
                    seen.push(b);
                    if let Some(ps) = preds.get(&block) {
                        if !ps.contains(&b) {
                            self.err(format!(
                                "phi incoming block '{}' is not a predecessor",
                                self.func.block(b).name()
                            ));
                        }
                    }
                    let vt = self.vty(v);
                    if vt != inst.result_type() {
                        self.err("phi incoming value type differs from result type".into());
                    }
                }
            }
            _ => unreachable!("all opcodes covered"),
        }
    }

    fn check_ssa(&mut self, dom: &DomTree) {
        for (block, inst_id) in self.func.inst_iter() {
            if !dom.is_reachable(block) {
                continue;
            }
            let inst = self.func.inst(inst_id);
            let is_phi = inst.opcode() == Opcode::Phi;
            let operands: Vec<_> = inst.operands().to_vec();
            let phi_blocks: Vec<_> = inst.block_operands().to_vec();
            for (i, &op) in operands.iter().enumerate() {
                let ValueData::Inst { inst: def, .. } = *self.func.value(op) else {
                    continue; // constants and args dominate everything
                };
                let Some(def_block) = self.func.inst_parent(def) else {
                    self.err(format!("use of detached instruction result {op}"));
                    continue;
                };
                let use_point = if is_phi {
                    // A phi use must be dominated at the end of the
                    // corresponding predecessor block. Values flowing in
                    // over a dead edge (unreachable predecessor) are
                    // never read and are exempt, as in LLVM's verifier.
                    match phi_blocks.get(i) {
                        Some(&pb) if dom.is_reachable(pb) => (pb, None),
                        _ => continue,
                    }
                } else {
                    (block, Some(inst_id))
                };
                if !self.dominates_use(dom, def, def_block, use_point) {
                    self.err(format!(
                        "definition of {op} does not dominate its use in block '{}'",
                        self.func.block(block).name()
                    ));
                }
            }
        }
    }

    /// Does `def` (in `def_block`) dominate the use point `(block, inst)`?
    /// `inst == None` means "end of block".
    fn dominates_use(
        &self,
        dom: &DomTree,
        def: InstId,
        def_block: BlockId,
        use_point: (BlockId, Option<InstId>),
    ) -> bool {
        let (use_block, use_inst) = use_point;
        if def_block != use_block {
            return dom.strictly_dominates(def_block, use_block)
                || (dom.is_reachable(def_block) && dom.dominates(def_block, use_block));
        }
        match use_inst {
            None => true, // def is in the block, use at end of block
            Some(u) => {
                let insts = self.func.block(def_block).insts();
                let dp = insts.iter().position(|&i| i == def);
                let up = insts.iter().position(|&i| i == u);
                match (dp, up) {
                    (Some(d), Some(u)) => d < u,
                    _ => false,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instruction::Instruction;
    use crate::layout::TargetConfig;

    fn verify(m: &Module) -> Result<(), VerifyErrors> {
        verify_module(m)
    }

    #[test]
    fn well_formed_function_passes() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let f = m.add_function("f", int, vec![int, int]);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let (x, y) = (b.func().args()[0], b.func().args()[1]);
        let s = b.add(x, y);
        b.ret(Some(s));
        assert!(verify(&m).is_ok());
    }

    #[test]
    fn missing_terminator_detected() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let void = m.types_mut().void();
        let f = m.add_function("f", int, vec![int]);
        let func = m.function_mut(f);
        let e = func.add_block("entry");
        let x = func.args()[0];
        func.append_inst(e, Instruction::new(Opcode::Add, int, vec![x, x], vec![]), void);
        let err = verify(&m).unwrap_err();
        assert!(err.to_string().contains("does not end in a terminator"), "{err}");
    }

    #[test]
    fn ret_type_mismatch_detected() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let dbl = m.types_mut().double();
        let void = m.types_mut().void();
        let f = m.add_function("f", dbl, vec![int]);
        let func = m.function_mut(f);
        let e = func.add_block("entry");
        let x = func.args()[0];
        func.append_inst(e, Instruction::new(Opcode::Ret, void, vec![x], vec![]), void);
        let err = verify(&m).unwrap_err();
        assert!(err.to_string().contains("does not match function return type"), "{err}");
    }

    #[test]
    fn mixed_type_add_detected() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let uint = m.types_mut().uint();
        let void = m.types_mut().void();
        let f = m.add_function("f", int, vec![int, uint]);
        let func = m.function_mut(f);
        let e = func.add_block("entry");
        let (x, y) = (func.args()[0], func.args()[1]);
        let (_, r) = func.append_inst(e, Instruction::new(Opcode::Add, int, vec![x, y], vec![]), void);
        func.append_inst(e, Instruction::new(Opcode::Ret, void, vec![r.unwrap()], vec![]), void);
        let err = verify(&m).unwrap_err();
        assert!(err.to_string().contains("mixed operand types"), "{err}");
    }

    #[test]
    fn use_before_def_detected() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let void = m.types_mut().void();
        let f = m.add_function("f", int, vec![int]);
        let func = m.function_mut(f);
        let e = func.add_block("entry");
        let x = func.args()[0];
        // Manually create: %a = add %b, %b ; %b = add %x, %x  — %a uses %b before def.
        let (_b_id, b_val) = {
            // create the later instruction first so we can reference it
            let (bid, bval) =
                func.append_inst(e, Instruction::new(Opcode::Add, int, vec![x, x], vec![]), void);
            (bid, bval.unwrap())
        };
        // Now move a new instruction BEFORE it that uses b_val.
        let (_, _a) = func.insert_inst_at(
            e,
            0,
            Instruction::new(Opcode::Add, int, vec![b_val, b_val], vec![]),
            void,
        );
        func.append_inst(e, Instruction::new(Opcode::Ret, void, vec![b_val], vec![]), void);
        let err = verify(&m).unwrap_err();
        assert!(err.to_string().contains("does not dominate"), "{err}");
    }

    #[test]
    fn phi_incoming_count_checked() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let void = m.types_mut().void();
        let f = m.add_function("f", int, vec![int]);
        let func = m.function_mut(f);
        let e = func.add_block("entry");
        let j = func.add_block("join");
        let x = func.args()[0];
        func.append_inst(e, Instruction::new(Opcode::Br, void, vec![], vec![j]), void);
        // phi with zero incoming in a block with one predecessor
        let (_, p) = func.append_inst(j, Instruction::new(Opcode::Phi, int, vec![], vec![]), void);
        func.append_inst(j, Instruction::new(Opcode::Ret, void, vec![p.unwrap()], vec![]), void);
        let _ = x;
        let err = verify(&m).unwrap_err();
        assert!(err.to_string().contains("predecessors"), "{err}");
    }

    #[test]
    fn store_type_mismatch_detected() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        let dbl = m.types_mut().double();
        let void = m.types_mut().void();
        let intp = m.types_mut().pointer_to(int);
        let f = m.add_function("f", void, vec![dbl, intp]);
        let func = m.function_mut(f);
        let e = func.add_block("entry");
        let (v, p) = (func.args()[0], func.args()[1]);
        func.append_inst(e, Instruction::new(Opcode::Store, void, vec![v, p], vec![]), void);
        func.append_inst(e, Instruction::new(Opcode::Ret, void, vec![], vec![]), void);
        let err = verify(&m).unwrap_err();
        assert!(err.to_string().contains("store value type differs"), "{err}");
    }

    #[test]
    fn declarations_are_skipped() {
        let mut m = Module::new("m", TargetConfig::default());
        let int = m.types_mut().int();
        m.add_function("external", int, vec![int]);
        assert!(verify(&m).is_ok());
    }
}
