//! # llva-workloads — the Table 2 benchmark programs
//!
//! minic analogs of the 17 benchmarks in the paper's Table 2: the five
//! PtrDist programs and twelve SPEC CPU2000 programs (three SPEC codes
//! are omitted in the paper itself because "their LLVA object code
//! versions fail to link"; we reproduce the 17 that appear in the
//! table). Each program implements the original's core algorithm at a
//! reduced scale — see DESIGN.md, substitution #3 — is deterministic,
//! and returns a checksum from `main` that all three executors must
//! agree on.

pub mod ptrdist;
pub mod specfp;
pub mod specint;

use llva_core::layout::TargetConfig;
use llva_core::module::Module;

/// One Table 2 benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Benchmark name as it appears in the paper's Table 2.
    pub name: &'static str,
    /// minic source.
    pub source: &'static str,
    /// What the original program does.
    pub description: &'static str,
}

impl Workload {
    /// Lines of minic source (the `#LOC` column analog).
    pub fn loc(&self) -> usize {
        self.source
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count()
    }

    /// Compiles this workload for `target`.
    ///
    /// # Panics
    ///
    /// Panics if the bundled source fails to compile (a bug in this
    /// crate, covered by tests).
    pub fn compile(&self, target: TargetConfig) -> Module {
        llva_minic::compile(self.source, self.name, target)
            .unwrap_or_else(|e| panic!("workload {} failed to compile: {e}", self.name))
    }
}

/// All 17 workloads, in the paper's Table 2 order.
pub fn all() -> Vec<Workload> {
    vec![
        Workload {
            name: "ptrdist-anagram",
            source: ptrdist::ANAGRAM,
            description: "dictionary anagram finding",
        },
        Workload {
            name: "ptrdist-ks",
            source: ptrdist::KS,
            description: "Kernighan-Schweikert graph partitioning",
        },
        Workload {
            name: "ptrdist-ft",
            source: ptrdist::FT,
            description: "minimum spanning tree",
        },
        Workload {
            name: "ptrdist-yacr2",
            source: ptrdist::YACR2,
            description: "VLSI channel routing",
        },
        Workload {
            name: "ptrdist-bc",
            source: ptrdist::BC,
            description: "calculator (recursive descent evaluation)",
        },
        Workload {
            name: "179.art",
            source: specfp::ART,
            description: "adaptive resonance neural network",
        },
        Workload {
            name: "183.equake",
            source: specfp::EQUAKE,
            description: "seismic wave propagation",
        },
        Workload {
            name: "181.mcf",
            source: specint::MCF,
            description: "minimum-cost network flow",
        },
        Workload {
            name: "256.bzip2",
            source: specint::BZIP2,
            description: "block-sorting compression",
        },
        Workload {
            name: "164.gzip",
            source: specint::GZIP,
            description: "LZ77 compression",
        },
        Workload {
            name: "197.parser",
            source: specint::PARSER,
            description: "natural-language grammar checking",
        },
        Workload {
            name: "188.ammp",
            source: specfp::AMMP,
            description: "molecular dynamics",
        },
        Workload {
            name: "175.vpr",
            source: specint::VPR,
            description: "FPGA placement",
        },
        Workload {
            name: "300.twolf",
            source: specint::TWOLF,
            description: "standard-cell place and route (annealing)",
        },
        Workload {
            name: "186.crafty",
            source: specint::CRAFTY,
            description: "game-tree (alpha-beta) search",
        },
        Workload {
            name: "255.vortex",
            source: specint::VORTEX,
            description: "object-oriented database transactions",
        },
        Workload {
            name: "254.gap",
            source: specint::GAP,
            description: "computational group theory",
        },
    ]
}

/// Looks a workload up by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventeen_workloads_like_table_2() {
        assert_eq!(all().len(), 17);
    }

    #[test]
    fn all_compile_and_verify_for_both_targets() {
        for w in all() {
            for target in [TargetConfig::ia32(), TargetConfig::sparc_v9()] {
                let m = w.compile(target);
                llva_core::verifier::verify_module(&m)
                    .unwrap_or_else(|e| panic!("{}: {e}", w.name));
                assert!(m.total_insts() > 0, "{}", w.name);
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("181.mcf").is_some());
        assert!(by_name("nonexistent").is_none());
        assert!(by_name("ptrdist-bc").unwrap().loc() > 10);
    }
}
