//! The OS-independent storage API (paper §4.1).
//!
//! > "The V-ABI defines a standard, OS-independent storage API with a
//! > set of routines that enables LLEE to read, write, and validate
//! > data in offline storage. … the basic storage API includes
//! > routines to create, delete, and query the size of an offline
//! > cache, read or write a vector of N bytes tagged by a unique
//! > string name from/to a cache, and check a timestamp on an LLVA
//! > program or on a cached vector."
//!
//! An OS implements [`Storage`] to enable offline translation and
//! caching; it is "strictly optional and the system will operate
//! correctly in their absence". Two implementations are provided:
//! an in-memory one (tests / OS-less operation, like DAISY/Crusoe's
//! memory-only translation cache) and a directory-backed one (the
//! user-level POSIX LLEE of §4.1).

use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Suffix appended to a quarantined entry's name (see
/// [`Storage::quarantine`]).
pub const QUARANTINE_SUFFIX: &str = ".quar";

/// The storage API of §4.1. All methods are infallible-or-`Option`
/// because a failed cache interaction must never break execution.
pub trait Storage {
    /// Creates (or opens) a named cache.
    fn create_cache(&mut self, cache: &str);

    /// Deletes a cache and everything in it.
    fn delete_cache(&mut self, cache: &str);

    /// Total bytes stored in a cache, or `None` if it does not exist.
    fn cache_size(&self, cache: &str) -> Option<u64>;

    /// Writes a named vector of bytes with a timestamp tag.
    fn write(&mut self, cache: &str, name: &str, bytes: &[u8], timestamp: u64);

    /// Reads a named vector and its timestamp.
    fn read(&self, cache: &str, name: &str) -> Option<(Vec<u8>, u64)>;

    /// Checks the timestamp of a named vector without reading it.
    fn timestamp(&self, cache: &str, name: &str) -> Option<u64>;

    /// Removes a single named vector (no-op if absent). Part of the
    /// fault-tolerance protocol: LLEE removes entries that fail frame
    /// validation so a bad blob is never served twice.
    fn remove(&mut self, cache: &str, name: &str);

    /// Moves a corrupt entry aside under [`QUARANTINE_SUFFIX`] (keeping
    /// the bytes for post-mortem inspection) and removes the original,
    /// so the next lookup misses cleanly and retranslation rewrites it.
    fn quarantine(&mut self, cache: &str, name: &str) {
        if let Some((bytes, ts)) = self.read(cache, name) {
            self.write(cache, &format!("{name}{QUARANTINE_SUFFIX}"), &bytes, ts);
        }
        self.remove(cache, name);
    }

    /// The on-disk path of a named vector, when this storage keeps
    /// entries as individual files ([`DirStorage`]). `None` for
    /// in-memory backends, for absent entries, and for wrappers that
    /// intercept reads (fault injection must not be bypassed by a
    /// caller mapping the file directly). Callers use this as a
    /// zero-copy fast path (`mmap`) and must fall back to
    /// [`Storage::read`] when it returns `None`.
    fn file_path(&self, cache: &str, name: &str) -> Option<PathBuf> {
        let _ = (cache, name);
        None
    }

    /// Writes several `(name, bytes, timestamp)` entries as one logical
    /// flush. The default just loops [`Storage::write`]; wrappers with a
    /// real notion of a dirty batch ([`SyncStorage`]) override this so a
    /// panic mid-flush can discard the remainder instead of replaying a
    /// half-written batch later.
    fn write_batch(&mut self, cache: &str, entries: &[(String, Vec<u8>, u64)]) {
        for (name, bytes, ts) in entries {
            self.write(cache, name, bytes, *ts);
        }
    }
}

/// A purely in-memory storage (no OS support — entries die with the
/// process, exactly like DAISY and Crusoe's in-memory caches).
#[derive(Debug, Default, Clone)]
pub struct MemStorage {
    caches: HashMap<String, HashMap<String, (Vec<u8>, u64)>>,
}

impl MemStorage {
    /// Creates an empty storage.
    pub fn new() -> MemStorage {
        MemStorage::default()
    }
}

impl Storage for MemStorage {
    fn create_cache(&mut self, cache: &str) {
        self.caches.entry(cache.to_string()).or_default();
    }

    fn delete_cache(&mut self, cache: &str) {
        self.caches.remove(cache);
    }

    fn cache_size(&self, cache: &str) -> Option<u64> {
        Some(
            self.caches
                .get(cache)?
                .values()
                .map(|(b, _)| b.len() as u64)
                .sum(),
        )
    }

    fn write(&mut self, cache: &str, name: &str, bytes: &[u8], timestamp: u64) {
        self.caches
            .entry(cache.to_string())
            .or_default()
            .insert(name.to_string(), (bytes.to_vec(), timestamp));
    }

    fn read(&self, cache: &str, name: &str) -> Option<(Vec<u8>, u64)> {
        self.caches.get(cache)?.get(name).cloned()
    }

    fn timestamp(&self, cache: &str, name: &str) -> Option<u64> {
        self.caches.get(cache)?.get(name).map(|(_, t)| *t)
    }

    fn remove(&mut self, cache: &str, name: &str) {
        if let Some(entries) = self.caches.get_mut(cache) {
            entries.remove(name);
        }
    }
}

/// Directory-backed storage: each vector is a file whose first 8 bytes
/// are the little-endian timestamp (the user-level LLEE of §4.1 that
/// "reads and writes disk files directly").
#[derive(Debug, Clone)]
pub struct DirStorage {
    root: PathBuf,
}

/// Marker embedded in the names of in-flight temp files; a crash
/// between write and rename leaves one behind, and the startup sweep
/// garbage-collects anything bearing it.
const TMP_MARKER: &str = ".__tmp";

impl DirStorage {
    /// Creates storage rooted at `root` (created on demand) and sweeps
    /// temp files orphaned by earlier crashed writers — both cache-entry
    /// temps inside cache subdirectories and partially-written module
    /// images ([`crate::image::IMAGE_TMP_MARKER`]), which may sit at the
    /// root level next to the cache directories.
    pub fn new(root: impl Into<PathBuf>) -> DirStorage {
        let storage = DirStorage { root: root.into() };
        sweep_orphaned_tmp(&storage.root);
        if let Ok(dir) = std::fs::read_dir(&storage.root) {
            for entry in dir.flatten() {
                sweep_orphaned_tmp(&entry.path());
            }
        }
        storage
    }

    fn cache_dir(&self, cache: &str) -> PathBuf {
        self.root.join(sanitize(cache))
    }

    fn entry_path(&self, cache: &str, name: &str) -> PathBuf {
        self.cache_dir(cache).join(sanitize(name))
    }
}

/// Deletes files under `dir` whose names carry [`TMP_MARKER`] or the
/// image writer's [`crate::image::IMAGE_TMP_MARKER`] — both are
/// in-flight tmp+rename writes a killed process never renamed.
fn sweep_orphaned_tmp(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.contains(TMP_MARKER) || name.contains(crate::image::IMAGE_TMP_MARKER) {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

impl fmt::Display for DirStorage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DirStorage({})", self.root.display())
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl Storage for DirStorage {
    fn create_cache(&mut self, cache: &str) {
        let dir = self.cache_dir(cache);
        let _ = std::fs::create_dir_all(&dir);
        sweep_orphaned_tmp(&dir);
    }

    fn delete_cache(&mut self, cache: &str) {
        let _ = std::fs::remove_dir_all(self.cache_dir(cache));
    }

    fn cache_size(&self, cache: &str) -> Option<u64> {
        let dir = std::fs::read_dir(self.cache_dir(cache)).ok()?;
        Some(
            dir.flatten()
                .filter(|e| !e.file_name().to_string_lossy().contains(TMP_MARKER))
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .sum(),
        )
    }

    fn write(&mut self, cache: &str, name: &str, bytes: &[u8], timestamp: u64) {
        let dir = self.cache_dir(cache);
        let _ = std::fs::create_dir_all(&dir);
        let mut blob = timestamp.to_le_bytes().to_vec();
        blob.extend_from_slice(bytes);
        // write-to-temp + rename: readers never observe a torn entry,
        // and a crash mid-write leaves only a swept-on-startup temp file
        let tmp = dir.join(format!(
            "{}{TMP_MARKER}{}",
            sanitize(name),
            std::process::id()
        ));
        if std::fs::write(&tmp, blob).is_ok()
            && std::fs::rename(&tmp, self.entry_path(cache, name)).is_err()
        {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    fn read(&self, cache: &str, name: &str) -> Option<(Vec<u8>, u64)> {
        let blob = std::fs::read(self.entry_path(cache, name)).ok()?;
        if blob.len() < 8 {
            return None;
        }
        let ts = u64::from_le_bytes(blob[..8].try_into().ok()?);
        Some((blob[8..].to_vec(), ts))
    }

    fn timestamp(&self, cache: &str, name: &str) -> Option<u64> {
        self.read(cache, name).map(|(_, t)| t)
    }

    fn remove(&mut self, cache: &str, name: &str) {
        let _ = std::fs::remove_file(self.entry_path(cache, name));
    }

    fn file_path(&self, cache: &str, name: &str) -> Option<PathBuf> {
        let path = self.entry_path(cache, name);
        path.is_file().then_some(path)
    }
}

/// A cloneable handle sharing one underlying storage — lets a test or
/// benchmark keep inspecting the cache that an execution manager owns a
/// boxed handle to.
#[derive(Debug, Default)]
pub struct SharedStorage<S>(std::rc::Rc<std::cell::RefCell<S>>);

// manual impl: cloning the handle must not require S: Clone
impl<S> Clone for SharedStorage<S> {
    fn clone(&self) -> SharedStorage<S> {
        SharedStorage(std::rc::Rc::clone(&self.0))
    }
}

impl<S: Storage> SharedStorage<S> {
    /// Wraps `storage` in a shared handle.
    pub fn new(storage: S) -> SharedStorage<S> {
        SharedStorage(std::rc::Rc::new(std::cell::RefCell::new(storage)))
    }

    /// Runs `f` with direct access to the wrapped storage (e.g. to
    /// drive the fault hooks of a [`FaultyStorage`] it shares with an
    /// execution manager).
    pub fn with<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        f(&mut self.0.borrow_mut())
    }
}

impl<S: Storage> Storage for SharedStorage<S> {
    fn create_cache(&mut self, cache: &str) {
        self.0.borrow_mut().create_cache(cache);
    }
    fn delete_cache(&mut self, cache: &str) {
        self.0.borrow_mut().delete_cache(cache);
    }
    fn cache_size(&self, cache: &str) -> Option<u64> {
        self.0.borrow().cache_size(cache)
    }
    fn write(&mut self, cache: &str, name: &str, bytes: &[u8], timestamp: u64) {
        self.0.borrow_mut().write(cache, name, bytes, timestamp);
    }
    fn read(&self, cache: &str, name: &str) -> Option<(Vec<u8>, u64)> {
        self.0.borrow().read(cache, name)
    }
    fn timestamp(&self, cache: &str, name: &str) -> Option<u64> {
        self.0.borrow().timestamp(cache, name)
    }
    fn remove(&mut self, cache: &str, name: &str) {
        self.0.borrow_mut().remove(cache, name);
    }
    fn quarantine(&mut self, cache: &str, name: &str) {
        self.0.borrow_mut().quarantine(cache, name);
    }
    fn file_path(&self, cache: &str, name: &str) -> Option<PathBuf> {
        self.0.borrow().file_path(cache, name)
    }
}

/// A `Send + Sync` cloneable handle sharing one underlying storage —
/// the thread-safe sibling of [`SharedStorage`] for use with the
/// parallel offline translator ([`crate::llee::ExecutionManager::translate_all_parallel`])
/// or for sharing one cache across execution managers on different
/// threads. All operations take the mutex for their duration; the
/// storage contract says failures must never break execution, so a
/// poisoned lock is recovered rather than propagated.
#[derive(Debug, Default)]
pub struct SyncStorage<S>(std::sync::Arc<std::sync::Mutex<SyncInner<S>>>);

/// The state behind a [`SyncStorage`] lock: the storage itself plus the
/// dirty batch of an in-progress [`Storage::write_batch`]. Keeping the
/// batch *inside* the mutex is the point: if the flushing thread
/// panics, the poison-recovery path can see exactly which writes were
/// in flight and discard them, so a half-flushed batch is never
/// replayed against a storage whose durable state it no longer matches.
#[derive(Debug, Default)]
struct SyncInner<S> {
    storage: S,
    in_flight: Vec<(String, String, Vec<u8>, u64)>,
}

// manual impl: cloning the handle must not require S: Clone
impl<S> Clone for SyncStorage<S> {
    fn clone(&self) -> SyncStorage<S> {
        SyncStorage(std::sync::Arc::clone(&self.0))
    }
}

impl<S: Storage> SyncStorage<S> {
    /// Wraps `storage` in a thread-shared handle.
    pub fn new(storage: S) -> SyncStorage<S> {
        SyncStorage(std::sync::Arc::new(std::sync::Mutex::new(SyncInner {
            storage,
            in_flight: Vec::new(),
        })))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SyncInner<S>> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poison) => {
                // a holder panicked mid-operation: recover the lock and
                // drop whatever batch it was flushing — the durable
                // writes already landed, the rest must not be replayed
                self.0.clear_poison();
                let mut guard = poison.into_inner();
                guard.in_flight.clear();
                guard
            }
        }
    }

    /// Runs `f` with direct access to the wrapped storage, recovering
    /// the lock if a previous holder panicked.
    pub fn with<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        f(&mut self.lock().storage)
    }

    /// Entries of a write batch still awaiting durable write (non-zero
    /// only while a flush is in progress; always zero after poison
    /// recovery — the regression surface for half-flushed batches).
    pub fn pending_batch_len(&self) -> usize {
        self.lock().in_flight.len()
    }
}

impl<S: Storage> Storage for SyncStorage<S> {
    fn create_cache(&mut self, cache: &str) {
        self.lock().storage.create_cache(cache);
    }
    fn delete_cache(&mut self, cache: &str) {
        self.lock().storage.delete_cache(cache);
    }
    fn cache_size(&self, cache: &str) -> Option<u64> {
        self.lock().storage.cache_size(cache)
    }
    fn write(&mut self, cache: &str, name: &str, bytes: &[u8], timestamp: u64) {
        self.lock().storage.write(cache, name, bytes, timestamp);
    }
    fn read(&self, cache: &str, name: &str) -> Option<(Vec<u8>, u64)> {
        self.lock().storage.read(cache, name)
    }
    fn timestamp(&self, cache: &str, name: &str) -> Option<u64> {
        self.lock().storage.timestamp(cache, name)
    }
    fn remove(&mut self, cache: &str, name: &str) {
        self.lock().storage.remove(cache, name);
    }
    fn quarantine(&mut self, cache: &str, name: &str) {
        self.lock().storage.quarantine(cache, name);
    }
    fn file_path(&self, cache: &str, name: &str) -> Option<PathBuf> {
        self.lock().storage.file_path(cache, name)
    }
    fn write_batch(&mut self, cache: &str, entries: &[(String, Vec<u8>, u64)]) {
        let mut guard = self.lock();
        guard.in_flight = entries
            .iter()
            .map(|(n, b, t)| (cache.to_string(), n.clone(), b.clone(), *t))
            .collect();
        // drain front-to-back so that if an inner write panics, the
        // dirty remainder (including the entry whose durability is now
        // unknown) is still in `in_flight` for poison recovery to drop
        while !guard.in_flight.is_empty() {
            let (c, n, b, t) = guard.in_flight[0].clone();
            guard.storage.write(&c, &n, &b, t);
            guard.in_flight.remove(0);
        }
    }
}

/// Trait-object passthrough so storage stacks can be composed behind a
/// `Box<dyn Storage + Send>` (the serving layer shards over boxed
/// storages whose concrete type is chosen at runtime).
impl<T: Storage + ?Sized> Storage for Box<T> {
    fn create_cache(&mut self, cache: &str) {
        (**self).create_cache(cache);
    }
    fn delete_cache(&mut self, cache: &str) {
        (**self).delete_cache(cache);
    }
    fn cache_size(&self, cache: &str) -> Option<u64> {
        (**self).cache_size(cache)
    }
    fn write(&mut self, cache: &str, name: &str, bytes: &[u8], timestamp: u64) {
        (**self).write(cache, name, bytes, timestamp);
    }
    fn read(&self, cache: &str, name: &str) -> Option<(Vec<u8>, u64)> {
        (**self).read(cache, name)
    }
    fn timestamp(&self, cache: &str, name: &str) -> Option<u64> {
        (**self).timestamp(cache, name)
    }
    fn remove(&mut self, cache: &str, name: &str) {
        (**self).remove(cache, name);
    }
    fn quarantine(&mut self, cache: &str, name: &str) {
        (**self).quarantine(cache, name);
    }
    fn file_path(&self, cache: &str, name: &str) -> Option<PathBuf> {
        (**self).file_path(cache, name)
    }
    fn write_batch(&mut self, cache: &str, entries: &[(String, Vec<u8>, u64)]) {
        (**self).write_batch(cache, entries);
    }
}

/// FNV-1a over an entry name — the shard-routing hash of
/// [`ShardedStorage`]. Deterministic and stable across processes, so a
/// fleet of services sharing one directory tree routes identically.
#[must_use]
pub fn shard_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A sharded, thread-safe storage: N independent [`SyncStorage`] shards
/// with entries routed by [`shard_hash`] of the entry name. Contention
/// on the translation cache then scales with the shard count instead of
/// serializing every tenant behind one mutex, and a poisoned shard
/// (a panicking writer) degrades only the functions hashed to it —
/// every shard recovers independently via [`SyncStorage`]'s
/// poison-recovery path.
///
/// Cloning yields another handle to the same shards (cheap, `Arc`).
#[derive(Debug)]
pub struct ShardedStorage<S> {
    shards: std::sync::Arc<[SyncStorage<S>]>,
}

// manual impl: cloning the handle must not require S: Clone
impl<S> Clone for ShardedStorage<S> {
    fn clone(&self) -> ShardedStorage<S> {
        ShardedStorage { shards: std::sync::Arc::clone(&self.shards) }
    }
}

impl<S: Storage> ShardedStorage<S> {
    /// `shards` storages (at least 1), one per shard, built by `mk`
    /// (called with the shard index — e.g. to give each shard its own
    /// directory or fault seed).
    pub fn new(shards: usize, mut mk: impl FnMut(usize) -> S) -> ShardedStorage<S> {
        let n = shards.max(1);
        ShardedStorage {
            shards: (0..n).map(|i| SyncStorage::new(mk(i))).collect(),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index entry `name` routes to.
    #[must_use]
    pub fn shard_index(&self, name: &str) -> usize {
        (shard_hash(name) % self.shards.len() as u64) as usize
    }

    /// Direct access to one shard (tests and fault-injection drivers).
    #[must_use]
    pub fn shard(&self, i: usize) -> &SyncStorage<S> {
        &self.shards[i]
    }

    /// Sum of [`SyncStorage::pending_batch_len`] across shards — zero
    /// whenever no flush is in progress; the poison-leak regression
    /// surface for the whole sharded cache.
    #[must_use]
    pub fn pending_batch_total(&self) -> usize {
        self.shards.iter().map(SyncStorage::pending_batch_len).sum()
    }

    fn route(&self, name: &str) -> &SyncStorage<S> {
        &self.shards[self.shard_index(name)]
    }
}

impl<S: Storage> Storage for ShardedStorage<S> {
    fn create_cache(&mut self, cache: &str) {
        for shard in self.shards.iter() {
            shard.lock().storage.create_cache(cache);
        }
    }
    fn delete_cache(&mut self, cache: &str) {
        for shard in self.shards.iter() {
            shard.lock().storage.delete_cache(cache);
        }
    }
    fn cache_size(&self, cache: &str) -> Option<u64> {
        // Some if any shard knows the cache (they are created on all
        // shards together; a fresh shard may legitimately hold nothing)
        let sizes: Vec<u64> = self
            .shards
            .iter()
            .filter_map(|s| s.cache_size(cache))
            .collect();
        if sizes.is_empty() {
            None
        } else {
            Some(sizes.iter().sum())
        }
    }
    fn write(&mut self, cache: &str, name: &str, bytes: &[u8], timestamp: u64) {
        self.route(name).lock().storage.write(cache, name, bytes, timestamp);
    }
    fn read(&self, cache: &str, name: &str) -> Option<(Vec<u8>, u64)> {
        self.route(name).read(cache, name)
    }
    fn timestamp(&self, cache: &str, name: &str) -> Option<u64> {
        self.route(name).timestamp(cache, name)
    }
    fn remove(&mut self, cache: &str, name: &str) {
        self.route(name).lock().storage.remove(cache, name);
    }
    fn file_path(&self, cache: &str, name: &str) -> Option<PathBuf> {
        self.route(name).file_path(cache, name)
    }
    // `quarantine` deliberately keeps the default trait implementation:
    // the preserved `.quar` copy routes by its own name, so lookups of
    // either name stay consistent with the routing function.
    fn write_batch(&mut self, cache: &str, entries: &[(String, Vec<u8>, u64)]) {
        // split the batch by shard and flush each sub-batch through the
        // shard's own write_batch, preserving per-shard poison recovery
        let mut per_shard: Vec<Vec<(String, Vec<u8>, u64)>> =
            vec![Vec::new(); self.shards.len()];
        for e in entries {
            per_shard[self.shard_index(&e.0)].push(e.clone());
        }
        for (i, batch) in per_shard.into_iter().enumerate() {
            if !batch.is_empty() {
                let mut shard = self.shards[i].clone();
                shard.write_batch(cache, &batch);
            }
        }
    }
}

/// How often [`FaultyStorage`] injects each fault class. Every knob is
/// "about 1 in N operations" (`0` = never). Faults are drawn from a
/// seeded xorshift PRNG, so the same seed over the same operation
/// sequence reproduces the same faults exactly — fault-injection runs
/// are deterministic and debuggable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// PRNG seed.
    pub seed: u64,
    /// Reads that fail outright (entry appears missing).
    pub read_fail: u32,
    /// Reads whose returned bytes are truncated at a random point.
    pub read_truncate: u32,
    /// Reads with one random bit flipped (bit rot).
    pub read_bit_flip: u32,
    /// Writes that persist only a prefix of the bytes (torn write).
    pub torn_write: u32,
    /// Reads that report a perturbed timestamp.
    pub stale_timestamp: u32,
}

impl FaultPlan {
    /// No faults — a pass-through wrapper (useful for warming a cache
    /// before switching to a hostile plan).
    pub fn none(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            read_fail: 0,
            read_truncate: 0,
            read_bit_flip: 0,
            torn_write: 0,
            stale_timestamp: 0,
        }
    }

    /// Flips a bit in every read — the acceptance scenario for the
    /// degradation ladder: with corruption on every read, execution
    /// must match a manager with no storage at all.
    pub fn corrupt_every_read(seed: u64) -> FaultPlan {
        FaultPlan {
            read_bit_flip: 1,
            ..FaultPlan::none(seed)
        }
    }

    /// Everything at once, each fault class roughly 1-in-4.
    pub fn chaos(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            read_fail: 5,
            read_truncate: 4,
            read_bit_flip: 3,
            torn_write: 4,
            stale_timestamp: 5,
        }
    }
}

/// Counts of faults actually injected by a [`FaultyStorage`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultLog {
    /// Reads turned into misses.
    pub failed_reads: u64,
    /// Reads returned truncated.
    pub truncated_reads: u64,
    /// Reads returned with a flipped bit.
    pub flipped_reads: u64,
    /// Writes that persisted only a prefix.
    pub torn_writes: u64,
    /// Timestamps perturbed on read.
    pub stale_timestamps: u64,
}

impl FaultLog {
    /// Total faults injected across all classes.
    pub fn total(&self) -> u64 {
        self.failed_reads
            + self.truncated_reads
            + self.flipped_reads
            + self.torn_writes
            + self.stale_timestamps
    }
}

/// A deterministic fault-injection wrapper around any [`Storage`]: the
/// test double for hostile or failing OS storage (torn writes, bit rot,
/// lost entries, stale metadata). LLEE must ride out anything this
/// wrapper does — §4.1's "operate correctly in their absence" extended
/// to *presence with faults*.
#[derive(Debug)]
pub struct FaultyStorage<S> {
    inner: S,
    plan: FaultPlan,
    rng: Cell<u64>,
    log: Cell<FaultLog>,
    /// Countdown to an injected panic mid-`write` (0 = disarmed); see
    /// [`FaultyStorage::arm_write_panic`].
    write_panic_in: Cell<u32>,
    /// Next N reads fail outright (transient outage, deterministic).
    read_fail_next: Cell<u32>,
    /// Next N reads get one bit flipped (transient corruption).
    read_corrupt_next: Cell<u32>,
}

impl<S: Storage> FaultyStorage<S> {
    /// Wraps `inner`, injecting faults per `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> FaultyStorage<S> {
        FaultyStorage {
            inner,
            plan,
            rng: Cell::new(plan.seed.max(1)),
            log: Cell::new(FaultLog::default()),
            write_panic_in: Cell::new(0),
            read_fail_next: Cell::new(0),
            read_corrupt_next: Cell::new(0),
        }
    }

    /// Arms a panic on the `n`-th subsequent `write` (1 = the very next
    /// one), *after* the inner write would have started — the test hook
    /// for a crash mid-flush. Disarmed once fired.
    pub fn arm_write_panic(&mut self, n: u32) {
        self.write_panic_in.set(n);
    }

    /// Makes the next `n` reads fail outright (return `None`), then
    /// behave normally — a deterministic transient outage, as opposed
    /// to the probabilistic `read_fail` plan knob.
    pub fn arm_read_fail(&mut self, n: u32) {
        self.read_fail_next.set(n);
    }

    /// Flips one bit in each of the next `n` reads, then behaves
    /// normally — deterministic transient bit rot (the blob in storage
    /// stays pristine; only the returned copy is damaged).
    pub fn arm_read_corrupt(&mut self, n: u32) {
        self.read_corrupt_next.set(n);
    }

    /// The active fault plan.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Swaps the fault plan (and reseeds the PRNG from it) — e.g. warm
    /// the cache fault-free, then turn corruption on.
    pub fn set_plan(&mut self, plan: FaultPlan) {
        self.plan = plan;
        self.rng.set(plan.seed.max(1));
    }

    /// Faults injected so far.
    pub fn log(&self) -> FaultLog {
        self.log.get()
    }

    /// The wrapped storage.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps the inner storage.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Deterministically flips one bit of a stored entry *in place*
    /// (independent of the probabilistic plan) — the harness hook for
    /// "corrupt exactly this entry" tests. Returns whether the entry
    /// existed and was non-empty.
    pub fn corrupt_entry(&mut self, cache: &str, name: &str) -> bool {
        let Some((mut bytes, ts)) = self.inner.read(cache, name) else {
            return false;
        };
        if bytes.is_empty() {
            return false;
        }
        let i = self.next() as usize % bytes.len();
        bytes[i] ^= 1 << (self.next() % 8);
        self.inner.write(cache, name, &bytes, ts);
        true
    }

    /// xorshift64* (same generator as `tests/proptest_core.rs`); `Cell`
    /// state so the `&self` read path can draw faults.
    fn next(&self) -> u64 {
        let mut x = self.rng.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng.set(x);
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn roll(&self, one_in: u32) -> bool {
        one_in != 0 && self.next().is_multiple_of(u64::from(one_in))
    }

    fn bump(&self, f: impl FnOnce(&mut FaultLog)) {
        let mut log = self.log.get();
        f(&mut log);
        self.log.set(log);
    }
}

impl<S: Storage> Storage for FaultyStorage<S> {
    // `file_path` deliberately keeps the default `None`: a caller that
    // mapped the underlying file directly would bypass every read-side
    // fault hook, making chaos runs quietly easier than production.
    fn create_cache(&mut self, cache: &str) {
        self.inner.create_cache(cache);
    }

    fn delete_cache(&mut self, cache: &str) {
        self.inner.delete_cache(cache);
    }

    fn cache_size(&self, cache: &str) -> Option<u64> {
        self.inner.cache_size(cache)
    }

    fn write(&mut self, cache: &str, name: &str, bytes: &[u8], timestamp: u64) {
        let armed = self.write_panic_in.get();
        if armed > 0 {
            self.write_panic_in.set(armed - 1);
            if armed == 1 {
                panic!("injected storage panic during write of '{cache}/{name}'");
            }
        }
        if self.roll(self.plan.torn_write) && !bytes.is_empty() {
            let keep = self.next() as usize % bytes.len();
            self.bump(|l| l.torn_writes += 1);
            self.inner.write(cache, name, &bytes[..keep], timestamp);
        } else {
            self.inner.write(cache, name, bytes, timestamp);
        }
    }

    fn read(&self, cache: &str, name: &str) -> Option<(Vec<u8>, u64)> {
        let (mut bytes, mut ts) = self.inner.read(cache, name)?;
        if self.read_fail_next.get() > 0 {
            self.read_fail_next.set(self.read_fail_next.get() - 1);
            self.bump(|l| l.failed_reads += 1);
            return None;
        }
        if self.read_corrupt_next.get() > 0 && !bytes.is_empty() {
            self.read_corrupt_next.set(self.read_corrupt_next.get() - 1);
            let i = self.next() as usize % bytes.len();
            bytes[i] ^= 1 << (self.next() % 8);
            self.bump(|l| l.flipped_reads += 1);
        }
        if self.roll(self.plan.read_fail) {
            self.bump(|l| l.failed_reads += 1);
            return None;
        }
        if self.roll(self.plan.read_truncate) && !bytes.is_empty() {
            let keep = self.next() as usize % bytes.len();
            bytes.truncate(keep);
            self.bump(|l| l.truncated_reads += 1);
        }
        if self.roll(self.plan.read_bit_flip) && !bytes.is_empty() {
            let i = self.next() as usize % bytes.len();
            bytes[i] ^= 1 << (self.next() % 8);
            self.bump(|l| l.flipped_reads += 1);
        }
        if self.roll(self.plan.stale_timestamp) {
            ts ^= 0x5a5a;
            self.bump(|l| l.stale_timestamps += 1);
        }
        Some((bytes, ts))
    }

    fn timestamp(&self, cache: &str, name: &str) -> Option<u64> {
        let mut ts = self.inner.timestamp(cache, name)?;
        if self.roll(self.plan.stale_timestamp) {
            ts ^= 0x5a5a;
            self.bump(|l| l.stale_timestamps += 1);
        }
        Some(ts)
    }

    fn remove(&mut self, cache: &str, name: &str) {
        self.inner.remove(cache, name);
    }

    fn quarantine(&mut self, cache: &str, name: &str) {
        // quarantine bypasses fault injection: it is LLEE's recovery
        // action and must see the inner storage's true contents
        self.inner.quarantine(cache, name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(storage: &mut dyn Storage) {
        storage.create_cache("app");
        assert_eq!(storage.cache_size("app"), Some(0));
        storage.write("app", "fn0", b"code0", 100);
        storage.write("app", "fn1", b"code11", 101);
        assert_eq!(storage.read("app", "fn0"), Some((b"code0".to_vec(), 100)));
        assert_eq!(storage.timestamp("app", "fn1"), Some(101));
        assert_eq!(storage.cache_size("app").map(|s| s > 0), Some(true));
        storage.write("app", "fn0", b"newer", 200);
        assert_eq!(storage.read("app", "fn0"), Some((b"newer".to_vec(), 200)));
        assert_eq!(storage.read("app", "nope"), None);
        assert_eq!(storage.read("ghost", "fn0"), None);
        // remove deletes exactly one entry; removing again is a no-op
        storage.remove("app", "fn0");
        assert_eq!(storage.read("app", "fn0"), None);
        assert_eq!(storage.timestamp("app", "fn1"), Some(101));
        storage.remove("app", "fn0");
        storage.remove("ghost", "fn0");
        // quarantine moves the entry aside and clears the original name
        storage.quarantine("app", "fn1");
        assert_eq!(storage.read("app", "fn1"), None);
        assert_eq!(
            storage.read("app", &format!("fn1{QUARANTINE_SUFFIX}")),
            Some((b"code11".to_vec(), 101))
        );
        storage.delete_cache("app");
        assert_eq!(storage.read("app", "fn0"), None);
    }

    #[test]
    fn mem_storage_contract() {
        let mut s = MemStorage::new();
        exercise(&mut s);
    }

    #[test]
    fn dir_storage_contract() {
        let dir = std::env::temp_dir().join(format!("llva-storage-test-{}", std::process::id()));
        let mut s = DirStorage::new(&dir);
        exercise(&mut s);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dir_storage_persists_across_instances() {
        let dir = std::env::temp_dir().join(format!("llva-storage-persist-{}", std::process::id()));
        {
            let mut s = DirStorage::new(&dir);
            s.write("app", "fn0", b"persistent", 7);
        }
        {
            let s = DirStorage::new(&dir);
            assert_eq!(s.read("app", "fn0"), Some((b"persistent".to_vec(), 7)));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sync_storage_contract() {
        let mut s = SyncStorage::new(MemStorage::new());
        exercise(&mut s);
    }

    #[test]
    fn sync_storage_is_send_and_shares_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SyncStorage<MemStorage>>();

        let storage = SyncStorage::new(MemStorage::new());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let mut handle = storage.clone();
                scope.spawn(move || {
                    handle.write("app", &format!("fn{t}"), &[t as u8; 4], t);
                });
            }
        });
        for t in 0..4u64 {
            assert_eq!(
                storage.read("app", &format!("fn{t}")),
                Some((vec![t as u8; 4], t))
            );
        }
    }

    #[test]
    fn sanitize_rejects_path_tricks() {
        // path separators are neutralized; the result is one filename
        assert_eq!(sanitize("../../etc/passwd"), ".._.._etc_passwd");
        assert!(!sanitize("../../etc/passwd").contains('/'));
        assert_eq!(sanitize("fn0.x86"), "fn0.x86");
    }

    #[test]
    fn shared_and_faulty_storage_contracts() {
        let mut shared = SharedStorage::new(MemStorage::new());
        exercise(&mut shared);
        let mut faulty = FaultyStorage::new(MemStorage::new(), FaultPlan::none(7));
        exercise(&mut faulty);
        assert_eq!(faulty.log(), FaultLog::default(), "plan none injects nothing");
    }

    /// Panics on `write` while armed — the only way to poison a
    /// `SyncStorage` mutex from the public API.
    #[derive(Default)]
    struct PanickyStorage {
        armed: bool,
        inner: MemStorage,
    }

    impl Storage for PanickyStorage {
        fn create_cache(&mut self, cache: &str) {
            self.inner.create_cache(cache);
        }
        fn delete_cache(&mut self, cache: &str) {
            self.inner.delete_cache(cache);
        }
        fn cache_size(&self, cache: &str) -> Option<u64> {
            self.inner.cache_size(cache)
        }
        fn write(&mut self, cache: &str, name: &str, bytes: &[u8], timestamp: u64) {
            assert!(!self.armed, "injected writer panic");
            self.inner.write(cache, name, bytes, timestamp);
        }
        fn read(&self, cache: &str, name: &str) -> Option<(Vec<u8>, u64)> {
            self.inner.read(cache, name)
        }
        fn timestamp(&self, cache: &str, name: &str) -> Option<u64> {
            self.inner.timestamp(cache, name)
        }
        fn remove(&mut self, cache: &str, name: &str) {
            self.inner.remove(cache, name);
        }
    }

    #[test]
    fn sync_storage_survives_panicking_writer_thread() {
        let storage = SyncStorage::new(PanickyStorage::default());
        let mut warm = storage.clone();
        warm.write("app", "before", b"ok", 1);
        storage.with(|s| s.armed = true);
        // a writer thread panics while holding the mutex → poison
        let writer = storage.clone();
        let result = std::thread::spawn(move || {
            let mut writer = writer;
            writer.write("app", "boom", b"never lands", 2);
        })
        .join();
        assert!(result.is_err(), "writer thread must have panicked");
        // every lock site recovers the poison: the storage stays usable
        storage.with(|s| s.armed = false);
        assert_eq!(storage.read("app", "before"), Some((b"ok".to_vec(), 1)));
        assert_eq!(storage.cache_size("app"), Some(2));
        let mut after = storage.clone();
        after.write("app", "after", b"fine", 3);
        assert_eq!(storage.read("app", "after"), Some((b"fine".to_vec(), 3)));
        after.remove("app", "before");
        assert_eq!(storage.read("app", "before"), None);
    }

    #[test]
    fn poison_recovery_discards_half_flushed_batch() {
        // a panic mid-write_batch must not leave the dirty remainder
        // behind for a later lock holder to replay
        let storage = SyncStorage::new(FaultyStorage::new(MemStorage::new(), FaultPlan::none(7)));
        storage.with(|s| {
            s.create_cache("app");
            s.arm_write_panic(2); // the 2nd write of the flush panics
        });
        let batch = vec![
            ("fn0".to_string(), b"code0".to_vec(), 10),
            ("fn1".to_string(), b"code1".to_vec(), 11),
            ("fn2".to_string(), b"code2".to_vec(), 12),
        ];
        let flusher = storage.clone();
        let result = std::thread::spawn(move || {
            let mut flusher = flusher;
            flusher.write_batch("app", &batch);
        })
        .join();
        assert!(result.is_err(), "flush thread must have panicked");
        // recovery: the first entry landed before the panic, the rest of
        // the batch is discarded — not replayed by the next lock holder
        assert_eq!(storage.pending_batch_len(), 0, "dirty batch reset on recovery");
        assert_eq!(storage.read("app", "fn0"), Some((b"code0".to_vec(), 10)));
        assert_eq!(storage.read("app", "fn1"), None, "unflushed entry must not appear");
        assert_eq!(storage.read("app", "fn2"), None, "unflushed entry must not appear");
        // a fresh batch flushes normally and still does not resurrect
        // the dead entries
        let mut again = storage.clone();
        again.write_batch("app", &[("fn9".to_string(), b"code9".to_vec(), 19)]);
        assert_eq!(storage.read("app", "fn9"), Some((b"code9".to_vec(), 19)));
        assert_eq!(storage.read("app", "fn1"), None);
        assert_eq!(storage.pending_batch_len(), 0);
    }

    #[test]
    fn dir_storage_write_is_atomic_and_sweeps_orphans() {
        let dir = std::env::temp_dir().join(format!("llva-storage-atomic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut s = DirStorage::new(&dir);
            s.write("app", "fn0", b"payload", 9);
            // no temp files survive a completed write
            let leftovers: Vec<_> = std::fs::read_dir(dir.join("app"))
                .expect("cache dir")
                .flatten()
                .filter(|e| e.file_name().to_string_lossy().contains(TMP_MARKER))
                .collect();
            assert!(leftovers.is_empty(), "completed writes leave no temp files");
            // simulate a crash mid-write: a stray temp file appears
            std::fs::write(dir.join("app").join(format!("fn9{TMP_MARKER}999")), b"torn")
                .expect("writes");
        }
        {
            // a fresh instance sweeps the orphan and still serves data
            let s = DirStorage::new(&dir);
            assert_eq!(s.read("app", "fn0"), Some((b"payload".to_vec(), 9)));
            assert!(
                !std::fs::read_dir(dir.join("app"))
                    .expect("cache dir")
                    .flatten()
                    .any(|e| e.file_name().to_string_lossy().contains(TMP_MARKER)),
                "startup sweep collects orphaned temp files"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dir_storage_sweeps_orphaned_image_temp_files() {
        let marker = crate::image::IMAGE_TMP_MARKER;
        let dir = std::env::temp_dir().join(format!("llva-storage-imgtmp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("app")).expect("mkdir");
        // a killed process left half-written images behind: one at the
        // storage root (CLI image output) and one inside a cache dir
        std::fs::write(dir.join(format!("prog.llvi{marker}4242")), b"torn image")
            .expect("writes");
        std::fs::write(
            dir.join("app").join(format!("m0.llvi{marker}4242")),
            b"torn image",
        )
        .expect("writes");
        // a finished image must NOT be swept
        std::fs::write(dir.join("prog.llvi"), b"complete image").expect("writes");
        let s = DirStorage::new(&dir);
        let survivors: Vec<String> = std::fs::read_dir(&dir)
            .expect("root")
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            !survivors.iter().any(|n| n.contains(marker)),
            "root-level image temp files are swept, got {survivors:?}"
        );
        assert!(
            survivors.iter().any(|n| n == "prog.llvi"),
            "completed images survive the sweep"
        );
        assert!(
            !std::fs::read_dir(dir.join("app"))
                .expect("cache dir")
                .flatten()
                .any(|e| e.file_name().to_string_lossy().contains(marker)),
            "cache-level image temp files are swept"
        );
        drop(s);
        let _ = std::fs::remove_dir_all(&dir);
    }

    type ReadTrace = Vec<Option<(Vec<u8>, u64)>>;

    #[test]
    fn faulty_storage_is_deterministic_per_seed() {
        let run = |seed: u64| -> (ReadTrace, FaultLog) {
            let mut s = FaultyStorage::new(MemStorage::new(), FaultPlan::chaos(seed));
            let mut reads = Vec::new();
            for i in 0..64u64 {
                s.write("c", &format!("e{}", i % 8), &[i as u8; 16], i);
                reads.push(s.read("c", &format!("e{}", i % 8)));
            }
            (reads, s.log())
        };
        let (reads_a, log_a) = run(42);
        let (reads_b, log_b) = run(42);
        assert_eq!(reads_a, reads_b, "same seed, same faults");
        assert_eq!(log_a, log_b);
        assert!(log_a.total() > 0, "chaos plan injects faults");
        let (_, log_c) = run(43);
        assert_ne!(log_a, log_c, "different seed, different fault pattern");
    }

    #[test]
    fn sharded_storage_contract() {
        let mut s = ShardedStorage::new(4, |_| MemStorage::new());
        exercise(&mut s);
    }

    #[test]
    fn sharded_storage_routes_deterministically_and_spreads() {
        let s = ShardedStorage::new(8, |_| MemStorage::new());
        let mut hit = [false; 8];
        for i in 0..64 {
            let name = format!("mod.x86.fn{i}");
            assert_eq!(s.shard_index(&name), s.shard_index(&name));
            hit[s.shard_index(&name)] = true;
        }
        assert!(
            hit.iter().filter(|&&h| h).count() >= 4,
            "64 keys over 8 shards must touch at least half of them"
        );
        // a single shard degenerates to one storage and still works
        let one = ShardedStorage::new(1, |_| MemStorage::new());
        assert_eq!(one.shard_count(), 1);
        assert_eq!(one.shard_index("anything"), 0);
    }

    #[test]
    fn sharded_storage_handles_share_shards_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardedStorage<MemStorage>>();

        let storage = ShardedStorage::new(4, |_| MemStorage::new());
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let mut handle = storage.clone();
                scope.spawn(move || {
                    handle.create_cache("app");
                    handle.write("app", &format!("fn{t}"), &[t as u8; 8], t);
                });
            }
        });
        for t in 0..8u64 {
            assert_eq!(
                storage.read("app", &format!("fn{t}")),
                Some((vec![t as u8; 8], t)),
                "entry written by thread {t} must be visible from any handle"
            );
        }
        assert_eq!(storage.pending_batch_total(), 0);
    }

    #[test]
    fn sharded_storage_write_batch_splits_by_shard() {
        let mut storage = ShardedStorage::new(4, |_| MemStorage::new());
        storage.create_cache("app");
        let batch: Vec<(String, Vec<u8>, u64)> = (0..32u64)
            .map(|i| (format!("fn{i}"), vec![i as u8; 4], i))
            .collect();
        storage.write_batch("app", &batch);
        for (name, bytes, ts) in &batch {
            assert_eq!(storage.read("app", name), Some((bytes.clone(), *ts)));
        }
        assert_eq!(storage.pending_batch_total(), 0);
    }

    #[test]
    fn boxed_storage_passthrough() {
        let mut boxed: Box<dyn Storage + Send> = Box::new(MemStorage::new());
        exercise(&mut boxed);
        // boxed storages compose: a sharded storage over boxed inners
        let mut sharded: ShardedStorage<Box<dyn Storage + Send>> =
            ShardedStorage::new(2, |_| Box::new(MemStorage::new()) as Box<dyn Storage + Send>);
        exercise(&mut sharded);
    }

    #[test]
    fn faulty_storage_corrupt_entry_flips_exactly_one_bit() {
        let mut s = FaultyStorage::new(MemStorage::new(), FaultPlan::none(5));
        s.write("c", "e", &[0u8; 32], 1);
        assert!(s.corrupt_entry("c", "e"));
        let (bytes, ts) = s.read("c", "e").expect("entry");
        assert_eq!(ts, 1, "timestamp untouched");
        let flipped: u32 = bytes.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit differs");
        assert!(!s.corrupt_entry("c", "missing"));
    }
}
