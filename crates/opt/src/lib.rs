//! # llva-opt — optimization framework for the LLVA V-ISA
//!
//! Implements the optimization capabilities the paper attributes to the
//! rich persistent code representation (§4.2, §5.1):
//!
//! * [`pass`] — the pass manager and the standard / link-time pipelines,
//! * [`mem2reg`] — SSA promotion of stack slots (dominance frontiers),
//! * [`constfold`] — constant folding + algebraic simplification,
//! * [`gvn`] — dominator-scoped global value numbering,
//! * [`dce`] — dead-code elimination aware of `ExceptionsEnabled`,
//! * [`simplify_cfg`] — unreachable-block removal and block merging,
//! * [`licm`] — loop-invariant code motion (ExceptionsEnabled-aware),
//! * [`inline`] — link-time interprocedural inlining,
//! * [`internalize`] / [`globaldce`] — whole-program symbol cleanup,
//! * [`alias`] — field-sensitive alias analysis on typed pointers,
//! * [`load_elim`] — alias-aware redundant-load elimination,
//! * [`callgraph`] — call graph construction.
//!
//! # Quick start
//!
//! ```
//! let src = r#"
//! int %main() {
//! entry:
//!     %a = add int 2, 3
//!     %b = mul int %a, %a
//!     ret int %b
//! }
//! "#;
//! let mut m = llva_core::parser::parse_module(src)?;
//! let mut pm = llva_opt::pass::standard_pipeline();
//! pm.run(&mut m);
//! assert_eq!(m.total_insts(), 1); // folded to `ret int 25`
//! # Ok::<(), llva_core::parser::ParseError>(())
//! ```

pub mod alias;
pub mod callgraph;
pub mod constfold;
pub mod dce;
pub mod globaldce;
pub mod gvn;
pub mod inline;
pub mod internalize;
pub mod licm;
pub mod load_elim;
pub mod mem2reg;
pub mod pass;
pub mod simplify_cfg;

pub use pass::{
    link_time_pass_list, link_time_pipeline, standard_pass_list, standard_pipeline, ModulePass,
    PassManager, PassStat,
};
