//! Deterministic xorshift64* PRNG.
//!
//! The whole conformance harness is seeded: the same seed always
//! produces the same module, the same arguments, and (because the
//! shrinker is itself deterministic) the same minimized reproducer.
//! No crates.io dependency is involved, so a seed printed by CI can be
//! replayed anywhere.

/// xorshift64* with the canonical multiplier.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator; a zero seed is nudged to 1 (xorshift has a
    /// fixed point at 0).
    pub fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi);
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }

    /// Uniform index in `[0, hi)` (`hi` must be nonzero).
    pub fn index(&mut self, hi: usize) -> usize {
        (self.next_u64() % hi as u64) as usize
    }

    /// Bernoulli draw: true with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let v = r.range(-5, 5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng::new(0);
        assert_ne!(r.next_u64(), r.next_u64());
    }
}
