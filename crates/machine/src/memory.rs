//! Simulated flat memory with stack / heap / global segments.
//!
//! The paper's memory model (§3.1): "Memory is partitioned into stack,
//! heap, and global memory, and all memory is explicitly allocated."
//! The simulated address space reserves a null guard page, lays globals
//! at the bottom, grows the heap upward, and grows the stack downward
//! from the top. Loads and stores honor the module's declared
//! endianness (§3.2).

use crate::common::{TrapKind, Width};
use llva_core::layout::Endianness;

/// Base address of the globals segment (everything below traps).
pub const GLOBAL_BASE: u64 = 0x1000;

/// Flat byte-addressed memory for one simulated processor.
#[derive(Debug, Clone)]
pub struct Memory {
    bytes: Vec<u8>,
    endianness: Endianness,
    heap_next: u64,
    stack_limit: u64,
}

impl Memory {
    /// Creates `size` bytes of memory; the heap begins at `heap_base`
    /// (normally just past the globals) and the stack occupies the top
    /// eighth of the space.
    pub fn new(size: u64, heap_base: u64, endianness: Endianness) -> Memory {
        assert!(size >= GLOBAL_BASE * 4, "memory too small");
        assert!(
            size < (1 << 30),
            "memory must stay below the function-tag bit"
        );
        Memory {
            bytes: vec![0; size as usize],
            endianness,
            heap_next: heap_base.max(GLOBAL_BASE),
            stack_limit: size - size / 8,
        }
    }

    /// Total size in bytes.
    pub fn size(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// The configured endianness.
    pub fn endianness(&self) -> Endianness {
        self.endianness
    }

    /// Initial stack pointer (top of memory, 16-byte aligned).
    pub fn initial_sp(&self) -> u64 {
        self.size() & !0xF
    }

    /// Lowest address the stack may grow to.
    pub fn stack_limit(&self) -> u64 {
        self.stack_limit
    }

    /// Bump-allocates `size` bytes on the heap (the translator-provided
    /// heap behind `llva.heap.alloc`). Returns the address.
    ///
    /// # Errors
    ///
    /// Returns [`TrapKind::MemoryFault`] when the heap would collide
    /// with the stack segment.
    pub fn heap_alloc(&mut self, size: u64) -> Result<u64, TrapKind> {
        let addr = (self.heap_next + 7) & !7;
        let end = addr.checked_add(size.max(1)).ok_or(TrapKind::MemoryFault)?;
        if end > self.stack_limit {
            return Err(TrapKind::MemoryFault);
        }
        self.heap_next = end;
        Ok(addr)
    }

    /// Releases a heap block. The bump allocator only reclaims when the
    /// freed block is the most recent allocation; otherwise it is a
    /// no-op (valid for the explicit-allocation model).
    pub fn heap_free(&mut self, _addr: u64) {}

    /// Current heap break (for statistics).
    pub fn heap_used(&self) -> u64 {
        self.heap_next.saturating_sub(GLOBAL_BASE)
    }

    fn check(&self, addr: u64, len: u64) -> Result<usize, TrapKind> {
        if addr < GLOBAL_BASE {
            return Err(TrapKind::MemoryFault); // null page
        }
        let end = addr.checked_add(len).ok_or(TrapKind::MemoryFault)?;
        if end > self.size() {
            return Err(TrapKind::MemoryFault);
        }
        Ok(addr as usize)
    }

    /// Loads `width` bytes at `addr`, zero-extended to 64 bits.
    ///
    /// # Errors
    ///
    /// Returns [`TrapKind::MemoryFault`] for null-page or out-of-range
    /// accesses.
    pub fn load(&self, addr: u64, width: Width) -> Result<u64, TrapKind> {
        let base = self.check(addr, width.bytes())?;
        let n = width.bytes() as usize;
        let slice = &self.bytes[base..base + n];
        let mut v = 0u64;
        match self.endianness {
            Endianness::Little => {
                for (i, &b) in slice.iter().enumerate() {
                    v |= u64::from(b) << (8 * i);
                }
            }
            Endianness::Big => {
                for &b in slice {
                    v = (v << 8) | u64::from(b);
                }
            }
        }
        Ok(v)
    }

    /// Loads with sign extension from `width` to 64 bits.
    ///
    /// # Errors
    ///
    /// Same as [`load`](Memory::load).
    pub fn load_signed(&self, addr: u64, width: Width) -> Result<u64, TrapKind> {
        let v = self.load(addr, width)?;
        Ok(llva_core::eval::sign_extend(v, width.bytes() as u32 * 8) as u64)
    }

    /// Stores the low `width` bytes of `value` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`TrapKind::MemoryFault`] for bad addresses.
    pub fn store(&mut self, addr: u64, value: u64, width: Width) -> Result<(), TrapKind> {
        let base = self.check(addr, width.bytes())?;
        let n = width.bytes() as usize;
        match self.endianness {
            Endianness::Little => {
                for i in 0..n {
                    self.bytes[base + i] = (value >> (8 * i)) as u8;
                }
            }
            Endianness::Big => {
                for i in 0..n {
                    self.bytes[base + i] = (value >> (8 * (n - 1 - i))) as u8;
                }
            }
        }
        Ok(())
    }

    /// Copies raw bytes into memory (used by the loader to materialize
    /// global initializers).
    ///
    /// # Errors
    ///
    /// Returns [`TrapKind::MemoryFault`] for bad ranges.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), TrapKind> {
        let base = self.check(addr, data.len() as u64)?;
        self.bytes[base..base + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads raw bytes (used by intrinsics that take string arguments).
    ///
    /// # Errors
    ///
    /// Returns [`TrapKind::MemoryFault`] for bad ranges.
    pub fn read_bytes(&self, addr: u64, len: u64) -> Result<&[u8], TrapKind> {
        let base = self.check(addr, len)?;
        Ok(&self.bytes[base..base + len as usize])
    }

    /// Reads a NUL-terminated string starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`TrapKind::MemoryFault`] if no terminator is found in
    /// mapped memory.
    pub fn read_cstr(&self, addr: u64) -> Result<Vec<u8>, TrapKind> {
        let mut out = Vec::new();
        let mut a = addr;
        loop {
            let b = self.load(a, Width::B1)? as u8;
            if b == 0 {
                return Ok(out);
            }
            out.push(b);
            a += 1;
            if out.len() > 1 << 20 {
                return Err(TrapKind::MemoryFault);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(endian: Endianness) -> Memory {
        Memory::new(1 << 20, GLOBAL_BASE + 0x1000, endian)
    }

    #[test]
    fn little_endian_round_trip() {
        let mut m = mem(Endianness::Little);
        m.store(0x2000, 0x1122334455667788, Width::B8).unwrap();
        assert_eq!(m.load(0x2000, Width::B8).unwrap(), 0x1122334455667788);
        assert_eq!(m.load(0x2000, Width::B1).unwrap(), 0x88);
        assert_eq!(m.load(0x2000, Width::B4).unwrap(), 0x55667788);
    }

    #[test]
    fn big_endian_round_trip() {
        let mut m = mem(Endianness::Big);
        m.store(0x2000, 0x1122334455667788, Width::B8).unwrap();
        assert_eq!(m.load(0x2000, Width::B8).unwrap(), 0x1122334455667788);
        assert_eq!(m.load(0x2000, Width::B1).unwrap(), 0x11);
        assert_eq!(m.load(0x2007, Width::B1).unwrap(), 0x88);
    }

    #[test]
    fn null_page_traps() {
        let m = mem(Endianness::Little);
        assert_eq!(m.load(0, Width::B4), Err(TrapKind::MemoryFault));
        assert_eq!(m.load(0xFFF, Width::B1), Err(TrapKind::MemoryFault));
        assert!(m.load(0x1000, Width::B1).is_ok());
    }

    #[test]
    fn out_of_range_traps() {
        let mut m = mem(Endianness::Little);
        let top = m.size();
        assert_eq!(m.load(top, Width::B1), Err(TrapKind::MemoryFault));
        assert_eq!(m.store(top - 4, 0, Width::B8), Err(TrapKind::MemoryFault));
        assert!(m.store(top - 8, 0, Width::B8).is_ok());
    }

    #[test]
    fn signed_loads_extend() {
        let mut m = mem(Endianness::Little);
        m.store(0x2000, 0xFF, Width::B1).unwrap();
        assert_eq!(m.load(0x2000, Width::B1).unwrap(), 0xFF);
        assert_eq!(m.load_signed(0x2000, Width::B1).unwrap() as i64, -1);
    }

    #[test]
    fn heap_alloc_bumps_and_bounds() {
        let mut m = mem(Endianness::Little);
        let a = m.heap_alloc(100).unwrap();
        let b = m.heap_alloc(100).unwrap();
        assert!(b >= a + 100);
        assert_eq!(a % 8, 0);
        assert!(m.heap_alloc(1 << 30).is_err(), "cannot collide with stack");
    }

    #[test]
    fn cstr_reading() {
        let mut m = mem(Endianness::Little);
        m.write_bytes(0x3000, b"hello\0").unwrap();
        assert_eq!(m.read_cstr(0x3000).unwrap(), b"hello");
    }
}
