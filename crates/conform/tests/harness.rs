//! End-to-end tests of the conformance harness itself.
//!
//! The harness is only trustworthy if (a) a healthy pipeline produces
//! zero divergences over a seed sweep, and (b) a *deliberately broken*
//! executor is caught, attributed to its stage, and shrunk to a small
//! reproducer that names the seed. Both directions are covered here.

use llva_conform::gen::{generate, GenConfig};
use llva_conform::oracle::{checked_interp, interp_outcome, Oracle, Outcome};
use llva_conform::{minimize, run_seed};
use llva_core::instruction::{InstId, Opcode};
use llva_core::module::Module;

#[test]
fn healthy_pipeline_sweep_has_zero_divergences() {
    let cfg = GenConfig::default();
    let oracle = Oracle::new();
    for seed in 0..16 {
        let out = run_seed(seed, &cfg, &oracle);
        assert!(
            out.divergences.is_empty(),
            "seed {seed} diverged: {:?}",
            out.divergences
        );
    }
}

#[test]
fn healthy_pipeline_wide_sweep_without_native_stages() {
    // cheaper per seed, so sweep wider: every representation change
    // and every pass, interpreter-checked
    let cfg = GenConfig::default();
    let mut oracle = Oracle::new();
    oracle.skip_native(true);
    for seed in 100..180 {
        let tc = generate(seed, &cfg);
        let (_, divergences) = oracle.check(&tc.module, &tc.entry, &tc.args);
        assert!(
            divergences.is_empty(),
            "seed {seed} diverged: {divergences:?}"
        );
    }
}

/// Swaps the operands of the first `sub` instruction — a classic
/// miscompile (`x - y` becomes `y - x`). Returns `None` if the module
/// has no `sub`.
fn sabotage_first_sub(m: &Module) -> Option<Module> {
    let mut m2 = m.clone();
    for fid in m2.function_ids() {
        let func = m2.function_mut(fid);
        let ids: Vec<InstId> = func.inst_iter().map(|(_, i)| i).collect();
        for id in ids {
            if func.inst(id).opcode() == Opcode::Sub {
                func.inst_mut(id).operands_mut().swap(0, 1);
                return Some(m2);
            }
        }
    }
    None
}

/// A "translator" stage with the sabotage wired in: every module it is
/// handed gets its first `sub` flipped before interpretation.
fn sabotaged_oracle() -> Oracle {
    let mut oracle = Oracle::new();
    oracle.skip_native(true);
    oracle.add_stage("miscompile", |m, entry, args, fuel| {
        match sabotage_first_sub(m) {
            Some(bad) => checked_interp(&bad, entry, args, fuel),
            None => interp_outcome(m, entry, args, fuel),
        }
    });
    oracle
}

#[test]
fn injected_miscompile_is_caught_and_shrunk() {
    let cfg = GenConfig::default();
    let oracle = sabotaged_oracle();

    // find a seed whose program is actually sensitive to the flip
    // (deterministic: the generator is seeded)
    let mut caught = None;
    for seed in 0..100u64 {
        let tc = generate(seed, &cfg);
        let (_, divergences) = oracle.check(&tc.module, &tc.entry, &tc.args);
        if divergences.iter().any(|d| d.stage == "miscompile") {
            caught = Some((seed, tc, divergences));
            break;
        }
    }
    let (seed, tc, divergences) =
        caught.expect("some seed in 0..100 must be sensitive to a sub-operand swap");
    assert!(
        divergences.iter().all(|d| d.stage == "miscompile"),
        "only the sabotaged stage may diverge: {divergences:?}"
    );

    // shrink it: the reproducer must be much smaller, still diverge at
    // the same stage, and name the seed for replay
    let before = tc.module.total_insts();
    let repro = minimize(seed, &tc, &oracle);
    assert!(
        repro.stats.insts_after < before,
        "no shrinkage: {} -> {}",
        before,
        repro.stats.insts_after
    );
    assert!(
        repro.stats.insts_after <= 8,
        "reproducer should be tiny, got {} instructions",
        repro.stats.insts_after
    );
    assert!(
        repro.divergences.iter().any(|d| d.stage == "miscompile"),
        "minimized module lost the divergence: {:?}",
        repro.divergences
    );
    // the minimized module still verifies and still contains the
    // sabotage target
    let min = llva_core::parser::parse_module(&repro.text).expect("minimized .ll reparses");
    llva_core::verifier::verify_module(&min).expect("minimized module verifies");
    assert!(repro.text.contains("sub"), "reproducer kept a sub:\n{}", repro.text);

    let report = repro.render();
    assert!(report.contains(&format!("seed {seed}")));
    assert!(report.contains("minimized module"));
    assert!(report.contains("stage 'miscompile'"));
}

#[test]
fn trap_outcomes_are_compared_not_crashed() {
    // a module that traps (divide by zero) must produce the same Trap
    // outcome in every stage rather than aborting the harness
    let src = r#"
long %f(long %a, long %b) {
entry:
    %q = div long %a, 0
    ret long %q
}
"#;
    let m = llva_core::parser::parse_module(src).expect("parses");
    llva_core::verifier::verify_module(&m).expect("verifies");
    let (results, divergences) = Oracle::new().check(&m, "f", &[7, 3]);
    assert!(
        divergences.is_empty(),
        "all stages should agree on the trap: {divergences:?}"
    );
    assert!(
        matches!(results[0].outcome, Outcome::Trap(_)),
        "baseline should trap, got {}",
        results[0].outcome
    );
}

#[test]
fn cli_binary_reports_clean_range() {
    let exe = env!("CARGO_BIN_EXE_llva-conform");
    let out = std::process::Command::new(exe)
        .args(["--seeds", "0..4"])
        .output()
        .expect("llva-conform runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 diverging"), "{stdout}");
    assert!(stdout.contains("x86"), "{stdout}");
    assert!(stdout.contains("sparc"), "{stdout}");
}

#[test]
fn cli_binary_honors_seed_env_override() {
    let exe = env!("CARGO_BIN_EXE_llva-conform");
    let out = std::process::Command::new(exe)
        .env("LLVA_CONFORM_SEEDS", "41,42")
        .output()
        .expect("llva-conform runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 seed(s)"), "{stdout}");
}
