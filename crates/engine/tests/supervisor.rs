//! Degradation coverage for the tiered execution supervisor (ISSUE 5).
//!
//! Every scenario here injects a deterministic fault — a panic in a
//! fast tier, a runaway callee against the watchdog, a silently wrong
//! value under cross-check — and asserts three things: the caller still
//! gets the structural interpreter's answer, the faulting tier is
//! quarantined for exactly that function, and the [`IncidentLog`]
//! records the episode in a deterministic, seed-replayable shape.

use llva_engine::llee::TargetIsa;
use llva_engine::storage::MemStorage;
use llva_engine::supervisor::{
    IncidentCause, KillMode, RecoveryAction, Supervisor, SupervisorError, Tier, TierKill,
    TierOutcome,
};
use llva_engine::Interpreter;

const PROGRAM: &str = r#"
int %fib(int %n) {
entry:
    %c = setlt int %n, 2
    br bool %c, label %base, label %rec
base:
    ret int %n
rec:
    %n1 = sub int %n, 1
    %a = call int %fib(int %n1)
    %n2 = sub int %n, 2
    %b = call int %fib(int %n2)
    %s = add int %a, %b
    ret int %s
}

int %spin(int %n) {
entry:
    br label %loop
loop:
    %i = phi int [ 0, %entry ], [ %i1, %loop ]
    %i1 = add int %i, 1
    %done = seteq int %i1, %n
    br bool %done, label %out, label %loop
out:
    ret int %i1
}

int %main() {
entry:
    %r = call int %fib(int 12)
    ret int %r
}

int %slow_main() {
entry:
    %r = call int %spin(int 100000)
    ret int %r
}
"#;

fn module() -> llva_core::module::Module {
    llva_core::parser::parse_module(PROGRAM).expect("parses")
}

fn interp_value(entry: &str) -> u64 {
    Interpreter::new(&module()).run(entry, &[]).expect("interp runs")
}

/// A panic injected mid-execution in every fast tier (translated,
/// traced, pre-decoded) degrades to the structural interpreter, with
/// one incident and one quarantine per killed tier.
#[test]
fn killed_fast_tiers_degrade_to_structural_interpreter() {
    let expected = interp_value("main");
    let mut sup = Supervisor::new(module(), TargetIsa::X86);
    sup.arm_kill(TierKill::panic(Tier::Translated));
    sup.arm_kill(TierKill::panic(Tier::Traced));
    sup.arm_kill(TierKill::panic(Tier::FastInterp));
    let run = sup.run("main", &[]).expect("degrades to interp");
    assert_eq!(run.outcome, TierOutcome::Value(expected));
    assert_eq!(run.tier, Tier::Interp);
    assert!(run.degraded);

    let log = sup.incident_log();
    assert_eq!(log.len(), 3, "one incident per killed tier: {}", log.summary());
    assert_eq!(log.incidents()[0].tier, Tier::Translated);
    assert_eq!(log.incidents()[1].tier, Tier::Traced);
    assert_eq!(log.incidents()[2].tier, Tier::FastInterp);
    for incident in log.incidents() {
        assert!(matches!(incident.cause, IncidentCause::Panic(_)));
        assert!(incident.injected, "kill-driven incidents are marked injected");
        assert_eq!(incident.function, "main");
        assert_eq!(incident.retries, 0, "first fault for the tier");
    }
    assert_eq!(
        log.incidents()[0].recovery,
        RecoveryAction::FellBack(Tier::Traced)
    );
    assert_eq!(
        log.incidents()[1].recovery,
        RecoveryAction::FellBack(Tier::FastInterp)
    );
    assert_eq!(log.incidents()[2].recovery, RecoveryAction::FellBack(Tier::Interp));
    assert!(sup.is_quarantined("main", Tier::Translated));
    assert!(sup.is_quarantined("main", Tier::Traced));
    assert!(sup.is_quarantined("main", Tier::FastInterp));

    // a second run skips the quarantined tiers silently: same answer,
    // no new incidents — exactly one quarantine + fallback per kill
    let run2 = sup.run("main", &[]).expect("still runs");
    assert_eq!(run2.outcome, TierOutcome::Value(expected));
    assert_eq!(run2.tier, Tier::Interp);
    assert_eq!(sup.incident_log().len(), 3, "no repeat incidents");
    let counters = sup.tier_counters();
    assert_eq!(counters[Tier::Translated.index()].skipped_quarantined, 1);
    assert_eq!(counters[Tier::Traced.index()].skipped_quarantined, 1);
    assert_eq!(counters[Tier::FastInterp.index()].skipped_quarantined, 1);
    assert_eq!(counters[Tier::Interp.index()].served, 2);
}

/// The panic in the predecoded tier unwinds mid-dispatch (after at
/// least one executed instruction), not at tier entry.
#[test]
fn fast_interp_kill_fires_mid_execution() {
    let mut sup = Supervisor::new(module(), TargetIsa::X86);
    sup.arm_kill(TierKill::panic(Tier::Translated));
    sup.arm_kill(TierKill::panic(Tier::Traced));
    sup.arm_kill(TierKill::panic(Tier::FastInterp));
    sup.run("main", &[]).expect("degrades");
    let fast = &sup.incident_log().incidents()[2];
    match &fast.cause {
        IncidentCause::Panic(msg) => {
            assert!(
                msg.contains("injected fast-interpreter fault"),
                "panic should come from the armed mid-dispatch hook, got: {msg}"
            );
        }
        other => panic!("expected a panic cause, got {other:?}"),
    }
}

/// Watchdog expiry in a callee: `slow_main` spins ~500k instructions in
/// `spin`; with a 10k-step watchdog every fast tier is declared hung
/// and quarantined, while the final interpreter rung (full fuel, never
/// watchdog-limited) completes with the right answer.
#[test]
fn watchdog_expiry_in_callee_degrades_without_changing_the_answer() {
    let expected = interp_value("slow_main");
    let mut sup = Supervisor::new(module(), TargetIsa::X86);
    sup.set_watchdog(10_000);
    let run = sup.run("slow_main", &[]).expect("interp finishes");
    assert_eq!(run.outcome, TierOutcome::Value(expected));
    assert_eq!(run.tier, Tier::Interp);
    assert!(run.degraded);
    let log = sup.incident_log();
    assert_eq!(log.len(), 3, "all fast tiers expired: {}", log.summary());
    for incident in log.incidents() {
        assert_eq!(incident.cause, IncidentCause::Watchdog { budget: 10_000 });
        assert!(!incident.injected, "a genuine hang is not an injected kill");
    }
    assert!(sup.is_quarantined("slow_main", Tier::Translated));
    assert!(sup.is_quarantined("slow_main", Tier::Traced));
    assert!(sup.is_quarantined("slow_main", Tier::FastInterp));
    // the quarantine is keyed per function: `main` is unaffected
    assert!(!sup.is_quarantined("main", Tier::Translated));
    let fast = sup.run("main", &[]).expect("runs");
    assert_eq!(fast.tier, Tier::Translated, "other functions keep the fast path");
}

/// Cross-check mode: a silently wrong value from the translated tier
/// (the fault no panic or watchdog can see) diverges from the
/// structural interpreter, quarantines the tier, and never reaches the
/// caller.
#[test]
fn divergence_under_cross_check_quarantines_the_lying_tier() {
    let expected = interp_value("main");
    let mut sup = Supervisor::new(module(), TargetIsa::X86);
    sup.set_cross_check(true);
    sup.arm_kill(TierKill::wrong_value(Tier::Translated));
    let run = sup.run("main", &[]).expect("degrades");
    assert_eq!(run.outcome, TierOutcome::Value(expected), "wrong answer never served");
    assert_eq!(run.tier, Tier::Traced);
    let log = sup.incident_log();
    assert_eq!(log.len(), 1);
    match &log.incidents()[0].cause {
        IncidentCause::Divergence { expected: want, got } => {
            assert_eq!(*want, TierOutcome::Value(expected));
            assert_eq!(*got, TierOutcome::Value(expected ^ 0xBAD_F00D));
        }
        other => panic!("expected a divergence cause, got {other:?}"),
    }
    assert!(sup.is_quarantined("main", Tier::Translated));
    assert_eq!(sup.tier_counters()[Tier::Translated.index()].divergences, 1);

    // without cross-check the same kill would have been served — prove
    // the mode matters
    let mut unchecked = Supervisor::new(module(), TargetIsa::X86);
    unchecked.arm_kill(TierKill::wrong_value(Tier::Translated));
    let lied = unchecked.run("main", &[]).expect("runs");
    assert_eq!(lied.outcome, TierOutcome::Value(expected ^ 0xBAD_F00D));
}

/// All four tiers killed: the ladder runs dry with the documented
/// error shape, and the log still explains every step.
#[test]
fn all_tiers_exhausted_error_shape() {
    let mut sup = Supervisor::new(module(), TargetIsa::X86);
    for tier in Tier::LADDER {
        sup.arm_kill(TierKill::panic(tier));
    }
    let err = sup.run("main", &[]).expect_err("nothing left to run on");
    match &err {
        SupervisorError::TiersExhausted { function, incidents } => {
            assert_eq!(function, "main");
            assert_eq!(*incidents, 4);
        }
        other => panic!("expected TiersExhausted, got {other:?}"),
    }
    let rendered = err.to_string();
    assert!(rendered.contains("all execution tiers exhausted"), "{rendered}");
    assert!(rendered.contains("%main"), "{rendered}");
    let log = sup.incident_log();
    assert_eq!(log.len(), 4);
    assert_eq!(log.incidents()[3].recovery, RecoveryAction::Exhausted);
    // the value-level API agrees
    assert!(sup.quarantined().len() == 4);
}

/// The incident log is deterministic: the same kills over the same
/// program replay the same log, bit for bit (no wall-clock, no ambient
/// randomness — the acceptance requirement for seed-replayable
/// incident reports).
#[test]
fn incident_log_is_deterministic_across_replays() {
    let run_once = || {
        let mut sup = Supervisor::new(module(), TargetIsa::X86);
        sup.set_cross_check(true);
        sup.arm_kill(TierKill::panic(Tier::Translated));
        sup.arm_kill(TierKill::panic(Tier::Traced));
        sup.arm_kill(TierKill { tier: Tier::FastInterp, mode: KillMode::Panic });
        sup.run("main", &[]).expect("degrades");
        sup.run("main", &[]).expect("degrades");
        sup.incident_log().clone()
    };
    let first = run_once();
    let second = run_once();
    assert_eq!(first, second, "replaying the scenario must replay the log");
    assert_eq!(first.len(), 3);
    // seq numbers are the log's only clock and they are ordinal
    for (i, incident) in first.incidents().iter().enumerate() {
        assert_eq!(incident.seq as usize, i);
    }
}

/// Storage attached to the supervisor survives a panic in the
/// translated tier (the only tier that uses it) and keeps serving the
/// offline cache after the tier is rehabilitated.
#[test]
fn storage_survives_a_killed_translated_tier() {
    let mut sup = Supervisor::new(module(), TargetIsa::X86);
    sup.set_storage(Box::new(MemStorage::new()), "app");
    sup.arm_kill(TierKill::panic(Tier::Translated));
    sup.run("main", &[]).expect("degrades");
    // the tier panicked at entry; the storage handle must still be here
    sup.clear_kills();
    sup.lift_quarantine("main", Tier::Translated);
    let run = sup.run("main", &[]).expect("translated tier works again");
    assert_eq!(run.tier, Tier::Translated);
    let storage = sup.take_storage().expect("storage survived the panic");
    assert!(storage.cache_size("app").unwrap_or(0) > 0, "cache was written");
}

/// Genuine fuel exhaustion (no watchdog) is an *outcome*, not a fault:
/// every tier agrees and nothing is quarantined.
#[test]
fn out_of_fuel_is_an_outcome_not_an_incident() {
    let mut sup = Supervisor::new(module(), TargetIsa::X86);
    sup.set_fuel(1_000);
    let run = sup.run("slow_main", &[]).expect("runs");
    assert_eq!(run.outcome, TierOutcome::OutOfFuel);
    assert_eq!(run.tier, Tier::Translated, "first tier already answers");
    assert!(sup.incident_log().is_empty());
    assert!(sup.quarantined().is_empty());
}
