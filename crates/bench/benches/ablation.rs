//! Ablations for the design choices DESIGN.md calls out.
//!
//! * **A1 — `ExceptionsEnabled` (§3.3)**: how many dead instructions
//!   DCE can delete when arithmetic exceptions default off, vs. a
//!   strawman where every instruction may trap.
//! * **A2 — SSA promotion (mem2reg)**: emitted native instruction count
//!   with and without register promotion.
//! * **A3 — link-time interprocedural optimization (§4.2)**: virtual
//!   object code size with and without internalize+inline+globaldce.

use criterion::{criterion_group, criterion_main, Criterion};
use llva_core::layout::TargetConfig;
use llva_opt::ModulePass;

fn a1_exceptions_enabled(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_exceptions");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    // A loop full of *dead* divisions: their results are unused, so the
    // only thing keeping them alive is the possibility of a trap. With
    // the paper's `ExceptionsEnabled` cleared ("[noexc]"), DCE deletes
    // them; with it set, they must execute. This is §3.3's claim that a
    // static attribute buys the translator reordering/removal freedom.
    let src = r#"
int %main(int %n) {
entry:
    br label %header
header:
    %i = phi int [ 0, %entry ], [ %i2, %body ]
    %s = phi int [ 0, %entry ], [ %s2, %body ]
    %c = setlt int %i, %n
    br bool %c, label %body, label %exit
body:
    %d = add int %i, 1
    %dead1 = div int 1000000, %d
    %dead2 = rem int 999983, %d
    %s2 = add int %s, %i
    %i2 = add int %i, 1
    br label %header
exit:
    ret int %s
}
"#;
    let build = |exceptions_on: bool| {
        let mut m = llva_core::parser::parse_module(src).expect("parses");
        for fid in m.function_ids() {
            let func = m.function_mut(fid);
            let insts: Vec<_> = func.inst_iter().map(|(_, i)| i).collect();
            for i in insts {
                let op = func.inst(i).opcode();
                if matches!(
                    op,
                    llva_core::instruction::Opcode::Div | llva_core::instruction::Opcode::Rem
                ) {
                    func.inst_mut(i).set_exceptions_enabled(exceptions_on);
                }
            }
        }
        m
    };
    // static effect + dynamic effect (simulated cycles)
    let report = |exc: bool| {
        let mut m = build(exc);
        let mut pm = llva_opt::standard_pipeline();
        pm.run(&mut m);
        let insts = m.total_insts();
        let mut mgr = llva_engine::llee::ExecutionManager::new(m, llva_engine::llee::TargetIsa::Sparc);
        mgr.run("main", &[10_000]).expect("runs");
        (insts, mgr.exec_stats().cycles)
    };
    let (i_on, c_on) = report(true);
    let (i_off, c_off) = report(false);
    println!(
        "A1: trapping divs -> {i_on} insts / {c_on} cycles; [noexc] divs -> {i_off} insts / {c_off} cycles"
    );
    assert!(i_off < i_on, "noexc must let DCE delete the dead divisions");
    for (label, exc) in [("trapping_divs", true), ("noexc_divs", false)] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || build(exc),
                |mut m| {
                    let mut pm = llva_opt::standard_pipeline();
                    pm.run(&mut m);
                    m.total_insts()
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn a2_mem2reg(c: &mut Criterion) {
    let mut group = c.benchmark_group("a2_mem2reg");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    let w = llva_workloads::by_name("181.mcf").expect("workload");
    let count_native = |promote: bool| {
        let mut m = w.compile(TargetConfig::ia32());
        if promote {
            let mut p = llva_opt::mem2reg::Mem2Reg::new();
            p.run(&mut m);
            let mut d = llva_opt::dce::Dce::new();
            d.run(&mut m);
        }
        let mut total = 0usize;
        for (fid, f) in m.functions() {
            if !f.is_declaration() {
                total += llva_backend::compile_x86(&m, fid).len();
            }
        }
        total
    };
    println!(
        "A2: native insts without mem2reg = {}, with mem2reg = {}",
        count_native(false),
        count_native(true)
    );
    for (label, promote) in [("no_promotion", false), ("with_mem2reg", true)] {
        group.bench_function(label, |b| {
            b.iter(|| count_native(promote));
        });
    }
    group.finish();
}

fn a3_link_time_opt(c: &mut Criterion) {
    let mut group = c.benchmark_group("a3_linktime");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    let w = llva_workloads::by_name("181.mcf").expect("workload");
    let size_with = |link_time: bool| {
        let mut m = w.compile(TargetConfig::default());
        if link_time {
            let mut pm = llva_opt::link_time_pipeline(&["main"]);
            pm.run(&mut m);
        } else {
            let mut pm = llva_opt::standard_pipeline();
            pm.run(&mut m);
        }
        llva_core::bytecode::encode_module(&m).len()
    };
    println!(
        "A3: object size standard = {} bytes, link-time = {} bytes",
        size_with(false),
        size_with(true)
    );
    for (label, lt) in [("standard_only", false), ("link_time", true)] {
        group.bench_function(label, |b| {
            b.iter(|| size_with(lt));
        });
    }
    group.finish();
}

criterion_group!(benches, a1_exceptions_enabled, a2_mem2reg, a3_link_time_opt);
criterion_main!(benches);
