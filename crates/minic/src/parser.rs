//! The minic lexer and parser.

use crate::ast::*;
use std::fmt;

/// A parse failure with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Source line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "minic parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

type Result<T> = std::result::Result<T, ParseError>;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Char(u8),
    Str(Vec<u8>),
    Punct(&'static str),
    Eof,
}

#[derive(Debug, Clone)]
struct Sp {
    tok: Tok,
    line: usize,
}

const PUNCTS: &[&str] = &[
    // longest first
    "<<=", ">>=", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "&=", "|=", "^=", "(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
];

fn lex(src: &str) -> Result<Vec<Sp>> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // comments
        if c == '/' && i + 1 < bytes.len() {
            if bytes[i + 1] == b'/' {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            if bytes[i + 1] == b'*' {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i += 2;
                continue;
            }
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            toks.push(Sp {
                tok: Tok::Ident(src[start..i].to_string()),
                line,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            while i < bytes.len()
                && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'.' || bytes[i] == b'_')
            {
                if bytes[i] == b'.' {
                    is_float = true;
                }
                i += 1;
            }
            let text = src[start..i].replace('_', "");
            let tok = if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X"))
            {
                Tok::Int(i64::from_str_radix(hex, 16).map_err(|_| ParseError {
                    line,
                    message: format!("bad hex literal {text}"),
                })?)
            } else if is_float {
                Tok::Float(text.parse().map_err(|_| ParseError {
                    line,
                    message: format!("bad float literal {text}"),
                })?)
            } else {
                Tok::Int(text.parse().map_err(|_| ParseError {
                    line,
                    message: format!("bad integer literal {text}"),
                })?)
            };
            toks.push(Sp { tok, line });
            continue;
        }
        if c == '\'' {
            i += 1;
            let v = if bytes[i] == b'\\' {
                i += 1;
                let e = escape(bytes[i], line)?;
                i += 1;
                e
            } else {
                let v = bytes[i];
                i += 1;
                v
            };
            if i >= bytes.len() || bytes[i] != b'\'' {
                return Err(ParseError {
                    line,
                    message: "unterminated char literal".into(),
                });
            }
            i += 1;
            toks.push(Sp {
                tok: Tok::Char(v),
                line,
            });
            continue;
        }
        if c == '"' {
            i += 1;
            let mut s = Vec::new();
            while i < bytes.len() && bytes[i] != b'"' {
                if bytes[i] == b'\\' {
                    i += 1;
                    s.push(escape(bytes[i], line)?);
                } else {
                    s.push(bytes[i]);
                }
                i += 1;
            }
            if i >= bytes.len() {
                return Err(ParseError {
                    line,
                    message: "unterminated string literal".into(),
                });
            }
            i += 1;
            toks.push(Sp {
                tok: Tok::Str(s),
                line,
            });
            continue;
        }
        // punctuation
        let rest = &src[i..];
        let Some(p) = PUNCTS.iter().find(|p| rest.starts_with(**p)) else {
            return Err(ParseError {
                line,
                message: format!("unexpected character '{c}'"),
            });
        };
        toks.push(Sp {
            tok: Tok::Punct(p),
            line,
        });
        i += p.len();
    }
    toks.push(Sp {
        tok: Tok::Eof,
        line,
    });
    Ok(toks)
}

fn escape(b: u8, line: usize) -> Result<u8> {
    Ok(match b {
        b'n' => b'\n',
        b't' => b'\t',
        b'r' => b'\r',
        b'0' => 0,
        b'\\' => b'\\',
        b'\'' => b'\'',
        b'"' => b'"',
        other => {
            return Err(ParseError {
                line,
                message: format!("unknown escape \\{}", other as char),
            })
        }
    })
}

/// Parses a minic translation unit.
///
/// # Errors
///
/// Returns the first syntax error with its source line.
pub fn parse(src: &str) -> Result<Program> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut items = Vec::new();
    while p.peek() != &Tok::Eof {
        items.push(p.item()?);
    }
    Ok(Program { items })
}

struct Parser {
    toks: Vec<Sp>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(ParseError {
            line: self.line(),
            message: message.into(),
        })
    }

    fn eat(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(x) if *x == p) {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, p: &str) -> Result<()> {
        if self.eat(p) {
            Ok(())
        } else {
            self.err(format!("expected '{p}', found {:?}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Tok::Ident(s) => Ok(s),
            other => Err(ParseError {
                line: self.line(),
                message: format!("expected identifier, found {other:?}"),
            }),
        }
    }

    fn is_type_start(&self) -> bool {
        matches!(self.peek(), Tok::Ident(s) if matches!(
            s.as_str(),
            "void" | "char" | "int" | "uint" | "long" | "ulong" | "float" | "double" | "struct"
        ))
    }

    /// Parses a type prefix: base type + leading `*`s (array suffix is
    /// handled at the declarator).
    fn type_prefix(&mut self) -> Result<CType> {
        let base = match self.next() {
            Tok::Ident(s) => match s.as_str() {
                "void" => CType::Void,
                "char" => CType::Char,
                "int" => CType::Int,
                "uint" => CType::Uint,
                "long" => CType::Long,
                "ulong" => CType::Ulong,
                "float" => CType::Float,
                "double" => CType::Double,
                "struct" => CType::Struct(self.ident()?),
                other => {
                    return Err(ParseError {
                        line: self.line(),
                        message: format!("unknown type '{other}'"),
                    })
                }
            },
            other => {
                return Err(ParseError {
                    line: self.line(),
                    message: format!("expected type, found {other:?}"),
                })
            }
        };
        let mut ty = base;
        loop {
            if self.eat("*") {
                ty = CType::Ptr(Box::new(ty));
            } else if matches!(self.peek(), Tok::Punct("(")) && matches!(self.peek2(), Tok::Punct("*")) {
                // function pointer: T (*)(params)
                self.expect("(")?;
                self.expect("*")?;
                self.expect(")")?;
                self.expect("(")?;
                let mut params = Vec::new();
                if !matches!(self.peek(), Tok::Punct(")")) {
                    loop {
                        params.push(self.type_prefix()?);
                        if !self.eat(",") {
                            break;
                        }
                    }
                }
                self.expect(")")?;
                ty = CType::FnPtr(Box::new(ty), params);
            } else {
                break;
            }
        }
        Ok(ty)
    }

    fn item(&mut self) -> Result<Item> {
        // struct definition?
        if matches!(self.peek(), Tok::Ident(s) if s == "struct")
            && matches!(self.peek2(), Tok::Ident(_))
            && matches!(
                self.toks.get(self.pos + 2).map(|s| &s.tok),
                Some(Tok::Punct("{"))
            )
        {
            self.next(); // struct
            let name = self.ident()?;
            self.expect("{")?;
            let mut fields = Vec::new();
            while !self.eat("}") {
                let ty = self.type_prefix()?;
                let fname = self.ident()?;
                let ty = self.array_suffix(ty)?;
                self.expect(";")?;
                fields.push((ty, fname));
            }
            self.expect(";")?;
            return Ok(Item::StructDef { name, fields });
        }
        let ty = self.type_prefix()?;
        let name = self.ident()?;
        if self.eat("(") {
            // function
            let mut params = Vec::new();
            if !matches!(self.peek(), Tok::Punct(")")) {
                loop {
                    let pty = self.type_prefix()?;
                    let pname = self.ident()?;
                    params.push((pty, pname));
                    if !self.eat(",") {
                        break;
                    }
                }
            }
            self.expect(")")?;
            self.expect("{")?;
            let mut body = Vec::new();
            while !self.eat("}") {
                body.push(self.stmt()?);
            }
            Ok(Item::Func {
                ret: ty,
                name,
                params,
                body,
            })
        } else {
            let ty = self.array_suffix(ty)?;
            let init = if self.eat("=") {
                Some(self.global_init()?)
            } else {
                None
            };
            self.expect(";")?;
            Ok(Item::Global { ty, name, init })
        }
    }

    fn array_suffix(&mut self, mut ty: CType) -> Result<CType> {
        let mut dims = Vec::new();
        while self.eat("[") {
            let n = match self.next() {
                Tok::Int(n) if n >= 0 => n as u64,
                other => {
                    return Err(ParseError {
                        line: self.line(),
                        message: format!("expected array length, found {other:?}"),
                    })
                }
            };
            self.expect("]")?;
            dims.push(n);
        }
        for &n in dims.iter().rev() {
            ty = CType::Array(Box::new(ty), n);
        }
        Ok(ty)
    }

    fn global_init(&mut self) -> Result<GlobalInit> {
        if self.eat("{") {
            let mut items = Vec::new();
            if !matches!(self.peek(), Tok::Punct("}")) {
                loop {
                    items.push(self.global_init()?);
                    if !self.eat(",") {
                        break;
                    }
                }
            }
            self.expect("}")?;
            return Ok(GlobalInit::List(items));
        }
        if let Tok::Str(s) = self.peek().clone() {
            self.next();
            return Ok(GlobalInit::Str(s));
        }
        Ok(GlobalInit::Scalar(self.expr()?))
    }

    // ---- statements ----

    fn stmt(&mut self) -> Result<Stmt> {
        if self.eat("{") {
            let mut body = Vec::new();
            while !self.eat("}") {
                body.push(self.stmt()?);
            }
            return Ok(Stmt::Block(body));
        }
        if let Tok::Ident(word) = self.peek().clone() {
            match word.as_str() {
                "if" => {
                    self.next();
                    self.expect("(")?;
                    let c = self.expr()?;
                    self.expect(")")?;
                    let then = Box::new(self.stmt()?);
                    let els = if matches!(self.peek(), Tok::Ident(w) if w == "else") {
                        self.next();
                        Some(Box::new(self.stmt()?))
                    } else {
                        None
                    };
                    return Ok(Stmt::If(c, then, els));
                }
                "while" => {
                    self.next();
                    self.expect("(")?;
                    let c = self.expr()?;
                    self.expect(")")?;
                    return Ok(Stmt::While(c, Box::new(self.stmt()?)));
                }
                "for" => {
                    self.next();
                    self.expect("(")?;
                    let init = if self.eat(";") {
                        None
                    } else {
                        let s = if self.is_type_start() {
                            self.decl_stmt()?
                        } else {
                            let e = self.expr()?;
                            self.expect(";")?;
                            Stmt::Expr(e)
                        };
                        Some(Box::new(s))
                    };
                    let cond = if matches!(self.peek(), Tok::Punct(";")) {
                        None
                    } else {
                        Some(self.expr()?)
                    };
                    self.expect(";")?;
                    let step = if matches!(self.peek(), Tok::Punct(")")) {
                        None
                    } else {
                        Some(self.expr()?)
                    };
                    self.expect(")")?;
                    return Ok(Stmt::For(init, cond, step, Box::new(self.stmt()?)));
                }
                "return" => {
                    self.next();
                    let v = if matches!(self.peek(), Tok::Punct(";")) {
                        None
                    } else {
                        Some(self.expr()?)
                    };
                    self.expect(";")?;
                    return Ok(Stmt::Return(v));
                }
                "break" => {
                    self.next();
                    self.expect(";")?;
                    return Ok(Stmt::Break);
                }
                "continue" => {
                    self.next();
                    self.expect(";")?;
                    return Ok(Stmt::Continue);
                }
                _ => {}
            }
        }
        if self.is_type_start() {
            return self.decl_stmt();
        }
        let e = self.expr()?;
        self.expect(";")?;
        Ok(Stmt::Expr(e))
    }

    fn decl_stmt(&mut self) -> Result<Stmt> {
        let ty = self.type_prefix()?;
        let name = self.ident()?;
        let ty = self.array_suffix(ty)?;
        let init = if self.eat("=") {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(";")?;
        Ok(Stmt::Decl { ty, name, init })
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<Expr> {
        self.assign_expr()
    }

    fn assign_expr(&mut self) -> Result<Expr> {
        let lhs = self.cond_expr()?;
        for (p, op) in [
            ("+=", Some(BinOp::Add)),
            ("-=", Some(BinOp::Sub)),
            ("*=", Some(BinOp::Mul)),
            ("/=", Some(BinOp::Div)),
            ("%=", Some(BinOp::Rem)),
            ("&=", Some(BinOp::And)),
            ("|=", Some(BinOp::Or)),
            ("^=", Some(BinOp::Xor)),
            ("<<=", Some(BinOp::Shl)),
            (">>=", Some(BinOp::Shr)),
            ("=", None),
        ] {
            if matches!(self.peek(), Tok::Punct(x) if *x == p) {
                self.next();
                let rhs = self.assign_expr()?;
                return Ok(match op {
                    None => Expr::Assign(Box::new(lhs), Box::new(rhs)),
                    Some(op) => Expr::Assign(
                        Box::new(lhs.clone()),
                        Box::new(Expr::Bin(op, Box::new(lhs), Box::new(rhs))),
                    ),
                });
            }
        }
        Ok(lhs)
    }

    fn cond_expr(&mut self) -> Result<Expr> {
        let c = self.binary_expr(0)?;
        if self.eat("?") {
            let t = self.expr()?;
            self.expect(":")?;
            let e = self.cond_expr()?;
            return Ok(Expr::Cond(Box::new(c), Box::new(t), Box::new(e)));
        }
        Ok(c)
    }

    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let (op, prec) = match self.peek() {
                Tok::Punct("||") => (BinOp::LOr, 1),
                Tok::Punct("&&") => (BinOp::LAnd, 2),
                Tok::Punct("|") => (BinOp::Or, 3),
                Tok::Punct("^") => (BinOp::Xor, 4),
                Tok::Punct("&") => (BinOp::And, 5),
                Tok::Punct("==") => (BinOp::Eq, 6),
                Tok::Punct("!=") => (BinOp::Ne, 6),
                Tok::Punct("<") => (BinOp::Lt, 7),
                Tok::Punct(">") => (BinOp::Gt, 7),
                Tok::Punct("<=") => (BinOp::Le, 7),
                Tok::Punct(">=") => (BinOp::Ge, 7),
                Tok::Punct("<<") => (BinOp::Shl, 8),
                Tok::Punct(">>") => (BinOp::Shr, 8),
                Tok::Punct("+") => (BinOp::Add, 9),
                Tok::Punct("-") => (BinOp::Sub, 9),
                Tok::Punct("*") => (BinOp::Mul, 10),
                Tok::Punct("/") => (BinOp::Div, 10),
                Tok::Punct("%") => (BinOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.next();
            let rhs = self.binary_expr(prec + 1)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        // prefix ++/--
        if self.eat("++") {
            let e = self.unary_expr()?;
            return Ok(Expr::Assign(
                Box::new(e.clone()),
                Box::new(Expr::Bin(BinOp::Add, Box::new(e), Box::new(Expr::Int(1)))),
            ));
        }
        if self.eat("--") {
            let e = self.unary_expr()?;
            return Ok(Expr::Assign(
                Box::new(e.clone()),
                Box::new(Expr::Bin(BinOp::Sub, Box::new(e), Box::new(Expr::Int(1)))),
            ));
        }
        if self.eat("-") {
            return Ok(Expr::Un(UnOp::Neg, Box::new(self.unary_expr()?)));
        }
        if self.eat("!") {
            return Ok(Expr::Un(UnOp::Not, Box::new(self.unary_expr()?)));
        }
        if self.eat("~") {
            return Ok(Expr::Un(UnOp::BitNot, Box::new(self.unary_expr()?)));
        }
        if self.eat("*") {
            return Ok(Expr::Un(UnOp::Deref, Box::new(self.unary_expr()?)));
        }
        if self.eat("&") {
            return Ok(Expr::Un(UnOp::Addr, Box::new(self.unary_expr()?)));
        }
        // sizeof
        if matches!(self.peek(), Tok::Ident(w) if w == "sizeof") {
            self.next();
            self.expect("(")?;
            let ty = self.type_prefix()?;
            self.expect(")")?;
            return Ok(Expr::Sizeof(ty));
        }
        // cast: '(' type ')' unary
        if matches!(self.peek(), Tok::Punct("(")) {
            let save = self.pos;
            self.next();
            if self.is_type_start() {
                if let Ok(ty) = self.type_prefix() {
                    if self.eat(")") {
                        let e = self.unary_expr()?;
                        return Ok(Expr::Cast(ty, Box::new(e)));
                    }
                }
            }
            self.pos = save;
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr> {
        let mut e = self.primary_expr()?;
        loop {
            if self.eat("[") {
                let idx = self.expr()?;
                self.expect("]")?;
                e = Expr::Index(Box::new(e), Box::new(idx));
            } else if self.eat(".") {
                let f = self.ident()?;
                e = Expr::Member(Box::new(e), f);
            } else if self.eat("->") {
                let f = self.ident()?;
                e = Expr::Arrow(Box::new(e), f);
            } else if self.eat("(") {
                let mut args = Vec::new();
                if !matches!(self.peek(), Tok::Punct(")")) {
                    loop {
                        args.push(self.expr()?);
                        if !self.eat(",") {
                            break;
                        }
                    }
                }
                self.expect(")")?;
                e = Expr::Call(Box::new(e), args);
            } else if self.eat("++") {
                // postfix increment: (e += 1) - 1
                e = Expr::Bin(
                    BinOp::Sub,
                    Box::new(Expr::Assign(
                        Box::new(e.clone()),
                        Box::new(Expr::Bin(BinOp::Add, Box::new(e), Box::new(Expr::Int(1)))),
                    )),
                    Box::new(Expr::Int(1)),
                );
            } else if self.eat("--") {
                e = Expr::Bin(
                    BinOp::Add,
                    Box::new(Expr::Assign(
                        Box::new(e.clone()),
                        Box::new(Expr::Bin(BinOp::Sub, Box::new(e), Box::new(Expr::Int(1)))),
                    )),
                    Box::new(Expr::Int(1)),
                );
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr> {
        match self.next() {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::Float(v) => Ok(Expr::Float(v)),
            Tok::Char(v) => Ok(Expr::Char(v)),
            Tok::Str(s) => Ok(Expr::Str(s)),
            Tok::Ident(s) => Ok(Expr::Ident(s)),
            Tok::Punct("(") => {
                let e = self.expr()?;
                self.expect(")")?;
                Ok(e)
            }
            other => Err(ParseError {
                line: self.line(),
                message: format!("expected expression, found {other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_function_with_control_flow() {
        let p = parse(
            r#"
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
"#,
        )
        .expect("parses");
        assert_eq!(p.items.len(), 1);
        let Item::Func { name, params, body, .. } = &p.items[0] else {
            panic!("expected function");
        };
        assert_eq!(name, "fib");
        assert_eq!(params.len(), 1);
        assert_eq!(body.len(), 2);
    }

    #[test]
    fn parses_struct_and_globals() {
        let p = parse(
            r#"
struct Node {
    int value;
    struct Node* next;
};

int table[4] = {1, 2, 3, 4};
char* msg = "hi\n";
double ratio = 2.5;
"#,
        )
        .expect("parses");
        assert_eq!(p.items.len(), 4);
        assert!(matches!(&p.items[0], Item::StructDef { fields, .. } if fields.len() == 2));
        assert!(matches!(
            &p.items[1],
            Item::Global { ty: CType::Array(_, 4), init: Some(GlobalInit::List(v)), .. } if v.len() == 4
        ));
    }

    #[test]
    fn precedence_and_associativity() {
        let p = parse("int f() { return 1 + 2 * 3 - 4 / 2; }").expect("parses");
        let Item::Func { body, .. } = &p.items[0] else {
            panic!()
        };
        let Stmt::Return(Some(e)) = &body[0] else {
            panic!()
        };
        // (1 + (2*3)) - (4/2)
        let Expr::Bin(BinOp::Sub, l, r) = e else {
            panic!("top is sub: {e:?}")
        };
        assert!(matches!(**l, Expr::Bin(BinOp::Add, ..)));
        assert!(matches!(**r, Expr::Bin(BinOp::Div, ..)));
    }

    #[test]
    fn compound_assignment_desugars() {
        let p = parse("int f(int x) { x += 2; return x; }").expect("parses");
        let Item::Func { body, .. } = &p.items[0] else {
            panic!()
        };
        assert!(matches!(
            &body[0],
            Stmt::Expr(Expr::Assign(_, r)) if matches!(**r, Expr::Bin(BinOp::Add, ..))
        ));
    }

    #[test]
    fn for_loops_and_increments() {
        parse("int f() { int s = 0; for (int i = 0; i < 10; i++) { s += i; } return s; }")
            .expect("parses");
        parse("int g() { for (;;) { break; } return 0; }").expect("parses");
    }

    #[test]
    fn casts_vs_parenthesized_exprs() {
        let p = parse("int f(double d) { return (int)d + (3); }").expect("parses");
        let Item::Func { body, .. } = &p.items[0] else {
            panic!()
        };
        let Stmt::Return(Some(Expr::Bin(_, l, _))) = &body[0] else {
            panic!()
        };
        assert!(matches!(**l, Expr::Cast(CType::Int, _)));
    }

    #[test]
    fn pointers_members_and_indexing() {
        parse(
            r#"
struct P { int x; int y; };
int f(struct P* p, int* a) {
    p->x = a[0];
    (*p).y = *a;
    return p->x + p->y;
}
"#,
        )
        .expect("parses");
    }

    #[test]
    fn error_has_line_number() {
        let err = parse("int f() {\n  return $;\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn function_pointers() {
        parse(
            r#"
int apply(int (*)(int) f, int x) {
    return f(x);
}
"#,
        )
        .expect("parses");
    }
}
