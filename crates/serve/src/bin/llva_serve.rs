//! `llva-serve` — the multi-tenant execution service binary.
//!
//! Serve mode (default): bind the TCP front-end and run forever.
//!
//! ```text
//! llva-serve --listen 127.0.0.1:7411 --isa x86 --shards 4
//! curl http://127.0.0.1:7411/metrics
//! ```
//!
//! Selfcheck mode (`--selfcheck`): an in-process smoke test — load the
//! `ptrdist-anagram` Table 2 workload into one tenant per execution
//! tier, force each tenant to answer from its target tier by killing
//! every faster tier, assert all four answers match the structural
//! interpreter, and print the metrics text. Exits non-zero on any
//! mismatch; CI runs this as the fast serve gate.

use std::process::ExitCode;
use std::time::Duration;

use llva_core::layout::TargetConfig;
use llva_engine::supervisor::{Tier, TierKill};
use llva_engine::{DirStorage, Interpreter, TargetIsa};
use llva_serve::{ExecService, ServeConfig, Server, TenantQuota};

const USAGE: &str = "usage: llva-serve [options]
  --listen ADDR     bind address (default 127.0.0.1:7411)
  --isa x86|sparc|riscv
                    translated-tier target ISA (default x86)
  --shards N        translation cache shards (default 4)
  --cache-dir DIR   persist the translation cache (and module images)
                    under DIR instead of in memory; warm loads mmap the
                    images zero-copy
  --probe-after N   quarantine recovery probe threshold (default off)
  --cross-check     cross-check every answer against the interpreter
  --selfcheck       run the in-process smoke test and exit
  --help            this text";

struct Args {
    listen: String,
    config: ServeConfig,
    cache_dir: Option<std::path::PathBuf>,
    selfcheck: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: "127.0.0.1:7411".to_string(),
        config: ServeConfig::default(),
        cache_dir: None,
        selfcheck: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--isa" => {
                args.config.isa = match value("--isa")?.as_str() {
                    "x86" => TargetIsa::X86,
                    "sparc" => TargetIsa::Sparc,
                    "riscv" => TargetIsa::Riscv,
                    other => return Err(format!("unknown ISA '{other}'")),
                }
            }
            "--cache-dir" => {
                args.cache_dir = Some(std::path::PathBuf::from(value("--cache-dir")?));
            }
            "--shards" => {
                args.config.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
            }
            "--probe-after" => {
                args.config.probe_after = Some(
                    value("--probe-after")?
                        .parse()
                        .map_err(|e| format!("--probe-after: {e}"))?,
                );
            }
            "--cross-check" => args.config.cross_check = true,
            "--selfcheck" => args.selfcheck = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("llva-serve: {msg}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if args.selfcheck {
        return selfcheck(args.config);
    }
    let service = match &args.cache_dir {
        // Persistent shards: each shard gets its own subdirectory, so
        // restarts of the whole process find yesterday's translations
        // and mmap the module images zero-copy on warm loads.
        Some(dir) => ExecService::with_storage(args.config, |i| {
            Box::new(DirStorage::new(dir.join(format!("shard-{i}"))))
                as llva_serve::BoxedStorage
        }),
        None => ExecService::new(args.config),
    };
    let server = match Server::bind(service, args.listen.as_str(), TenantQuota::default()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("llva-serve: bind {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => println!("llva-serve: listening on {addr} (framed protocol + GET /metrics)"),
        Err(_) => println!("llva-serve: listening on {}", args.listen),
    }
    server.run();
    ExitCode::SUCCESS
}

/// One tenant per tier, each forced to answer from its target rung.
fn selfcheck(mut config: ServeConfig) -> ExitCode {
    const WORKLOAD: &str = "ptrdist-anagram";
    const FUEL: u64 = 2_000_000_000;
    config.call_deadline = Duration::from_secs(300);
    config.load_deadline = Duration::from_secs(300);

    let workload = llva_workloads::all()
        .into_iter()
        .find(|w| w.name == WORKLOAD)
        .expect("Table 2 contains ptrdist-anagram");
    let module = workload.compile(TargetConfig::default());
    let source = llva_core::printer::print_module(&module);

    let mut interp = Interpreter::new(&module);
    interp.set_fuel(FUEL);
    let expected = match interp.run("main", &[]) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("selfcheck: structural interpreter failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("selfcheck: {WORKLOAD} oracle value {expected:#x}");

    let service = ExecService::new(config);
    let quota = TenantQuota {
        max_call_fuel: FUEL,
        ..TenantQuota::default()
    };
    let mut failures = 0u32;
    for target in Tier::LADDER {
        let tenant = format!("tier-{target}");
        if let Err(e) = service.add_tenant(&tenant, quota) {
            eprintln!("selfcheck: add tenant {tenant}: {e}");
            return ExitCode::FAILURE;
        }
        if let Err(e) = service.load_module(&tenant, WORKLOAD, &source) {
            eprintln!("selfcheck: load into {tenant}: {e}");
            return ExitCode::FAILURE;
        }
        let kills: Vec<TierKill> = Tier::LADDER
            .into_iter()
            .filter(|t| t.index() < target.index())
            .map(TierKill::panic)
            .collect();
        if !kills.is_empty() {
            if let Err(e) = service.arm_kills(&tenant, WORKLOAD, kills, 0) {
                eprintln!("selfcheck: arm kills for {tenant}: {e}");
                return ExitCode::FAILURE;
            }
        }
        match service.call(&tenant, WORKLOAD, "main", &[]) {
            Ok(run) => {
                let ok = run.value() == Some(expected) && run.tier == target;
                println!(
                    "selfcheck: {tenant:<17} -> {} via {} ({}){}",
                    run.value().map_or_else(|| format!("{:?}", run.outcome), |v| format!("{v:#x}")),
                    run.tier,
                    if run.degraded { "degraded" } else { "direct" },
                    if ok { "" } else { "  MISMATCH" },
                );
                if !ok {
                    failures += 1;
                }
            }
            Err(e) => {
                eprintln!("selfcheck: call via {tenant}: {e}");
                failures += 1;
            }
        }
    }

    println!("\n{}", service.metrics_text());
    if failures == 0 {
        println!("selfcheck: ok ({} tiers agree with the oracle)", Tier::LADDER.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("selfcheck: FAILED ({failures} mismatch(es))");
        ExitCode::FAILURE
    }
}
